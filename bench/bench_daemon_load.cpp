/// \file bench_daemon_load.cpp
/// Load generator for stormtrackd: hammer a live daemon (in-process
/// supervisor + server over a real Unix socket) with short sessions from
/// concurrent client threads, and pin the scheduler's overload behavior.
///
/// Four phases:
///
///   load       8 client threads × 25 sessions, closed loop over the
///              socket, rejected submits retried — all 200 must complete.
///              p50/p99 submit-to-done latency and sessions/second are
///              advisory (1-CPU CI runners); counter_completed gates.
///   burst      the lane-bound vs throughput-bound comparison: a
///              500-session open burst against (a) lane scheduling at
///              max_active=2 and (b) a 2-thread shared pool with
///              max_active=500 — the same session-driving thread budget.
///              Lane admission trickles at the completion rate (capacity
///              2 running + 8 queued), so the burst degenerates into a
///              REJECTED_BUSY retry storm; the pool admits everything up
///              front. The binary asserts the structural claims (all 500
///              complete in both configs, the pool rejects nothing, the
///              lane config rejects plenty, the shared pricing cache is
///              warm, and pool admission throughput is >= 2x lane's);
///              wall-clock rates and latencies are advisory.
///   overload   a deterministic admission script against an *unstarted*
///              supervisor (the queue never drains, so the counts are
///              exact): low-priority fillers, a shedding high-priority
///              wave, then a same-priority wave that must be rejected.
///   aging      one priority-0 victim behind a continuous stream of
///              priority-9 sessions on a single lane. The aging credit
///              must lift the victim to completion before the stream ends:
///              counter_starved is 0 by construction or the binary itself
///              fails (ST_CHECK), so a starvation regression cannot slip
///              through as "just a counter drift".
///
/// The deterministic `counter_*` fields are diffed against
/// bench/baselines/BENCH_daemon_load.json by
/// tools/check_bench_regression.py in the CI daemon-chaos job.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kClientThreads = 8;
constexpr int kSessionsPerThread = 25;

SessionSpec short_session(std::uint64_t seed, int priority = 0) {
  SessionSpec spec;
  spec.cores = 256;
  spec.intervals = 1;
  spec.seed = seed;
  spec.priority = priority;
  return spec;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

fs::path scratch_dir(const std::string& phase) {
  return fs::temp_directory_path() /
         ("st_bench_load_" + phase + "_" + std::to_string(::getpid()));
}

struct LoadResult {
  double wall_seconds = 0.0;
  std::int64_t completed = 0;
  std::int64_t rejections = 0;  ///< Retried REJECTED_BUSY responses.
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Phase 1: closed-loop load over the socket.
LoadResult run_load_phase() {
  const fs::path dir = scratch_dir("load");
  fs::remove_all(dir);
  const fs::path socket =
      fs::temp_directory_path() /
      ("st_bld_" + std::to_string(::getpid()) + ".sock");

  ServeLimits limits;
  limits.max_active = 2;
  limits.max_queued = 8;
  limits.aging_seconds = 0.05;
  SessionSupervisor supervisor(dir, limits);
  supervisor.start();
  ServerConfig config;
  config.socket_path = socket;
  config.read_deadline_seconds = 10.0;
  config.write_deadline_seconds = 10.0;
  SessionServer server(supervisor, config);
  server.start();

  std::vector<std::vector<double>> latencies(kClientThreads);
  std::vector<std::int64_t> rejections(kClientThreads, 0);
  const auto started = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      ClientConnection client(socket);
      for (int i = 0; i < kSessionsPerThread; ++i) {
        const auto submit_at = Clock::now();
        SessionSpec spec = short_session(
            static_cast<std::uint64_t>(1000 + t * 100 + i));
        spec.tenant = "thread-" + std::to_string(t);
        std::uint64_t id = 0;
        while (true) {
          const auto reply = client.submit(spec);
          if (reply.accepted) {
            id = reply.id;
            break;
          }
          ++rejections[static_cast<std::size_t>(t)];
          // Honor the daemon's retry-after hint, capped to keep the
          // closed loop tight on slow runners.
          const double wait =
              std::min(reply.estimated_wait_seconds, 0.02);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(std::max(wait, 0.001)));
        }
        const SessionStatus done =
            client.attach(id, 0, [](const SessionEvent&) {});
        ST_CHECK_MSG(done.state == SessionState::kDone,
                     "load session " << id << " ended "
                                     << to_string(done.state));
        latencies[static_cast<std::size_t>(t)].push_back(
            std::chrono::duration<double>(Clock::now() - submit_at)
                .count());
      }
    });
  }
  for (std::thread& c : clients) c.join();

  LoadResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  result.completed = supervisor.metrics().get("server.completed").count;
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
  for (const std::int64_t r : rejections) result.rejections += r;
  result.p50 = percentile(all, 0.50);
  result.p99 = percentile(all, 0.99);

  server.stop();
  supervisor.stop();
  fs::remove_all(dir);
  ST_CHECK_MSG(result.completed == kClientThreads * kSessionsPerThread,
               "expected every submitted session to complete, got "
                   << result.completed);
  return result;
}

constexpr int kBurstSessions = 500;
constexpr int kBurstClients = 4;

struct BurstResult {
  double wall_seconds = 0.0;    ///< First submit to last completion.
  double admit_seconds = 0.0;   ///< First submit to last *acceptance*.
  std::int64_t completed = 0;
  std::int64_t rejections = 0;  ///< Retried REJECTED_BUSY responses.
  std::int64_t pricing_hits = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// One burst configuration: submit kBurstSessions as fast as the daemon
/// will take them (retrying rejects), then drain every session to done.
/// Unlike the closed-loop load phase, every client submits its whole
/// share *before* waiting on any result — that is what makes admission
/// capacity, not client pacing, the bottleneck under lane scheduling.
BurstResult run_burst_config(const std::string& name,
                             const ServeLimits& limits) {
  const fs::path dir = scratch_dir("burst_" + name);
  fs::remove_all(dir);
  const fs::path socket =
      fs::temp_directory_path() /
      ("st_bb_" + name + "_" + std::to_string(::getpid()) + ".sock");

  SessionSupervisor supervisor(dir, limits);
  supervisor.start();
  ServerConfig config;
  config.socket_path = socket;
  config.read_deadline_seconds = 10.0;
  config.write_deadline_seconds = 10.0;
  SessionServer server(supervisor, config);
  server.start();

  constexpr int kPerClient = kBurstSessions / kBurstClients;
  static_assert(kPerClient * kBurstClients == kBurstSessions);
  std::vector<std::vector<double>> latencies(kBurstClients);
  std::vector<std::int64_t> rejections(kBurstClients, 0);
  std::vector<Clock::time_point> last_accept(kBurstClients);
  const auto started = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kBurstClients);
  for (int t = 0; t < kBurstClients; ++t) {
    clients.emplace_back([&, t] {
      ClientConnection client(socket);
      std::vector<std::uint64_t> ids;
      std::vector<Clock::time_point> submit_at;
      ids.reserve(kPerClient);
      submit_at.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        submit_at.push_back(Clock::now());
        // Two intervals (the second is where adaptation candidates get
        // priced) and a small seed pool: sessions with the same seed are
        // the repeat customers the shared pricing cache exists for.
        SessionSpec spec = short_session(
            static_cast<std::uint64_t>(5000 + (t * kPerClient + i) % 10));
        spec.intervals = 2;
        spec.tenant = "burst-" + std::to_string(t);
        while (true) {
          const auto reply = client.submit(spec);
          if (reply.accepted) {
            ids.push_back(reply.id);
            break;
          }
          ++rejections[static_cast<std::size_t>(t)];
          const double wait =
              std::min(reply.estimated_wait_seconds, 0.02);
          std::this_thread::sleep_for(
              std::chrono::duration<double>(std::max(wait, 0.001)));
        }
      }
      last_accept[static_cast<std::size_t>(t)] = Clock::now();
      for (int i = 0; i < kPerClient; ++i) {
        const SessionStatus done =
            client.attach(ids[static_cast<std::size_t>(i)], 0,
                          [](const SessionEvent&) {});
        ST_CHECK_MSG(done.state == SessionState::kDone,
                     "burst session " << ids[static_cast<std::size_t>(i)]
                                      << " ended "
                                      << to_string(done.state));
        latencies[static_cast<std::size_t>(t)].push_back(
            std::chrono::duration<double>(Clock::now() -
                                          submit_at[static_cast<
                                              std::size_t>(i)])
                .count());
      }
    });
  }
  for (std::thread& c : clients) c.join();

  BurstResult result;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  for (const Clock::time_point at : last_accept) {
    result.admit_seconds =
        std::max(result.admit_seconds,
                 std::chrono::duration<double>(at - started).count());
  }
  const MetricsRegistry metrics = supervisor.metrics();
  result.completed = metrics.get("server.completed").count;
  result.pricing_hits = metrics.get("server.pricing_shared_hits").count;
  const std::int64_t rejected_busy =
      metrics.get("server.rejected_busy").count;
  for (const std::int64_t r : rejections) result.rejections += r;
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.p50 = percentile(all, 0.50);
  result.p99 = percentile(all, 0.99);

  server.stop();
  supervisor.stop();
  fs::remove_all(dir);
  ST_CHECK_MSG(result.completed == kBurstSessions,
               "burst " << name << ": expected " << kBurstSessions
                        << " completions, got " << result.completed);
  if (limits.pool_threads > 0) {
    // The pool admits the whole burst: nothing is ever turned away, and
    // identical sessions price their candidates out of the shared cache.
    ST_CHECK_MSG(rejected_busy == 0,
                 "shared pool rejected " << rejected_busy
                                         << " burst submits");
    ST_CHECK_MSG(result.pricing_hits > 0,
                 "shared pricing cache never hit across "
                     << kBurstSessions << " identical sessions");
  } else {
    ST_CHECK_MSG(result.rejections > 0,
                 "a 500-session burst against 2 lanes + 8 queue slots "
                 "should have seen REJECTED_BUSY");
  }
  return result;
}

struct OverloadResult {
  std::int64_t shed = 0;
  std::int64_t rejected_busy = 0;
  std::int64_t shed_bulk_tenant = 0;
};

/// Phase 2: exact admission arithmetic against an unstarted supervisor.
OverloadResult run_overload_phase() {
  const fs::path dir = scratch_dir("overload");
  fs::remove_all(dir);
  ServeLimits limits;
  limits.max_active = 1;
  limits.max_queued = 4;
  limits.aging_seconds = 0.0;  // pure nominal priorities: exact counts
  SessionSupervisor supervisor(dir, limits);  // never started: queue holds

  // Fill the queue with low-priority bulk work.
  for (int i = 0; i < 4; ++i) {
    SessionSpec spec = short_session(static_cast<std::uint64_t>(10 + i), 0);
    spec.tenant = "bulk";
    const auto reply = supervisor.submit(spec);
    ST_CHECK_MSG(reply.admission == SessionSupervisor::Admission::kAccepted,
                 "filler " << i << " not accepted: " << reply.reason);
  }
  // A high-priority wave sheds every filler (newest first)...
  for (int i = 0; i < 4; ++i) {
    const auto reply = supervisor.submit(
        short_session(static_cast<std::uint64_t>(20 + i), 5));
    ST_CHECK_MSG(reply.admission == SessionSupervisor::Admission::kAccepted,
                 "shedding submit " << i << " not accepted: "
                                    << reply.reason);
  }
  // ...and a second wave at the same priority finds nothing to shed.
  for (int i = 0; i < 4; ++i) {
    const auto reply = supervisor.submit(
        short_session(static_cast<std::uint64_t>(30 + i), 5));
    ST_CHECK_MSG(
        reply.admission == SessionSupervisor::Admission::kRejectedBusy,
        "equal-priority submit " << i << " should have been rejected");
  }

  OverloadResult result;
  const MetricsRegistry metrics = supervisor.metrics();
  result.shed = metrics.get("server.shed_sessions").count;
  result.rejected_busy = metrics.get("server.rejected_busy").count;
  result.shed_bulk_tenant = metrics.get("server.shed_by_tenant.bulk").count;
  supervisor.stop();
  fs::remove_all(dir);
  return result;
}

struct AgingResult {
  std::int64_t starved = 0;
  /// How deep into the 30-session hostile stream the victim completed
  /// (advisory; lower = aging lifted it sooner).
  std::int64_t victim_done_at_stream_position = 0;
};

/// Phase 3: zero starvation under a sustained high-priority stream.
AgingResult run_aging_phase() {
  const fs::path dir = scratch_dir("aging");
  fs::remove_all(dir);
  ServeLimits limits;
  limits.max_active = 1;  // one lane: the victim must *win* pops to run
  limits.max_queued = 4;
  limits.aging_seconds = 0.01;
  SessionSupervisor supervisor(dir, limits);
  supervisor.start();

  // Occupy the lane first so the victim actually waits in the queue and
  // has to out-age the hostile stream to get popped.
  const auto blocker = supervisor.submit(
      short_session(499, /*priority=*/9));
  ST_CHECK_MSG(blocker.admission == SessionSupervisor::Admission::kAccepted,
               "blocker not accepted");
  const auto victim =
      supervisor.submit(short_session(500, /*priority=*/0));
  ST_CHECK_MSG(victim.admission == SessionSupervisor::Admission::kAccepted,
               "victim not accepted");

  constexpr int kStream = 30;
  AgingResult result;
  std::vector<std::uint64_t> stream_ids;
  for (int i = 0; i < kStream; ++i) {
    SessionSpec spec =
        short_session(static_cast<std::uint64_t>(600 + i), /*priority=*/9);
    // Keep one queue slot free: a high-priority submit into a *full*
    // queue sheds the victim outright, which is overload behavior
    // (phase 2), not the starvation question. Only this thread submits,
    // so a below-capacity check cannot race into a shed.
    while (supervisor.queued_count() >= limits.max_queued) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const auto reply = supervisor.submit(spec);
    ST_CHECK_MSG(reply.admission == SessionSupervisor::Admission::kAccepted,
                 "stream submit " << i << " not accepted: " << reply.reason);
    stream_ids.push_back(reply.id);
    if (result.victim_done_at_stream_position == 0 &&
        supervisor.status(victim.id).state == SessionState::kDone) {
      result.victim_done_at_stream_position = i + 1;
    }
  }
  // The victim must not still be waiting once the hostile stream has been
  // fully submitted and drained.
  for (const std::uint64_t id : stream_ids) {
    (void)supervisor.wait_terminal(id);
  }
  const SessionStatus final_victim = supervisor.wait_terminal(victim.id);
  if (result.victim_done_at_stream_position == 0) {
    // Finished only after the stream: that is starvation the aging
    // credit was supposed to prevent.
    result.starved = 1;
  }
  ST_CHECK_MSG(final_victim.state == SessionState::kDone,
               "victim ended " << to_string(final_victim.state));
  ST_CHECK_MSG(result.starved == 0,
               "priority-0 session starved behind "
                   << kStream << " priority-9 sessions");
  supervisor.stop();
  fs::remove_all(dir);
  return result;
}

}  // namespace
}  // namespace stormtrack

int main(int argc, char** argv) {
  using namespace stormtrack;
  bench::JsonSummary summary("daemon_load");

  const LoadResult load = run_load_phase();
  const double per_second =
      load.wall_seconds > 0
          ? static_cast<double>(load.completed) / load.wall_seconds
          : 0.0;
  summary
      .add_row("load", load.wall_seconds, kClientThreads, load.completed)
      .add_field("counter_completed", static_cast<double>(load.completed))
      .add_field("rejections_retried",
                 static_cast<double>(load.rejections))
      .add_field("latency_p50_seconds", load.p50)
      .add_field("latency_p99_seconds", load.p99)
      .add_field("sessions_per_second", per_second);

  ServeLimits lane_limits;
  lane_limits.max_active = 2;
  lane_limits.max_queued = 8;
  lane_limits.aging_seconds = 0.05;
  const BurstResult lane = run_burst_config("lane", lane_limits);

  ServeLimits pool_limits;
  pool_limits.pool_threads = 2;  // same session-driving thread budget
  pool_limits.max_active = kBurstSessions;
  pool_limits.max_queued = kBurstSessions;
  pool_limits.aging_seconds = 0.05;
  const BurstResult pool = run_burst_config("pool", pool_limits);

  const auto admit_rate = [](const BurstResult& r) {
    return r.admit_seconds > 0
               ? static_cast<double>(kBurstSessions) / r.admit_seconds
               : 0.0;
  };
  const auto done_rate = [](const BurstResult& r) {
    return r.wall_seconds > 0
               ? static_cast<double>(kBurstSessions) / r.wall_seconds
               : 0.0;
  };
  const double admit_speedup =
      admit_rate(lane) > 0 ? admit_rate(pool) / admit_rate(lane) : 0.0;
  // The headline structural claim, asserted in-binary: with the same two
  // session-driving threads, the pool takes the burst at >= 2x the lane
  // config's sessions-per-second of admission. (Lane admission is paced
  // by completions — capacity 10 for a 500-session burst — so in practice
  // this ratio is >> 2. Completion-rate speedup stays advisory: on a
  // 1-CPU runner both configs are CPU-bound once admitted.)
  ST_CHECK_MSG(admit_speedup >= 2.0,
               "shared pool admitted the burst only " << admit_speedup
                   << "x faster than lane scheduling (expected >= 2x)");

  summary
      .add_row("burst_lane", lane.wall_seconds, 2, kBurstSessions)
      .add_field("counter_completed", static_cast<double>(lane.completed))
      .add_field("rejections_retried", static_cast<double>(lane.rejections))
      .add_field("admit_seconds", lane.admit_seconds)
      .add_field("admitted_per_second", admit_rate(lane))
      .add_field("latency_p50_seconds", lane.p50)
      .add_field("latency_p99_seconds", lane.p99)
      .add_field("sessions_per_second", done_rate(lane));
  summary
      .add_row("burst_pool", pool.wall_seconds, 2, kBurstSessions)
      .add_field("counter_completed", static_cast<double>(pool.completed))
      .add_field("counter_rejected_busy", 0.0)
      .add_field("counter_shared_pricing_warm",
                 pool.pricing_hits > 0 ? 1.0 : 0.0)
      .add_field("admit_seconds", pool.admit_seconds)
      .add_field("admitted_per_second", admit_rate(pool))
      .add_field("admit_speedup_vs_lane", admit_speedup)
      .add_field("latency_p50_seconds", pool.p50)
      .add_field("latency_p99_seconds", pool.p99)
      .add_field("sessions_per_second", done_rate(pool));

  const OverloadResult overload = run_overload_phase();
  summary.add_row("overload", 0.0, 1, 12)
      .add_field("counter_shed", static_cast<double>(overload.shed))
      .add_field("counter_rejected_busy",
                 static_cast<double>(overload.rejected_busy))
      .add_field("counter_shed_by_tenant_bulk",
                 static_cast<double>(overload.shed_bulk_tenant));

  const AgingResult aging = run_aging_phase();
  summary.add_row("aging", 0.0, 1, 31)
      .add_field("counter_starved", static_cast<double>(aging.starved))
      .add_field("victim_done_at_stream_position",
                 static_cast<double>(aging.victim_done_at_stream_position));

  Table table({"Phase", "Sessions", "Wall s", "p50 s", "p99 s", "Notes"});
  table.set_title("stormtrackd load generator");
  table.add_row({"load", std::to_string(load.completed),
                 Table::num(load.wall_seconds, 3), Table::num(load.p50, 4),
                 Table::num(load.p99, 4),
                 std::to_string(load.rejections) + " rejects retried"});
  table.add_row({"burst_lane", std::to_string(lane.completed),
                 Table::num(lane.wall_seconds, 3), Table::num(lane.p50, 4),
                 Table::num(lane.p99, 4),
                 "admitted in " + Table::num(lane.admit_seconds, 3) + "s, " +
                     std::to_string(lane.rejections) + " rejects retried"});
  table.add_row({"burst_pool", std::to_string(pool.completed),
                 Table::num(pool.wall_seconds, 3), Table::num(pool.p50, 4),
                 Table::num(pool.p99, 4),
                 "admitted in " + Table::num(pool.admit_seconds, 3) + "s (" +
                     Table::num(admit_speedup, 1) + "x lane), " +
                     std::to_string(pool.pricing_hits) + " pricing hits"});
  table.add_row({"overload", "12", "-", "-", "-",
                 std::to_string(overload.shed) + " shed, " +
                     std::to_string(overload.rejected_busy) + " rejected"});
  table.add_row({"aging", "31", "-", "-", "-",
                 "victim done at stream position " +
                     std::to_string(aging.victim_done_at_stream_position)});
  table.print(std::cout);
  std::cout << "Zero starvation is asserted in-binary; the counter_* "
               "fields gate against\nbench/baselines/BENCH_daemon_load.json "
               "in the CI daemon-chaos job.\n";

  if (const auto path = bench::json_output_path(argc, argv)) {
    summary.write(*path);
  }
  return 0;
}
