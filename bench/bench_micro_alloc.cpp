/// \file bench_micro_alloc.cpp
/// google-benchmark microbenchmarks of the reallocation machinery itself,
/// backing the paper's §IV-B scalability remark: "Processor reallocation
/// via Huffman tree construction or reorganization depends on the number
/// of nests and is not affected by increase in processor count."
///
/// Sweeps: Huffman construction and diffusion reorganization vs nest
/// count; subdivision and redistribution planning vs processor count.
///
/// Invoked with `--json out.json` (stripped before google-benchmark sees
/// the flags — BENCHMARK_MAIN rejects unknown arguments) the binary also
/// emits deterministic plan-size counters for the CI perf-smoke gate.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "alloc/partitioner.hpp"
#include "bench_common.hpp"
#include "redist/redistributor.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> random_nests(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<NestWeight> out;
  for (int i = 1; i <= n; ++i)
    out.push_back(NestWeight{i, rng.uniform(0.05, 1.0)});
  return out;
}

void BM_HuffmanConstruction(benchmark::State& state) {
  const auto nests = random_nests(static_cast<int>(state.range(0)), 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(AllocTree::huffman(nests));
}
BENCHMARK(BM_HuffmanConstruction)->Arg(2)->Arg(5)->Arg(9)->Arg(16)->Arg(64);

void BM_DiffusionReorganization(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const AllocTree tree = AllocTree::huffman(random_nests(n, 42));
  // Reconfiguration touching about a third of the nests.
  ReconfigRequest req;
  Xoshiro256 rng(7);
  int next_id = n + 1;
  for (const NestWeight& leaf : tree.leaves()) {
    if (leaf.nest % 3 == 0)
      req.deleted.push_back(leaf.nest);
    else
      req.retained.push_back({leaf.nest, rng.uniform(0.05, 1.0)});
  }
  for (int i = 0; i < n / 3; ++i)
    req.inserted.push_back({next_id++, rng.uniform(0.05, 1.0)});
  for (auto _ : state) benchmark::DoNotOptimize(tree.diffuse(req));
}
BENCHMARK(BM_DiffusionReorganization)->Arg(3)->Arg(6)->Arg(9)->Arg(16)->Arg(64);

void BM_SubdivideVsProcessorCount(benchmark::State& state) {
  // §IV-B: reallocation cost must not grow with processor count.
  const AllocTree tree = AllocTree::huffman(random_nests(9, 42));
  const int p = static_cast<int>(state.range(0));
  int px = 1;
  for (int w = 1; w * w <= p; ++w)
    if (p % w == 0) px = w;
  const Rect grid{0, 0, px, p / px};
  for (auto _ : state) benchmark::DoNotOptimize(tree.subdivide(grid));
}
BENCHMARK(BM_SubdivideVsProcessorCount)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_RedistributionPlanning(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int side = p == 256 ? 16 : (p == 1024 ? 32 : 64);
  const NestShape nest{349, 349};
  const Rect old_rect{0, 0, side / 2, side / 2};
  const Rect new_rect{side / 4, side / 4, side / 2, side / 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        plan_redistribution(nest, old_rect, new_rect, side));
}
BENCHMARK(BM_RedistributionPlanning)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AlltoallvPricing(benchmark::State& state) {
  const auto torus = make_bluegene(1024);
  const FoldingMapping mapping(32, 32, *torus);
  const SimComm comm(*torus, mapping);
  const RedistPlan plan = plan_redistribution(
      NestShape{349, 349}, Rect{0, 0, 16, 16}, Rect{8, 8, 16, 16}, 32);
  for (auto _ : state)
    benchmark::DoNotOptimize(comm.alltoallv(plan.messages));
}
BENCHMARK(BM_AlltoallvPricing);

void BM_FoldingMappingConstruction(benchmark::State& state) {
  const auto torus = make_bluegene(1024);
  for (auto _ : state)
    benchmark::DoNotOptimize(FoldingMapping(32, 32, *torus));
}
BENCHMARK(BM_FoldingMappingConstruction);

/// Deterministic counter rows for the perf-smoke gate: the message counts
/// and byte totals of the BM_RedistributionPlanning geometries, measured
/// through both the materializing planner and the streaming cost walk.
/// These are pure functions of the geometry, so any drift is a behavior
/// change, not noise.
void write_json_summary(const std::string& path) {
  bench::JsonSummary summary("micro_alloc");
  for (const int p : {256, 1024, 4096}) {
    const int side = p == 256 ? 16 : (p == 1024 ? 32 : 64);
    const NestShape nest{349, 349};
    const Rect old_rect{0, 0, side / 2, side / 2};
    const Rect new_rect{side / 4, side / 4, side / 2, side / 2};

    const auto t0 = std::chrono::steady_clock::now();
    const RedistPlan plan =
        plan_redistribution(nest, old_rect, new_rect, side);
    const auto t1 = std::chrono::steady_clock::now();
    const RedistCostSummary cost =
        redistribution_cost(nest, old_rect, new_rect, side);

    summary
        .add_row("plan_p" + std::to_string(p),
                 std::chrono::duration<double>(t1 - t0).count(), 1, 1)
        .add_field("counter_messages",
                   static_cast<double>(plan.messages.size()))
        .add_field("counter_stream_messages",
                   static_cast<double>(cost.num_messages))
        .add_field("counter_total_bytes",
                   static_cast<double>(cost.total_bytes))
        .add_field("counter_overlap_points",
                   static_cast<double>(cost.overlap_points));
  }
  summary.write(path);
}

}  // namespace
}  // namespace stormtrack

int main(int argc, char** argv) {
  // Peel off `--json <path>` before google-benchmark parses the command
  // line (it rejects flags it does not know).
  const auto json_path = stormtrack::bench::json_output_path(argc, argv);
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      ++i;  // Skip the path operand too.
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (json_path) stormtrack::write_json_summary(*json_path);
  return 0;
}
