/// \file bench_pda_scaling.cpp
/// §III's parallelization argument, quantified: "the analysis of QCLOUD
/// values in each split file is done in parallel because this is the most
/// time-consuming step", while "the sequential NNC algorithm takes less
/// than a second to cluster such few values" (fewer than ~200 gathered
/// elements for 1024 split files).
///
/// We measure the real wall-clock cost of the per-file analysis and of the
/// sequential NNC on this host, model the parallel analysis time as
/// work/N + the gathered-bytes cost on the analysis communicator, and also
/// measure the tile-and-merge parallel NNC extension.

#include <chrono>
#include <iostream>

#include "pda/parallel_nnc.hpp"
#include "pda/pda.hpp"
#include "util/table.hpp"
#include "wsim/split_file.hpp"

using namespace stormtrack;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  WeatherModel model(WeatherConfig::mumbai_2005(), 0x5ca1e);
  for (int i = 0; i < 10; ++i) model.step();
  const auto files = write_split_files(model, 32, 32);  // P = 1024

  // ---- measure the serial per-file analysis (Algorithm 1 lines 4–9).
  const PdaConfig cfg;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<QCloudInfo> info;
  for (const SplitFile& f : files)
    if (auto e = analyze_split_file(f, cfg)) info.push_back(*e);
  const double analyze_serial = seconds_since(t0);
  std::sort(info.begin(), info.end(),
            [](const QCloudInfo& a, const QCloudInfo& b) {
              return a.qcloud > b.qcloud;
            });

  // ---- measure the sequential NNC (Algorithm 2) on the gathered values.
  t0 = std::chrono::steady_clock::now();
  const auto clusters = nnc(info, cfg.nnc);
  const double nnc_serial = seconds_since(t0);

  std::cout << "P = " << files.size() << " split files; " << info.size()
            << " cloudy subdomains gathered (paper: < 200 for most steps); "
            << clusters.size() << " clusters\n"
            << "serial analysis: " << Table::num(analyze_serial * 1e3, 2)
            << " ms, sequential NNC: " << Table::num(nnc_serial * 1e3, 3)
            << " ms\n\n";

  Table t({"Analysis ranks N", "Analysis work/N (ms)",
           "Gather (modeled, ms)", "Total (ms)", "Speedup"});
  t.set_title("PDA scaling (analysis parallel, NNC at root — §III)");
  for (const int n : {1, 4, 16, 64, 256, 1024}) {
    Mesh2D topo(choose_process_grid(n).px, choose_process_grid(n).py);
    RowMajorMapping map(n);
    SimComm comm(topo, map);
    const PdaConfig ncfg{.analysis_procs = n};
    const PdaResult r = parallel_data_analysis(files, ncfg, &comm);
    const double analyze = analyze_serial / n;
    const double gather = r.traffic.modeled_time;
    const double total = analyze + gather + nnc_serial;
    t.add_row({std::to_string(n), Table::num(analyze * 1e3, 3),
               Table::num(gather * 1e3, 3), Table::num(total * 1e3, 3),
               Table::num((analyze_serial + nnc_serial) / total, 1) + "x"});
  }
  t.print(std::cout);

  // ---- the parallel NNC extension for much larger element counts.
  t0 = std::chrono::steady_clock::now();
  const ParallelNncResult par = parallel_nnc(info, cfg.nnc, 16);
  const double par_wall = seconds_since(t0);
  std::cout << "parallel NNC (16 tiles, tile-and-merge): "
            << par.clusters.size() << " clusters ("
            << Table::num(par_wall * 1e3, 3)
            << " ms wall here; per-tile work parallelizes on a real "
               "machine)\n";
  return 0;
}
