/// \file bench_pda_scaling.cpp
/// §III's parallelization argument, quantified: "the analysis of QCLOUD
/// values in each split file is done in parallel because this is the most
/// time-consuming step", while "the sequential NNC algorithm takes less
/// than a second to cluster such few values" (fewer than ~200 gathered
/// elements for 1024 split files).
///
/// Two measurements:
///  1. the modeled analysis-rank scaling of Algorithm 1 (work/N + the
///     gathered-bytes cost on the analysis communicator), as the paper
///     argues it;
///  2. the *real* wall-clock scaling of the executor-backed PDA on this
///     host: the same 1024-file analysis run on a ThreadPoolExecutor for
///     each of --threads {1,2,4,8} (comma list overridable), results
///     asserted byte-identical across thread counts, speedups emitted to
///     the --json summary so the trajectory is trackable across PRs.

#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "pda/parallel_nnc.hpp"
#include "pda/pda.hpp"
#include "util/fnv.hpp"
#include "util/table.hpp"
#include "wsim/split_file.hpp"

using namespace stormtrack;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<int> parse_thread_list(int argc, char** argv) {
  std::vector<int> threads{1, 2, 4, 8};
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--threads") continue;
    threads.clear();
    std::stringstream list(argv[i + 1]);
    std::string item;
    while (std::getline(list, item, ',')) threads.push_back(std::stoi(item));
  }
  return threads;
}

std::uint64_t pda_fingerprint(const PdaResult& r) {
  Fingerprint fp;
  fp.add(r.qcloudinfo.size());
  for (const QCloudInfo& q : r.qcloudinfo) {
    fp.add(q.file_rank);
    fp.add(q.qcloud);
    fp.add(q.olrfraction);
  }
  fp.add(r.rectangles.size());
  for (const Rect& rect : r.rectangles) {
    fp.add(rect.x);
    fp.add(rect.y);
    fp.add(rect.w);
    fp.add(rect.h);
  }
  return fp.value();
}

}  // namespace

int main(int argc, char** argv) {
  WeatherModel model(WeatherConfig::mumbai_2005(), 0x5ca1e);
  for (int i = 0; i < 10; ++i) model.step();
  const auto files = write_split_files(model, 32, 32);  // P = 1024

  // ---- measure the serial per-file analysis (Algorithm 1 lines 4–9).
  const PdaConfig cfg;
  auto t0 = std::chrono::steady_clock::now();
  std::vector<QCloudInfo> info;
  for (const SplitFile& f : files)
    if (auto e = analyze_split_file(f, cfg)) info.push_back(*e);
  const double analyze_serial = seconds_since(t0);
  std::sort(info.begin(), info.end(),
            [](const QCloudInfo& a, const QCloudInfo& b) {
              return a.qcloud > b.qcloud;
            });

  // ---- measure the sequential NNC (Algorithm 2) on the gathered values.
  t0 = std::chrono::steady_clock::now();
  const auto clusters = nnc(info, cfg.nnc);
  const double nnc_serial = seconds_since(t0);

  std::cout << "P = " << files.size() << " split files; " << info.size()
            << " cloudy subdomains gathered (paper: < 200 for most steps); "
            << clusters.size() << " clusters\n"
            << "serial analysis: " << Table::num(analyze_serial * 1e3, 2)
            << " ms, sequential NNC: " << Table::num(nnc_serial * 1e3, 3)
            << " ms\n\n";

  Table t({"Analysis ranks N", "Analysis work/N (ms)",
           "Gather (modeled, ms)", "Total (ms)", "Speedup"});
  t.set_title("PDA scaling (analysis parallel, NNC at root — §III)");
  for (const int n : {1, 4, 16, 64, 256, 1024}) {
    Mesh2D topo(choose_process_grid(n).px, choose_process_grid(n).py);
    RowMajorMapping map(n);
    SimComm comm(topo, map);
    const PdaConfig ncfg{.analysis_procs = n};
    const PdaResult r = parallel_data_analysis(files, ncfg, &comm);
    const double analyze = analyze_serial / n;
    const double gather = r.traffic.modeled_time;
    const double total = analyze + gather + nnc_serial;
    t.add_row({std::to_string(n), Table::num(analyze * 1e3, 3),
               Table::num(gather * 1e3, 3), Table::num(total * 1e3, 3),
               Table::num((analyze_serial + nnc_serial) / total, 1) + "x"});
  }
  t.print(std::cout);

  // ---- the parallel NNC extension for much larger element counts.
  t0 = std::chrono::steady_clock::now();
  const ParallelNncResult par = parallel_nnc(info, cfg.nnc, 16);
  const double par_wall = seconds_since(t0);
  std::cout << "parallel NNC (16 tiles, tile-and-merge): "
            << par.clusters.size() << " clusters ("
            << Table::num(par_wall * 1e3, 3)
            << " ms wall here; per-tile work parallelizes on a real "
               "machine)\n\n";

  // ---- real executor scaling on this host: the largest configured grid —
  // the 12 km domain refined to 1.5 km (~10.7M grid points over 1024
  // files, 64 analysis ranks), repeated so each measurement is well above
  // timer noise. The per-point analysis parallelizes; the sequential NNC
  // tail is constant in resolution, so this grid isolates the executor's
  // contribution. Fingerprints assert every thread count computes the
  // byte-identical result.
  WeatherConfig big_cfg = WeatherConfig::mumbai_2005();
  big_cfg.domain.resolution_km = 1.5;
  WeatherModel big_model(big_cfg, 0x5ca1e);
  for (int i = 0; i < 5; ++i) big_model.step();
  const auto big_files = write_split_files(big_model, 32, 32);

  const std::vector<int> thread_counts = parse_thread_list(argc, argv);
  const int analysis_ranks = 64;
  const int repeats = 8;
  bench::JsonSummary summary("pda_scaling");
  Table scaling({"Threads", "Wall (ms)", "Speedup", "Fingerprint"});
  scaling.set_title(
      "Executor-backed PDA wall clock (1.5 km grid, " +
      std::to_string(big_model.qcloud().width()) + "x" +
      std::to_string(big_model.qcloud().height()) + " points, " +
      std::to_string(big_files.size()) + " files, " +
      std::to_string(analysis_ranks) + " analysis ranks, " +
      std::to_string(repeats) + " repeats)");
  // Repeats are interleaved round-robin across the thread counts rather
  // than run config-by-config: whichever configuration runs first on a
  // fresh process pays a warm-up penalty (frequency ramp, first-touch)
  // that would otherwise be misattributed to its thread count.
  const std::size_t ncfg = thread_counts.size();
  std::vector<std::unique_ptr<ThreadPoolExecutor>> pools;
  std::vector<double> walls(ncfg, 0.0);
  std::vector<ExecutorStats> before(ncfg);
  std::uint64_t fp_first = 0;
  PdaConfig pcfg{.analysis_procs = analysis_ranks};
  for (std::size_t c = 0; c < ncfg; ++c) {
    pools.push_back(std::make_unique<ThreadPoolExecutor>(thread_counts[c]));
    pcfg.executor = pools[c].get();
    // Warm-up run (first-touch, pool spin-up) excluded from timing.
    const std::uint64_t fp =
        pda_fingerprint(parallel_data_analysis(big_files, pcfg));
    if (c == 0) fp_first = fp;
    if (fp != fp_first) {
      std::cerr << "FINGERPRINT MISMATCH at threads=" << thread_counts[c]
                << "\n";
      return 1;
    }
    before[c] = pools[c]->stats();
  }
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t c = 0; c < ncfg; ++c) {
      pcfg.executor = pools[c].get();
      t0 = std::chrono::steady_clock::now();
      const std::uint64_t fp =
          pda_fingerprint(parallel_data_analysis(big_files, pcfg));
      walls[c] += seconds_since(t0);
      if (fp != fp_first) {
        std::cerr << "FINGERPRINT MISMATCH at threads=" << thread_counts[c]
                  << "\n";
        return 1;
      }
    }
  }
  std::ostringstream hex;
  hex << std::hex << fp_first;
  for (std::size_t c = 0; c < ncfg; ++c) {
    const int threads = thread_counts[c];
    const double speedup = walls[0] / walls[c];
    scaling.add_row({std::to_string(threads), Table::num(walls[c] * 1e3, 2),
                     Table::num(speedup, 2) + "x", hex.str()});
    summary
        .add_row("pda_threads_" + std::to_string(threads), walls[c], threads,
                 static_cast<std::int64_t>(big_files.size()) * repeats)
        .add_field("analysis_ranks", analysis_ranks)
        .add_field("speedup_vs_first", speedup)
        .add_field("executor_occupancy",
                   (pools[c]->stats().busy_seconds - before[c].busy_seconds) /
                       (walls[c] * threads));
  }
  scaling.print(std::cout);
  if (default_thread_count() <= 1)
    std::cout << "note: this host exposes a single CPU; thread counts > 1 "
                 "time-slice on one core, so wall-clock speedup only "
                 "appears on multi-core hosts.\n";

  if (const auto path = bench::json_output_path(argc, argv))
    summary.write(*path);
  return 0;
}
