/// \file bench_processor_scaling.cpp
/// The §IV-B scalability argument: "the maximum number of hops between old
/// and new set of processors is likely to increase for the scratch method
/// with larger total processor count. Therefore the data redistribution
/// time may increase with increase in number of processors for the scratch
/// method. Processor reallocation via Huffman tree construction or
/// reorganization depends on the number of nests and is not affected by
/// increase in processor count."
///
/// Sweep Blue Gene/L partition sizes 256 → 4096 with the same nest trace
/// and report, per strategy: average/maximum hops of redistribution
/// traffic, total redistribution time, and — from the pipeline's stage
/// metrics — the (host) wall time of the reallocation machinery itself.

#include <iostream>

#include "bench_common.hpp"

using namespace stormtrack;

int main() {
  SweepSpec spec;
  spec.traces.push_back({"scaling", bench::synthetic_trace(40, 0x5ca1ab1e)});
  for (const int cores : {256, 512, 1024, 2048, 4096})
    spec.machines.push_back(sweep_bluegene(cores));
  spec.strategies = {"scratch", "diffusion"};

  const ModelStack models;
  const std::vector<SweepCaseResult> results =
      SweepRunner(models).run(spec);

  Table t({"Cores", "Strategy", "Avg hops/byte", "Max hops",
           "Redist total (s)"});
  t.set_title("Processor-count sweep (same 40-event trace; §IV-B "
              "scalability argument)");
  for (const SweepCaseResult& c : results) {
    int max_hops = 0;
    for (const StepOutcome& o : c.result.outcomes)
      max_hops = std::max(max_hops, o.traffic.max_hops);
    t.add_row({c.machine_name.substr(std::string("bluegene-").size()),
               c.strategy, Table::num(c.result.mean_avg_hop_bytes(), 2),
               std::to_string(max_hops),
               Table::num(c.result.total_redist(), 2)});
  }
  t.print(std::cout);

  // Reallocation decision cost: tree construction / reorganization must be
  // flat in the processor count (it only sees nest counts and weights).
  // The pipeline's stage metrics expose it directly: everything up to and
  // including Commit is decision machinery; Redistribute is the simulated
  // data movement.
  Table d({"Cores", "Decision stages (host us/event)",
           "Redistribute stage (host us/event)"});
  d.set_title("Reallocation machinery cost vs processor count "
              "(diffusion runs; per-stage pipeline metrics)");
  for (const SweepCaseResult& c : results) {
    if (c.strategy != "diffusion") continue;
    const MetricsRegistry& m = c.result.metrics;
    double decision = 0.0;
    for (const PipelineStage s :
         {PipelineStage::kDiffNests, PipelineStage::kDeriveWeights,
          PipelineStage::kBuildCandidates, PipelineStage::kPredictCosts,
          PipelineStage::kCommit})
      decision += m.get(stage_metric_name(s)).seconds;
    const double redist =
        m.get(stage_metric_name(PipelineStage::kRedistribute)).seconds;
    const double events = static_cast<double>(c.result.outcomes.size());
    d.add_row({c.machine_name.substr(std::string("bluegene-").size()),
               Table::num(decision * 1e6 / events, 1),
               Table::num(redist * 1e6 / events, 1)});
  }
  d.print(std::cout);

  std::cout << "Expected shape: scratch's hop distances (and with them its "
               "redistribution\ncost) grow with the torus size; diffusion's "
               "stay low; the reallocation\ndecision itself is dominated by "
               "redistribution planning, not the tree\noperations (see "
               "bench_micro_alloc for the isolated tree costs).\n";
  return 0;
}
