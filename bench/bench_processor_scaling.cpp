/// \file bench_processor_scaling.cpp
/// The §IV-B scalability argument: "the maximum number of hops between old
/// and new set of processors is likely to increase for the scratch method
/// with larger total processor count. Therefore the data redistribution
/// time may increase with increase in number of processors for the scratch
/// method. Processor reallocation via Huffman tree construction or
/// reorganization depends on the number of nests and is not affected by
/// increase in processor count."
///
/// Sweep Blue Gene/L partition sizes 256 → 4096 with the same nest trace
/// and report, per strategy: average/maximum hops of redistribution
/// traffic, total redistribution time, and the (host) wall time of the
/// reallocation decision itself.

#include <chrono>
#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 40;
  tcfg.seed = 0x5ca1ab1e;
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;

  Table t({"Cores", "Strategy", "Avg hops/byte", "Max hops",
           "Redist total (s)"});
  t.set_title("Processor-count sweep (same 40-event trace; §IV-B "
              "scalability argument)");
  for (const int cores : {256, 512, 1024, 2048, 4096}) {
    const Machine machine = Machine::bluegene(cores);
    for (const Strategy s : {Strategy::kScratch, Strategy::kDiffusion}) {
      const TraceRunResult r =
          run_trace(machine, models.model, models.truth, s, trace);
      int max_hops = 0;
      for (const StepOutcome& o : r.outcomes)
        max_hops = std::max(max_hops, o.traffic.max_hops);
      t.add_row({std::to_string(cores), to_string(s),
                 Table::num(r.mean_avg_hop_bytes(), 2),
                 std::to_string(max_hops),
                 Table::num(r.total_redist(), 2)});
    }
  }
  t.print(std::cout);

  // Reallocation decision cost: tree construction / reorganization must be
  // flat in the processor count (it only sees nest counts and weights).
  Table d({"Cores", "Mean reallocation decision (host µs/event)"});
  d.set_title("Reallocation machinery cost vs processor count");
  for (const int cores : {256, 1024, 4096}) {
    const Machine machine = Machine::bluegene(cores);
    const auto t0 = std::chrono::steady_clock::now();
    ManagerConfig cfg;
    cfg.strategy = Strategy::kDiffusion;
    ReallocationManager manager(machine, models.model, models.truth, cfg);
    for (const auto& active : trace) (void)manager.apply(active);
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(trace.size());
    d.add_row({std::to_string(cores), Table::num(us, 1)});
  }
  d.print(std::cout);

  std::cout << "Expected shape: scratch's hop distances (and with them its "
               "redistribution\ncost) grow with the torus size; diffusion's "
               "stay low; the reallocation\ndecision itself is dominated by "
               "redistribution planning, not the tree\noperations (see "
               "bench_micro_alloc for the isolated tree costs).\n";
  return 0;
}
