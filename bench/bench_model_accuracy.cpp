/// \file bench_model_accuracy.cpp
/// Accuracy of the §IV-C-2 execution-time model: Pearson correlation
/// between predicted and actual execution times over random nest
/// configurations (the paper reports r = 0.9 for its 13-domain ×
/// 10-processor-count campaign).
///
/// Two sweeps locate the paper's operating point:
///  * profiling-noise sweep at the paper's campaign size;
///  * campaign-size sweep at the calibrated noise level (how many profiled
///    domains are actually needed).

#include <iostream>

#include "perfmodel/exec_model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace stormtrack;

namespace {

double model_pearson(const GroundTruthCost& truth, const ExecTimeModel& model,
                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 300; ++i) {
    const NestShape n{static_cast<int>(rng.uniform_int(175, 361)),
                      static_cast<int>(rng.uniform_int(175, 361))};
    const int pw = static_cast<int>(rng.uniform_int(6, 24));
    const int ph = static_cast<int>(rng.uniform_int(6, 24));
    predicted.push_back(model.predict(n, pw * ph));
    actual.push_back(truth.execution_time(n, pw, ph));
  }
  return pearson(predicted, actual);
}

}  // namespace

int main() {
  const GroundTruthCost truth;

  Table noise_t({"Profiling noise (rel. stdev)", "Pearson r"});
  noise_t.set_title("Execution-time model accuracy vs profiling noise\n"
                    "(13 domains x 10 processor counts; paper reports "
                    "r = 0.9)");
  for (const double noise : {0.0, 0.05, 0.12, 0.25, 0.5}) {
    ProfileConfig cfg = ProfileConfig::paper_default();
    cfg.noise_rel_stdev = noise;
    const ExecTimeModel model(truth, cfg);
    noise_t.add_row({Table::num(noise, 2),
                     Table::num(model_pearson(truth, model, 1), 3)});
  }
  noise_t.print(std::cout);

  Table size_t_({"Profiled domains", "Pearson r"});
  size_t_.set_title("Model accuracy vs profiling-campaign size (calibrated "
                    "noise)");
  const ProfileConfig full = ProfileConfig::paper_default();
  for (const std::size_t domains : {4u, 7u, 10u, 13u}) {
    ProfileConfig cfg = full;
    cfg.domains.assign(full.domains.begin(),
                       full.domains.begin() + domains);
    const ExecTimeModel model(truth, cfg);
    size_t_.add_row({std::to_string(domains),
                     Table::num(model_pearson(truth, model, 2), 3)});
  }
  size_t_.print(std::cout);

  std::cout << "Even a noiseless model stays below r = 1: it predicts from "
               "the processor\n*count* and cannot see the rectangle aspect "
               "ratio the ground truth charges\nfor — the §V-F misprediction "
               "mechanism.\n";
  return 0;
}
