/// \file bench_fig09_clustering.cpp
/// Reproduces Fig. 9: nearest-neighbour clustering variants on a weather
/// field. The baseline (a) uses only a ≤2-hop distance criterion and no
/// mean-deviation guard — its clusters overlap in space. The paper's NNC
/// (b) checks 1-hop first, then 2-hop, and rejects joins that shift the
/// cluster mean by more than 30% — its clusters do not overlap and stay
/// bounded.
///
/// Quantified here over many simulated fields: number of clusters, number
/// of spatially overlapping cluster pairs, and the per-cluster relative
/// standard deviation of QCLOUD (the guard keeps it low).

#include <iostream>

#include "pda/parallel_nnc.hpp"
#include "pda/pda.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wsim/split_file.hpp"

using namespace stormtrack;

namespace {

struct VariantStats {
  std::vector<double> clusters;
  std::vector<double> overlapping_pairs;
  std::vector<double> rel_stdev;
};

void accumulate(std::span<const QCloudInfo> info,
                std::span<const Cluster> clusters, VariantStats& out) {
  out.clusters.push_back(static_cast<double>(clusters.size()));
  out.overlapping_pairs.push_back(
      static_cast<double>(count_overlapping_cluster_pairs(info, clusters)));
  for (const Cluster& c : clusters) {
    if (c.size() < 2) continue;
    std::vector<double> vals;
    for (int i : c) vals.push_back(info[static_cast<std::size_t>(i)].qcloud);
    out.rel_stdev.push_back(stdev(vals) / mean(vals));
  }
}

}  // namespace

int main() {
  WeatherModel model(WeatherConfig::mumbai_2005(), 0x0f19);
  const PdaConfig cfg{.analysis_procs = 64};

  VariantStats ours, baseline, parallel;
  const int kFields = 40;
  for (int step = 0; step < kFields; ++step) {
    model.step();
    const auto files = write_split_files(model, 32, 32);
    // Run Algorithm 1 up to the sorted qcloudinfo, then all clusterings.
    const PdaResult pda = parallel_data_analysis(files, cfg);
    accumulate(pda.qcloudinfo, pda.clusters, ours);
    const auto base_clusters = nnc_2hop_only(pda.qcloudinfo, cfg.nnc);
    accumulate(pda.qcloudinfo, base_clusters, baseline);
    const ParallelNncResult par =
        parallel_nnc(pda.qcloudinfo, cfg.nnc, /*num_ranks=*/16);
    accumulate(pda.qcloudinfo, par.clusters, parallel);
  }

  Table t({"Variant", "Mean clusters/field", "Overlapping pairs/field",
           "Mean in-cluster rel. stdev"});
  t.set_title("Fig. 9: NNC variants over " + std::to_string(kFields) +
              " simulated fields (1024 split files each)");
  t.add_row({"(a) 2-hop only, no mean-deviation",
             Table::num(mean(baseline.clusters), 2),
             Table::num(mean(baseline.overlapping_pairs), 2),
             Table::num(mean(baseline.rel_stdev), 2)});
  t.add_row({"(b) 1-hop+2-hop, 30% mean-deviation (ours)",
             Table::num(mean(ours.clusters), 2),
             Table::num(mean(ours.overlapping_pairs), 2),
             Table::num(mean(ours.rel_stdev), 2)});
  t.add_row({"(c) parallel NNC, 16 ranks (paper's future work)",
             Table::num(mean(parallel.clusters), 2),
             Table::num(mean(parallel.overlapping_pairs), 2),
             Table::num(mean(parallel.rel_stdev), 2)});
  t.print(std::cout);

  std::cout << "Paper (qualitative): variant (a) produces overlapping "
               "clusters;\nvariant (b) produces non-overlapping clusters "
               "with bounded size and\nlow deviation (§III, §V-A).\n";
  return 0;
}
