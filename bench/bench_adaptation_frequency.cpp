/// \file bench_adaptation_frequency.cpp
/// The paper's closing §V-F claim: "more frequent adaptation points seen
/// in our real runs … will result in higher performance improvement for
/// the dynamic scheme" — i.e. as redistribution makes up a larger share of
/// the total, strategy choice matters more.
///
/// Sweep the adaptation frequency (fewer nest steps between adaptation
/// points = more frequent reconfiguration relative to computation) and
/// report each strategy's total and the diffusion/dynamic improvement over
/// scratch.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 40;
  tcfg.seed = 0xfe0;
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);

  Table t({"Steps/interval", "Redist share of total",
           "Diffusion vs scratch", "Dynamic vs scratch"});
  t.set_title("Adaptation-frequency sweep on " + bgl.label() + " (" +
              std::to_string(trace.size()) + " reconfigurations; fewer "
              "steps = more frequent adaptation)");

  for (const int steps : {40, 20, 10, 5, 2, 1}) {
    ManagerConfig cfg;
    cfg.steps_per_interval = steps;
    const TraceRunResult scratch = run_trace(
        bgl, models.model, models.truth, "scratch", trace, cfg);
    const TraceRunResult diff = run_trace(
        bgl, models.model, models.truth, "diffusion", trace, cfg);
    const TraceRunResult dyn = run_trace(
        bgl, models.model, models.truth, "dynamic", trace, cfg);
    const double share = scratch.total_redist() / scratch.total();
    t.add_row({std::to_string(steps),
               Table::num(100.0 * share, 1) + "%",
               Table::num(percent_improvement(scratch.total(), diff.total()),
                          1) + "%",
               Table::num(percent_improvement(scratch.total(), dyn.total()),
                          1) + "%"});
  }
  t.print(std::cout);

  std::cout << "Expected shape (§V-F): as adaptation points become more "
               "frequent, the\nredistribution share grows and the "
               "diffusion/dynamic advantage over the\nscratch method "
               "widens.\n";
  return 0;
}
