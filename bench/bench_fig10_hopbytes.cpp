/// \file bench_fig10_hopbytes.cpp
/// Reproduces Fig. 10: average hop-bytes of the sender→receiver
/// communication for partition-from-scratch vs tree-based hierarchical
/// diffusion over 70 synthetic test cases on 1024 Blue Gene/L cores.
///
/// The metric per test case is the byte-weighted average hop count of the
/// redistribution traffic (hop-bytes / bytes). Paper: scratch averages
/// 5.25, diffusion 2.44 — 53% lower.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;  // 70 events (paper §V-B)
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);

  const TraceRunResult diff = run_trace(bgl, models.model, models.truth,
                                        "diffusion", trace);
  const TraceRunResult scratch = run_trace(bgl, models.model, models.truth,
                                           "scratch", trace);

  Table t({"Case", "Scratch avg hop-bytes", "Diffusion avg hop-bytes"});
  t.set_title("Fig. 10: average hop-bytes per synthetic test case on " +
              bgl.label());
  std::vector<double> s_series, d_series;
  for (std::size_t e = 0; e < trace.size(); ++e) {
    const auto& s = scratch.outcomes[e].traffic;
    const auto& d = diff.outcomes[e].traffic;
    if (s.total_bytes == 0 && d.total_bytes == 0) continue;
    s_series.push_back(s.avg_hops_per_byte());
    d_series.push_back(d.avg_hops_per_byte());
    t.add_row({std::to_string(e), Table::num(s_series.back(), 2),
               Table::num(d_series.back(), 2)});
  }
  t.print(std::cout);

  const double s_avg = mean(s_series);
  const double d_avg = mean(d_series);
  Table summary({"Series", "Average (paper)", "Average (ours)"});
  summary.add_row({"Partition from scratch", "5.25", Table::num(s_avg, 2)});
  summary.add_row({"Tree-based hierarchical diffusion", "2.44",
                   Table::num(d_avg, 2)});
  summary.print(std::cout);
  std::cout << "Reduction in hop-bytes: paper 53%, ours "
            << Table::num(percent_improvement(s_avg, d_avg), 0) << "%\n";
  return 0;
}
