/// \file bench_adaptation_hotpath.cpp
/// Candidate-pricing throughput of the adaptation hot path: the streaming
/// redistribution-cost walk (redistribution_cost + RedistTimeModel) plus
/// the memoized execution-time model, at 64–4096 BG/L ranks and 1–8 nests.
///
/// This is the perf-regression anchor for the allocation-free pricing
/// path. Besides advisory wall times (1-CPU CI runners make wall time too
/// noisy to gate on), every row pins *deterministic* counters that the CI
/// perf-smoke job diffs against bench/baselines/BENCH_adaptation.json via
/// tools/check_bench_regression.py:
///
///   counter_cost_queries            streaming pricings performed
///   counter_plans_built             RedistPlan materializations — must
///                                   stay 0 in the pricing loop
///   counter_messages_materialized   Message structs pushed — must stay 0
///   counter_intersection_probes     interval-index bisection steps
///   counter_moved_blocks            off-rank blocks enumerated
///   counter_exec_lookups            ExecTimeModel::predict calls
///   counter_exec_misses             cold interpolations (cache misses)
///
/// A regression that reintroduces message-vector materialization into
/// pricing, or defeats the exec-model memo cache, moves these counters far
/// beyond the 25% gate even when wall time hides it.
///
/// A second, extreme-scale section prices at 65536–1048576 ranks on all
/// four topology models (rows "topo=<name>/ranks=<P>", pricing-only, no
/// exec model). Those rows pin the same counters AND assert in-binary
/// (CheckError -> nonzero exit) that intersection probes stay sub-linear
/// in the rank count — the dense sender×receiver walk this path replaced
/// was Ω(P) per query, so quadratic behaviour cannot sneak past the drift
/// gate.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "perfmodel/redist_model.hpp"
#include "redist/redistributor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace stormtrack {
namespace {

/// One retained nest at one adaptation point: price moving `shape` from
/// `old_rect` to `new_rect`.
struct PricingCase {
  NestShape shape;
  Rect old_rect;
  Rect new_rect;
};

Rect random_rect(Xoshiro256& rng, int px, int py) {
  const int w = static_cast<int>(rng.uniform_int(1, px));
  const int h = static_cast<int>(rng.uniform_int(1, py));
  const int x = static_cast<int>(rng.uniform_int(0, px - w));
  const int y = static_cast<int>(rng.uniform_int(0, py - h));
  return Rect{x, y, w, h};
}

/// The pricing workload of `points` adaptation points over `nests` nests.
/// Shapes and rects recur across points (a pool, like real traces where
/// the same nests persist between events) so the exec-model cache sees the
/// recurrence it is built for; everything is drawn from a fixed-seed
/// Xoshiro so the counter fields are bit-deterministic across runs and
/// machines.
std::vector<PricingCase> make_workload(int points, int nests, int px, int py,
                                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int pool_size = 4 * nests;
  std::vector<NestShape> shapes;
  shapes.reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i)
    shapes.push_back(NestShape{static_cast<int>(rng.uniform_int(100, 450)),
                               static_cast<int>(rng.uniform_int(100, 450))});
  std::vector<std::pair<Rect, Rect>> moves;
  moves.reserve(16);
  for (int i = 0; i < 16; ++i)
    moves.emplace_back(random_rect(rng, px, py), random_rect(rng, px, py));

  std::vector<PricingCase> out;
  out.reserve(static_cast<std::size_t>(points) *
              static_cast<std::size_t>(nests));
  for (int p = 0; p < points; ++p)
    for (int n = 0; n < nests; ++n) {
      const auto& [old_rect, new_rect] =
          moves[static_cast<std::size_t>((p * 5 + n * 3) % 16)];
      out.push_back(PricingCase{
          shapes[static_cast<std::size_t>((p + n) % pool_size)], old_rect,
          new_rect});
    }
  return out;
}

struct RowResult {
  double wall_seconds = 0.0;
  std::int64_t cases = 0;
  RedistCounters redist;          ///< Deltas over the pricing loop.
  ExecModelCacheStats exec;
  double checksum = 0.0;          ///< Defeats dead-code elimination.
};

RowResult run_config(int ranks, int nests) {
  const Machine machine = Machine::bluegene(ranks);
  const RedistTimeModel redist_model(machine.comm());
  // Fresh model per row: the exec lookup/miss counters of each row are
  // independent of the row execution order.
  const ModelStack models;

  constexpr int kPoints = 192;
  constexpr int kRepeats = 3;
  const std::vector<PricingCase> workload =
      make_workload(kPoints, nests, machine.grid_px(), machine.grid_py(),
                    0x9e3779b9ULL ^ (static_cast<std::uint64_t>(ranks) << 8) ^
                        static_cast<std::uint64_t>(nests));

  RowResult row;
  const RedistCounters before = redist_counters();
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r)
    for (const PricingCase& c : workload) {
      const RedistCostSummary cost = redistribution_cost(
          c.shape, c.old_rect, c.new_rect, machine.grid_px(),
          kDefaultBytesPerPoint, &machine.comm());
      row.checksum += redist_model.predict(cost);
      row.checksum += models.model.predict(
          c.shape, static_cast<int>(c.new_rect.area()));
    }
  const auto t1 = std::chrono::steady_clock::now();
  const RedistCounters after = redist_counters();

  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  row.cases = static_cast<std::int64_t>(workload.size()) * kRepeats;
  row.redist.cost_queries = after.cost_queries - before.cost_queries;
  row.redist.plans_built = after.plans_built - before.plans_built;
  row.redist.messages_materialized =
      after.messages_materialized - before.messages_materialized;
  row.redist.message_bytes_materialized =
      after.message_bytes_materialized - before.message_bytes_materialized;
  row.redist.intersection_probes =
      after.intersection_probes - before.intersection_probes;
  row.redist.moved_blocks_enumerated =
      after.moved_blocks_enumerated - before.moved_blocks_enumerated;
  row.exec = models.model.cache_stats();
  return row;
}

// ------------------------------------------------- extreme-scale section

/// Pricing-only row at extreme rank counts: no exec model, no plans — the
/// sparse interval-index walk is the only per-candidate work that survives
/// at this scale.
RowResult run_extreme(const std::string& topo, int ranks) {
  const Machine machine = Machine::by_name(topo, ranks);
  constexpr int kQueries = 24;
  const std::vector<PricingCase> workload =
      make_workload(kQueries, 1, machine.grid_px(), machine.grid_py(),
                    0x5ca1ab1eULL ^ (static_cast<std::uint64_t>(ranks) << 4) ^
                        static_cast<std::uint64_t>(topo.size()));

  RowResult row;
  const RedistCounters before = redist_counters();
  const auto t0 = std::chrono::steady_clock::now();
  for (const PricingCase& c : workload) {
    const RedistCostSummary cost = redistribution_cost(
        c.shape, c.old_rect, c.new_rect, machine.grid_px(),
        kDefaultBytesPerPoint, &machine.comm());
    row.checksum += static_cast<double>(cost.hop_bytes) +
                    cost.worst_pair_time + cost.worst_sender_time;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const RedistCounters after = redist_counters();

  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  row.cases = static_cast<std::int64_t>(workload.size());
  row.redist.cost_queries = after.cost_queries - before.cost_queries;
  row.redist.plans_built = after.plans_built - before.plans_built;
  row.redist.messages_materialized =
      after.messages_materialized - before.messages_materialized;
  row.redist.intersection_probes =
      after.intersection_probes - before.intersection_probes;
  row.redist.moved_blocks_enumerated =
      after.moved_blocks_enumerated - before.moved_blocks_enumerated;

  // The scaling gate: grid-spanning rects probe O((w + h) · log P) — far
  // below one probe per rank. Linear (let alone quadratic) behaviour
  // trips this long before the counter-drift gate would notice.
  const double per_query = static_cast<double>(row.redist.intersection_probes) /
                           static_cast<double>(row.redist.cost_queries);
  ST_CHECK_MSG(per_query < static_cast<double>(ranks),
               topo << " at " << ranks << " ranks: " << per_query
                    << " probes/query is not sub-linear in the rank count");
  return row;
}

}  // namespace
}  // namespace stormtrack

int main(int argc, char** argv) {
  using namespace stormtrack;

  constexpr int kRanks[] = {64, 256, 1024, 4096};
  constexpr int kNests[] = {1, 2, 4, 8};

  bench::JsonSummary summary("adaptation_hotpath");
  Table table({"Ranks", "Nests", "Pricings", "Wall (ms)", "Pricings/s",
               "Plans built", "Exec hit rate"});
  table.set_title(
      "Candidate-pricing throughput (streaming cost + memoized exec model)");

  for (const int ranks : kRanks)
    for (const int nests : kNests) {
      const RowResult row = run_config(ranks, nests);
      const double per_second =
          row.wall_seconds > 0.0
              ? static_cast<double>(row.cases) / row.wall_seconds
              : 0.0;
      table.add_row({std::to_string(ranks), std::to_string(nests),
                     std::to_string(row.cases),
                     Table::num(row.wall_seconds * 1e3, 2),
                     Table::num(per_second, 0),
                     std::to_string(row.redist.plans_built),
                     Table::num(row.exec.hit_rate(), 3)});
      summary
          .add_row("ranks=" + std::to_string(ranks) +
                       "/nests=" + std::to_string(nests),
                   row.wall_seconds, 1, row.cases)
          .add_field("counter_cost_queries",
                     static_cast<double>(row.redist.cost_queries))
          .add_field("counter_plans_built",
                     static_cast<double>(row.redist.plans_built))
          .add_field("counter_messages_materialized",
                     static_cast<double>(row.redist.messages_materialized))
          .add_field("counter_intersection_probes",
                     static_cast<double>(row.redist.intersection_probes))
          .add_field("counter_moved_blocks",
                     static_cast<double>(
                         row.redist.moved_blocks_enumerated))
          .add_field("counter_exec_lookups",
                     static_cast<double>(row.exec.lookups))
          .add_field("counter_exec_misses",
                     static_cast<double>(row.exec.misses))
          .add_field("pricings_per_second", per_second)
          .add_field("checksum", row.checksum);
    }

  table.print(std::cout);

  const std::string kTopos[] = {"bgl", "fist", "dragonfly", "fattree"};
  constexpr int kExtremeRanks[] = {65536, 262144, 1048576};
  Table extreme({"Topology", "Ranks", "Queries", "Wall (ms)",
                 "Probes/query", "Blocks/query", "Plans built"});
  extreme.set_title(
      "Extreme-scale pricing (interval-index only, 65k-1M ranks)");
  for (const std::string& topo : kTopos) {
    double probes_at_min = 0.0;
    for (const int ranks : kExtremeRanks) {
      const RowResult row = run_extreme(topo, ranks);
      const double probes_per_query =
          static_cast<double>(row.redist.intersection_probes) /
          static_cast<double>(row.redist.cost_queries);
      if (ranks == kExtremeRanks[0]) probes_at_min = probes_per_query;
      // Axis extents grow 4x over the sweep; probes grow ~ axis · log
      // axis. A 16x jump would mean the index degenerated to a scan.
      ST_CHECK_MSG(probes_per_query <= 8.0 * probes_at_min,
                   topo << " probe growth " << probes_at_min << " -> "
                        << probes_per_query
                        << " across the rank sweep is super-logarithmic");
      extreme.add_row(
          {topo, std::to_string(ranks), std::to_string(row.cases),
           Table::num(row.wall_seconds * 1e3, 2),
           Table::num(probes_per_query, 1),
           Table::num(static_cast<double>(
                          row.redist.moved_blocks_enumerated) /
                          static_cast<double>(row.redist.cost_queries),
                      0),
           std::to_string(row.redist.plans_built)});
      summary
          .add_row("topo=" + topo + "/ranks=" + std::to_string(ranks),
                   row.wall_seconds, 1, row.cases)
          .add_field("counter_cost_queries",
                     static_cast<double>(row.redist.cost_queries))
          .add_field("counter_plans_built",
                     static_cast<double>(row.redist.plans_built))
          .add_field("counter_messages_materialized",
                     static_cast<double>(row.redist.messages_materialized))
          .add_field("counter_intersection_probes",
                     static_cast<double>(row.redist.intersection_probes))
          .add_field("counter_moved_blocks",
                     static_cast<double>(
                         row.redist.moved_blocks_enumerated))
          .add_field("probes_per_query", probes_per_query)
          .add_field("checksum", row.checksum);
    }
  }
  extreme.print(std::cout);

  std::cout << "Pricing must build zero plans and materialize zero messages "
               "(counters above);\nwall times are advisory, the counter_* "
               "fields are the regression gate. The\nextreme-scale rows "
               "additionally assert sub-linear probe growth in-binary.\n";

  if (const auto path = bench::json_output_path(argc, argv))
    summary.write(*path);
  return 0;
}
