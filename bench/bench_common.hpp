#pragma once

/// \file bench_common.hpp
/// Helpers shared by the bench binaries: standard trace construction,
/// decision-quality statistics for dynamic-strategy runs, per-stage
/// metrics printing, and a machine-readable JSON summary (--json out.json)
/// so speedup trajectories are trackable across PRs. Keeps the binaries
/// down to "declare the grid, hand it to SweepRunner, print the paper's
/// tables".

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace stormtrack::bench {

/// The paper's synthetic trace (§V-B) with the usual config knobs.
[[nodiscard]] inline Trace synthetic_trace(int num_events,
                                           std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.num_events = num_events;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

/// Decision quality of a dynamic-strategy run against the simulator's
/// ground truth (§V-F): per-point correctness plus the predicted/actual
/// execution-time series for Pearson correlation.
struct DecisionQuality {
  int correct = 0;           ///< Points where chosen == actually best.
  int diffusion_best = 0;    ///< Points where diffusion was actually best.
  std::vector<double> predicted;  ///< Committed predicted exec times.
  std::vector<double> actual;     ///< Committed actual exec times.

  [[nodiscard]] double pearson_r() const {
    return pearson(predicted, actual);
  }
};

[[nodiscard]] inline DecisionQuality decision_quality(
    const TraceRunResult& run) {
  DecisionQuality q;
  for (const StepOutcome& o : run.outcomes) {
    const bool diffusion_best =
        o.diffusion.actual_total() <= o.scratch.actual_total();
    q.diffusion_best += diffusion_best ? 1 : 0;
    if ((o.chosen == "diffusion") == diffusion_best) ++q.correct;
    q.predicted.push_back(o.committed.predicted_exec);
    q.actual.push_back(o.committed.actual_exec);
  }
  return q;
}

/// Print the merged per-stage pipeline metrics of a sweep (wall times of
/// DiffNests → Redistribute, candidate build counts, ...).
inline void print_stage_metrics(const std::vector<SweepCaseResult>& results,
                                const std::string& title) {
  merged_metrics(results).to_table(title).print(std::cout);
}

/// Machine-readable bench summary: one JSON object per measured
/// configuration ("row"), each carrying wall time, thread count, case
/// count, and any extra numeric fields the bench wants tracked. Written
/// when the binary is invoked with `--json out.json`.
class JsonSummary {
 public:
  explicit JsonSummary(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Start a row; chain add_field() calls to extend it.
  JsonSummary& add_row(const std::string& label, double wall_seconds,
                       int threads, std::int64_t cases) {
    rows_.emplace_back();
    std::ostringstream& r = rows_.back();
    r << "    {\"label\": " << quote(label)
      << ", \"wall_seconds\": " << format(wall_seconds)
      << ", \"threads\": " << threads << ", \"cases\": " << cases;
    return *this;
  }

  /// Append a numeric field to the most recent row.
  JsonSummary& add_field(const std::string& key, double value) {
    ST_CHECK_MSG(!rows_.empty(), "add_field before any add_row");
    rows_.back() << ", " << quote(key) << ": " << format(value);
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    std::ostringstream out;
    out << "{\n  \"bench\": " << quote(bench_name_)
        << ",\n  \"git_sha\": " << quote(git_sha())
        << ",\n  \"build_type\": " << quote(build_type())
        << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i].str() << "}" << (i + 1 < rows_.size() ? "," : "")
          << "\n";
    out << "  ]\n}\n";
    return out.str();
  }

  void write(const std::string& path) const {
    // Atomic replace: a crash mid-write never leaves truncated JSON.
    write_file_atomic(std::filesystem::path(path), to_json());
    std::cout << "json summary written to " << path << "\n";
  }

  /// Commit the binary was built from (baselines must be attributable);
  /// "unknown" outside a git checkout.
  [[nodiscard]] static std::string git_sha() {
#ifdef ST_BENCH_GIT_SHA
    return ST_BENCH_GIT_SHA;
#else
    return "unknown";
#endif
  }

  /// CMake build type ("Release", "Debug", ...); counters are build-type
  /// independent but wall times are not.
  [[nodiscard]] static std::string build_type() {
#ifdef ST_BENCH_BUILD_TYPE
    return ST_BENCH_BUILD_TYPE;
#else
    return "unknown";
#endif
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  static std::string format(double v) {
    std::ostringstream s;
    s.precision(17);  // round-trip exact
    s << v;
    return s.str();
  }

  std::string bench_name_;
  std::vector<std::ostringstream> rows_;
};

/// The `--json out.json` argument when present (shared bench convention).
[[nodiscard]] inline std::optional<std::string> json_output_path(
    int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return std::string(argv[i + 1]);
  return std::nullopt;
}

}  // namespace stormtrack::bench
