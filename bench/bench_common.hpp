#pragma once

/// \file bench_common.hpp
/// Helpers shared by the bench binaries: standard trace construction,
/// decision-quality statistics for dynamic-strategy runs, and per-stage
/// metrics printing. Keeps the binaries down to "declare the grid, hand it
/// to SweepRunner, print the paper's tables".

#include <iostream>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "util/stats.hpp"

namespace stormtrack::bench {

/// The paper's synthetic trace (§V-B) with the usual config knobs.
[[nodiscard]] inline Trace synthetic_trace(int num_events,
                                           std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.num_events = num_events;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

/// Decision quality of a dynamic-strategy run against the simulator's
/// ground truth (§V-F): per-point correctness plus the predicted/actual
/// execution-time series for Pearson correlation.
struct DecisionQuality {
  int correct = 0;           ///< Points where chosen == actually best.
  int diffusion_best = 0;    ///< Points where diffusion was actually best.
  std::vector<double> predicted;  ///< Committed predicted exec times.
  std::vector<double> actual;     ///< Committed actual exec times.

  [[nodiscard]] double pearson_r() const {
    return pearson(predicted, actual);
  }
};

[[nodiscard]] inline DecisionQuality decision_quality(
    const TraceRunResult& run) {
  DecisionQuality q;
  for (const StepOutcome& o : run.outcomes) {
    const bool diffusion_best =
        o.diffusion.actual_total() <= o.scratch.actual_total();
    q.diffusion_best += diffusion_best ? 1 : 0;
    if ((o.chosen == "diffusion") == diffusion_best) ++q.correct;
    q.predicted.push_back(o.committed.predicted_exec);
    q.actual.push_back(o.committed.actual_exec);
  }
  return q;
}

/// Print the merged per-stage pipeline metrics of a sweep (wall times of
/// DiffNests → Redistribute, candidate build counts, ...).
inline void print_stage_metrics(const std::vector<SweepCaseResult>& results,
                                const std::string& title) {
  merged_metrics(results).to_table(title).print(std::cout);
}

}  // namespace stormtrack::bench
