/// \file bench_fig11_overlap.cpp
/// Reproduces Fig. 11 (+ the §V-E fist numbers): the percentage of nest
/// data points whose owner processor is unchanged between the old and new
/// allocation ("overlap between senders and receivers"), per synthetic
/// test case, for partition-from-scratch vs tree-based hierarchical
/// diffusion.
///
/// Paper: on 1024 BG/L cores diffusion shows visibly higher overlap per
/// case (up to ~60–70%); on the fist cluster the averages are 27%
/// (diffusion) vs 15% (scratch).

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

namespace {

void run_machine(const Machine& machine, const Trace& trace,
                 const ModelStack& models, bool per_case_table) {
  const TraceRunResult diff = run_trace(machine, models.model, models.truth,
                                        "diffusion", trace);
  const TraceRunResult scratch = run_trace(machine, models.model,
                                           models.truth, "scratch",
                                           trace);
  std::vector<double> s_series, d_series;
  Table t({"Case", "Scratch overlap %", "Diffusion overlap %"});
  t.set_title("Fig. 11: sender/receiver data-point overlap per case on " +
              machine.label());
  for (std::size_t e = 0; e < trace.size(); ++e) {
    if (scratch.outcomes[e].num_retained == 0) continue;
    s_series.push_back(100.0 * scratch.outcomes[e].overlap_fraction);
    d_series.push_back(100.0 * diff.outcomes[e].overlap_fraction);
    t.add_row({std::to_string(e), Table::num(s_series.back(), 1),
               Table::num(d_series.back(), 1)});
  }
  if (per_case_table) t.print(std::cout);

  const Summary s = summarize(s_series);
  const Summary d = summarize(d_series);
  Table summary({"Series", "Mean overlap %", "Max overlap %"});
  summary.set_title("Summary on " + machine.label());
  summary.add_row({"Partition from scratch", Table::num(s.mean, 1),
                   Table::num(s.max, 1)});
  summary.add_row({"Tree-based hierarchical diffusion", Table::num(d.mean, 1),
                   Table::num(d.max, 1)});
  summary.print(std::cout);
}

}  // namespace

int main() {
  SyntheticTraceConfig tcfg;  // 70 events (paper §V-B)
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;

  run_machine(Machine::bluegene(1024), trace, models, /*per_case_table=*/true);
  std::cout << "(Paper, fist cluster: diffusion 27% vs scratch 15% average "
               "overlap.)\n\n";
  run_machine(Machine::fist_cluster(256), trace, models,
              /*per_case_table=*/false);
  return 0;
}
