/// \file bench_particle_advection.cpp
/// Particle-workload throughput through the coupled engine: full
/// CoupledSimulation runs (weather + PDA + reallocation + Lagrangian
/// advection) at 1–8 integration threads on BG/L 256.
///
/// Wall times (particles advected per second) are advisory — 1-CPU CI
/// runners make them too noisy to gate on. The regression anchors are the
/// deterministic `counter_*` fields, diffed against
/// bench/baselines/BENCH_particles.json by tools/check_bench_regression.py
/// in the CI perf-smoke job:
///
///   counter_advected_steps     particle × sub-step advections performed
///   counter_handoffs           ownership transfers at sub-steps
///   counter_ping_pong          handoffs straight back to the previous owner
///   counter_moved_on_realloc   particles shipped by rectangle moves
///   counter_active_ranks       Σ per-integration participating ranks
///   counter_rank_slots         Σ per-integration rectangle capacity
///   counter_fingerprint_mod    state fingerprint mod 2^32 (bit-identity)
///
/// Every thread count must land on the same counters and the same state
/// fingerprint; the binary asserts that in-process (CheckError → nonzero
/// exit), so a scheduling-dependent advection path fails CI even before
/// the drift gate runs.
///
/// A second section replays the paper's Fig. 12 configuration (BG/L 1024,
/// 12 reconfigurations) under scratch vs. diffusion with the particle
/// payload, pinning the strategy comparison EXPERIMENTS.md reports:
/// retained-nest overlap, redistribution hop-bytes, and the particles
/// genuinely shipped by rectangle moves.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "exec/executor.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace stormtrack {
namespace {

constexpr int kIntervals = 10;

CoupledConfig bench_config() {
  CoupledConfig cfg;
  cfg.scenario.weather.domain.resolution_km = 24.0;
  cfg.scenario.sim_px = 16;
  cfg.scenario.sim_py = 16;
  cfg.scenario.pda.analysis_procs = 16;
  cfg.manager.steps_per_interval = 3;
  cfg.manager.strategy = "diffusion";
  cfg.workload = "particles";
  return cfg;
}

struct RowResult {
  double wall_seconds = 0.0;
  std::int64_t advected_steps = 0;
  std::int64_t handoffs = 0;
  std::int64_t ping_pong = 0;
  std::int64_t moved_on_realloc = 0;
  std::int64_t active_ranks = 0;
  std::int64_t rank_slots = 0;
  std::uint64_t fingerprint = 0;
};

RowResult run_threads(int threads) {
  const Machine machine = Machine::bluegene(256);
  const ModelStack models;
  std::unique_ptr<ThreadPoolExecutor> pool;
  CoupledConfig cfg = bench_config();
  if (threads > 1) {
    pool = std::make_unique<ThreadPoolExecutor>(threads);
    cfg.executor = pool.get();
  }
  CoupledSimulation sim(machine, models.model, models.truth, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIntervals; ++i) (void)sim.advance();
  const auto t1 = std::chrono::steady_clock::now();

  RowResult row;
  row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const MetricsRegistry& m = sim.metrics();
  row.advected_steps = m.get("workload.advected_particle_steps").count;
  row.handoffs = m.get("workload.handoffs").count;
  row.ping_pong = m.get("workload.ping_pong_particles").count;
  row.moved_on_realloc = m.get("workload.particles_moved_on_realloc").count;
  row.active_ranks = m.get("workload.active_ranks").count;
  row.rank_slots = m.get("workload.rank_slots").count;
  row.fingerprint = sim.state_fingerprint();
  return row;
}

// --------------------------------------------- strategy-comparison section

struct StrategyResult {
  double mean_overlap = 0.0;          ///< Fig. 11 metric, retained points.
  std::int64_t redist_hop_bytes = 0;  ///< Priced redistribution traffic.
  std::int64_t workload_moved_bytes = 0;  ///< Particle records shipped.
  std::int64_t particles_moved = 0;
  std::int64_t handoffs = 0;
};

/// The Fig. 12 configuration (BG/L 1024, 12 reconfigurations, full-size
/// Mumbai domain) with the particle payload under one strategy.
StrategyResult run_strategy(const char* strategy) {
  const Machine machine = Machine::bluegene(1024);
  const ModelStack models;
  CoupledConfig cfg;
  cfg.scenario.num_intervals = 12;
  cfg.manager.steps_per_interval = 3;
  cfg.manager.strategy = strategy;
  cfg.workload = "particles";
  CoupledSimulation sim(machine, models.model, models.truth, cfg);

  StrategyResult r;
  double overlap_sum = 0.0;
  int overlap_points = 0;
  for (int i = 0; i < 12; ++i) {
    const IntervalReport report = sim.advance();
    if (!report.diff.retained.empty()) {
      overlap_sum += report.realloc.overlap_fraction;
      ++overlap_points;
    }
    r.redist_hop_bytes += report.realloc.traffic.hop_bytes;
    r.workload_moved_bytes += report.workload_traffic.total_bytes;
  }
  r.mean_overlap = overlap_points > 0 ? overlap_sum / overlap_points : 0.0;
  r.particles_moved =
      sim.metrics().get("workload.particles_moved_on_realloc").count;
  r.handoffs = sim.metrics().get("workload.handoffs").count;
  return r;
}

}  // namespace
}  // namespace stormtrack

int main(int argc, char** argv) {
  using namespace stormtrack;

  constexpr int kThreads[] = {1, 2, 4, 8};

  bench::JsonSummary summary("particle_advection");
  Table table({"Threads", "Intervals", "Advections", "Wall (ms)",
               "Particles/s", "Handoffs", "Ping-pong", "Realloc moves"});
  table.set_title(
      "Particle advection throughput (coupled run, BG/L 256, diffusion)");

  RowResult reference;
  for (const int threads : kThreads) {
    const RowResult row = run_threads(threads);
    if (threads == kThreads[0]) {
      reference = row;
    } else {
      // Thread-count bit-identity is part of the workload contract; a
      // scheduling-dependent advection or handoff path must fail here,
      // not just drift past the counter gate.
      ST_CHECK_MSG(row.fingerprint == reference.fingerprint,
                   threads << " threads diverged from serial: fingerprint "
                           << std::hex << row.fingerprint << " vs "
                           << reference.fingerprint);
      ST_CHECK_MSG(row.handoffs == reference.handoffs &&
                       row.advected_steps == reference.advected_steps,
                   threads << " threads changed the deterministic counters");
    }
    const double per_second =
        row.wall_seconds > 0.0
            ? static_cast<double>(row.advected_steps) / row.wall_seconds
            : 0.0;
    table.add_row({std::to_string(threads), std::to_string(kIntervals),
                   std::to_string(row.advected_steps),
                   Table::num(row.wall_seconds * 1e3, 2),
                   Table::num(per_second, 0), std::to_string(row.handoffs),
                   std::to_string(row.ping_pong),
                   std::to_string(row.moved_on_realloc)});
    summary
        .add_row("threads=" + std::to_string(threads), row.wall_seconds,
                 threads, row.advected_steps)
        .add_field("counter_advected_steps",
                   static_cast<double>(row.advected_steps))
        .add_field("counter_handoffs", static_cast<double>(row.handoffs))
        .add_field("counter_ping_pong", static_cast<double>(row.ping_pong))
        .add_field("counter_moved_on_realloc",
                   static_cast<double>(row.moved_on_realloc))
        .add_field("counter_active_ranks",
                   static_cast<double>(row.active_ranks))
        .add_field("counter_rank_slots",
                   static_cast<double>(row.rank_slots))
        .add_field("counter_fingerprint_mod",
                   static_cast<double>(row.fingerprint & 0xffffffffull))
        .add_field("particles_per_second", per_second);
  }

  table.print(std::cout);

  Table strategies({"Strategy", "Mean overlap", "Redist hop-bytes",
                    "Moved bytes", "Particles moved", "Handoffs"});
  strategies.set_title(
      "Scratch vs diffusion, particle payload (Fig. 12 config, BG/L 1024)");
  for (const char* strategy : {"scratch", "diffusion"}) {
    const StrategyResult r = run_strategy(strategy);
    strategies.add_row(
        {strategy, Table::num(r.mean_overlap, 3),
         std::to_string(r.redist_hop_bytes),
         std::to_string(r.workload_moved_bytes),
         std::to_string(r.particles_moved), std::to_string(r.handoffs)});
    summary.add_row(std::string("strategy=") + strategy, 0.0, 1, 12)
        .add_field("counter_redist_hop_bytes",
                   static_cast<double>(r.redist_hop_bytes))
        .add_field("counter_workload_moved_bytes",
                   static_cast<double>(r.workload_moved_bytes))
        .add_field("counter_particles_moved",
                   static_cast<double>(r.particles_moved))
        .add_field("counter_strategy_handoffs",
                   static_cast<double>(r.handoffs))
        .add_field("mean_overlap", r.mean_overlap);
  }
  strategies.print(std::cout);

  std::cout << "All thread counts must agree on every counter and on the "
               "state fingerprint\n(asserted in-binary); wall times are "
               "advisory, the counter_* fields are the\nregression gate "
               "against bench/baselines/BENCH_particles.json.\n";

  if (const auto path = bench::json_output_path(argc, argv))
    summary.write(*path);
  return 0;
}
