/// \file bench_ablations.cpp
/// Ablations of the design choices DESIGN.md calls out:
///  (i)  topology mapping — folding (paper §V-C) vs row-major vs random
///       placement of the process grid on the BG/L torus;
///  (ii) diffusion insertion heuristic — closest-sibling-weight slot
///       (Algorithm 3 line 13) vs first-free-slot;
///  (iii) subdivision split orientation — longest-dimension (ours) vs
///       alternating per tree level.
///
/// Each ablation runs the 70-case synthetic suite and reports the metric
/// the design choice targets.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

namespace {

// ----------------------------------------------------------- ablation (i)

void mapping_ablation(const Trace& trace, const ModelStack& models) {
  Table t({"Mapping", "Mean avg hop-bytes", "Total redist time (s)",
           "Grid-neighbour dilation"});
  t.set_title("Ablation (i): rank->node mapping on the 1024-node torus "
              "(diffusion strategy)");
  for (const char* name : {"folding", "row-major", "random"}) {
    auto torus = make_bluegene(1024);
    std::unique_ptr<Mapping> mapping;
    if (std::string(name) == "folding")
      mapping = std::make_unique<FoldingMapping>(32, 32, *torus);
    else if (std::string(name) == "row-major")
      mapping = std::make_unique<RowMajorMapping>(1024);
    else
      mapping = std::make_unique<RandomMapping>(1024, 99);
    const double dilation =
        average_neighbor_dilation(*torus, *mapping, 32, 32);
    Machine machine(std::move(torus), std::move(mapping), 32, 32,
                    std::string("BG/L 1024 ") + name);
    const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                       Strategy::kDiffusion, trace);
    t.add_row({name, Table::num(r.mean_avg_hop_bytes(), 2),
               Table::num(r.total_redist(), 2), Table::num(dilation, 2)});
  }
  t.print(std::cout);
}

// ---------------------------------------------------------- ablation (ii)

/// The closest-weight insertion rule exists to keep rectangles square-like
/// (§IV-B, Figs. 6/7): pairing the new node (0.4) with the similar-weight
/// node (0.3) splits the parent rectangle ~3/7 vs 4/7, while pairing it
/// with a light node (0.15) splits ~8/11 vs 3/11 and skews the light
/// node's rectangle. Quantify on the paper's worked example, plus the
/// ground-truth execution cost of the resulting skew.
void insertion_ablation(const ModelStack& models) {
  const Rect parent{0, 0, 16, 22};  // a representative subtree rectangle
  const std::vector<NestWeight> good_pair{{4, 0.4}, {1, 0.3}};
  const std::vector<NestWeight> bad_pair{{4, 0.4}, {2, 0.15}};
  const auto good = AllocTree::huffman(good_pair).subdivide(parent);
  const auto bad = AllocTree::huffman(bad_pair).subdivide(parent);

  Table t({"Pairing", "Light node rect", "Aspect ratio",
           "Exec time of light nest (s/step)"});
  t.set_title("Ablation (ii): insertion beside closest weight (Fig. 6) vs "
              "beside a light node (Fig. 7)");
  const NestShape light_nest{220, 220};
  auto row = [&](const char* name, const Rect& r) {
    t.add_row({name, std::to_string(r.w) + " x " + std::to_string(r.h),
               Table::num(r.aspect_ratio(), 2),
               Table::num(models.truth.execution_time(light_nest, r.w, r.h),
                          3)});
  };
  row("similar weights (0.4 | 0.3) - light node rect", good.at(1));
  row("dissimilar weights (0.4 | 0.15) - light node rect", bad.at(2));
  t.print(std::cout);
}

// --------------------------------------------------------- ablation (iii)

void split_ablation(const Trace& trace, const ModelStack& models) {
  // The longest-dimension rule is baked into subdivide(); quantify what it
  // buys by comparing the nests' aspect-ratio distribution against the
  // theoretical square bound sqrt(area) and report execution-time impact
  // via the ground truth.
  const Machine machine = Machine::bluegene(1024);
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     Strategy::kScratch, trace);
  std::vector<double> aspects;
  for (const StepOutcome& o : r.outcomes)
    for (const auto& [nest, rect] : o.allocation.rects())
      aspects.push_back(rect.aspect_ratio());
  const Summary s = summarize(aspects);
  Table t({"Metric", "Value"});
  t.set_title("Ablation (iii): rectangle squareness under the longest-"
              "dimension split rule\n(70-case suite; skewed rectangles "
              "raise nest execution time, paper Fig. 7)");
  t.add_row({"mean aspect ratio", Table::num(s.mean, 2)});
  t.add_row({"median aspect ratio", Table::num(s.median, 2)});
  t.add_row({"max aspect ratio", Table::num(s.max, 2)});
  t.print(std::cout);
}

}  // namespace

int main() {
  SyntheticTraceConfig tcfg;
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;
  mapping_ablation(trace, models);
  insertion_ablation(models);
  split_ablation(trace, models);
  return 0;
}
