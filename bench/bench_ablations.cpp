/// \file bench_ablations.cpp
/// Ablations of the design choices DESIGN.md calls out:
///  (i)  topology mapping — folding (paper §V-C) vs row-major vs random
///       placement of the process grid on the BG/L torus;
///  (ii) diffusion insertion heuristic — closest-sibling-weight slot
///       (Algorithm 3 line 13) vs first-free-slot;
///  (iii) subdivision split orientation — longest-dimension (ours) vs
///       alternating per tree level.
///
/// Ablations (i) and (iii) run the 70-case synthetic suite as one
/// {mapping-machine × strategy} sweep; (ii) is a worked-example
/// micro-ablation.

#include <iostream>

#include "bench_common.hpp"

using namespace stormtrack;

namespace {

SweepMachine mapped_bluegene_1024(const std::string& name) {
  return {name, [name] {
            auto torus = make_bluegene(1024);
            std::unique_ptr<Mapping> mapping;
            if (name == "folding")
              mapping = std::make_unique<FoldingMapping>(32, 32, *torus);
            else if (name == "row-major")
              mapping = std::make_unique<RowMajorMapping>(1024);
            else
              mapping = std::make_unique<RandomMapping>(1024, 99);
            return Machine(std::move(torus), std::move(mapping), 32, 32,
                           "BG/L 1024 " + name);
          }};
}

// ----------------------------------------------------------- ablation (i)

void mapping_ablation(const std::vector<SweepCaseResult>& results) {
  Table t({"Mapping", "Mean avg hop-bytes", "Total redist time (s)",
           "Grid-neighbour dilation"});
  t.set_title("Ablation (i): rank->node mapping on the 1024-node torus "
              "(diffusion strategy)");
  for (const SweepCaseResult& c : results) {
    if (c.strategy != "diffusion") continue;
    // Dilation is a property of (topology, mapping) alone; rebuild the
    // pair — machine construction is cheap next to the 70-event run.
    const auto torus = make_bluegene(1024);
    std::unique_ptr<Mapping> mapping;
    if (c.machine_name == "folding")
      mapping = std::make_unique<FoldingMapping>(32, 32, *torus);
    else if (c.machine_name == "row-major")
      mapping = std::make_unique<RowMajorMapping>(1024);
    else
      mapping = std::make_unique<RandomMapping>(1024, 99);
    const double dilation =
        average_neighbor_dilation(*torus, *mapping, 32, 32);
    t.add_row({c.machine_name, Table::num(c.result.mean_avg_hop_bytes(), 2),
               Table::num(c.result.total_redist(), 2),
               Table::num(dilation, 2)});
  }
  t.print(std::cout);
}

// ---------------------------------------------------------- ablation (ii)

/// The closest-weight insertion rule exists to keep rectangles square-like
/// (§IV-B, Figs. 6/7): pairing the new node (0.4) with the similar-weight
/// node (0.3) splits the parent rectangle ~3/7 vs 4/7, while pairing it
/// with a light node (0.15) splits ~8/11 vs 3/11 and skews the light
/// node's rectangle. Quantify on the paper's worked example, plus the
/// ground-truth execution cost of the resulting skew.
void insertion_ablation(const ModelStack& models) {
  const Rect parent{0, 0, 16, 22};  // a representative subtree rectangle
  const std::vector<NestWeight> good_pair{{4, 0.4}, {1, 0.3}};
  const std::vector<NestWeight> bad_pair{{4, 0.4}, {2, 0.15}};
  const auto good = AllocTree::huffman(good_pair).subdivide(parent);
  const auto bad = AllocTree::huffman(bad_pair).subdivide(parent);

  Table t({"Pairing", "Light node rect", "Aspect ratio",
           "Exec time of light nest (s/step)"});
  t.set_title("Ablation (ii): insertion beside closest weight (Fig. 6) vs "
              "beside a light node (Fig. 7)");
  const NestShape light_nest{220, 220};
  auto row = [&](const char* name, const Rect& r) {
    t.add_row({name, std::to_string(r.w) + " x " + std::to_string(r.h),
               Table::num(r.aspect_ratio(), 2),
               Table::num(models.truth.execution_time(light_nest, r.w, r.h),
                          3)});
  };
  row("similar weights (0.4 | 0.3) - light node rect", good.at(1));
  row("dissimilar weights (0.4 | 0.15) - light node rect", bad.at(2));
  t.print(std::cout);
}

// --------------------------------------------------------- ablation (iii)

void split_ablation(const TraceRunResult& scratch_run) {
  // The longest-dimension rule is baked into subdivide(); quantify what it
  // buys by comparing the nests' aspect-ratio distribution against the
  // theoretical square bound sqrt(area) and report execution-time impact
  // via the ground truth.
  std::vector<double> aspects;
  for (const StepOutcome& o : scratch_run.outcomes)
    for (const auto& [nest, rect] : o.allocation.rects())
      aspects.push_back(rect.aspect_ratio());
  const Summary s = summarize(aspects);
  Table t({"Metric", "Value"});
  t.set_title("Ablation (iii): rectangle squareness under the longest-"
              "dimension split rule\n(70-case suite; skewed rectangles "
              "raise nest execution time, paper Fig. 7)");
  t.add_row({"mean aspect ratio", Table::num(s.mean, 2)});
  t.add_row({"median aspect ratio", Table::num(s.median, 2)});
  t.add_row({"max aspect ratio", Table::num(s.max, 2)});
  t.print(std::cout);
}

}  // namespace

int main() {
  SweepSpec spec;
  spec.traces.push_back(
      {"suite70", bench::synthetic_trace(SyntheticTraceConfig{}.num_events,
                                         SyntheticTraceConfig{}.seed)});
  for (const char* name : {"folding", "row-major", "random"})
    spec.machines.push_back(mapped_bluegene_1024(name));
  spec.strategies = {"diffusion", "scratch"};

  const ModelStack models;
  const std::vector<SweepCaseResult> results =
      SweepRunner(models).run(spec);

  mapping_ablation(results);
  insertion_ablation(models);
  // The folding machine is Machine::bluegene(1024) in all but label.
  split_ablation(find_case(results, "suite70", "folding", "scratch").result);

  bench::print_stage_metrics(results,
                             "Adaptation pipeline stage costs (6 runs)");
  return 0;
}
