/// \file bench_table1_allocation.cpp
/// Reproduces the paper's worked allocation example:
///  * Table I  — Huffman allocation of 5 nests (0.1:0.1:0.2:0.25:0.35) on
///    1024 cores;
///  * Table II — partition-from-scratch repartition for nests {3,5,6}
///    (0.27:0.42:0.31);
///  * Fig. 8   — the tree-based hierarchical diffusion repartition of the
///    same request, with the sender/receiver overlap comparison of §IV-B.

#include <iostream>

#include "alloc/partitioner.hpp"
#include "util/table.hpp"

using namespace stormtrack;

namespace {

void print_with_paper(const Allocation& alloc, const char* title,
                      const std::vector<std::array<int, 4>>& paper_rows) {
  // paper_rows: {nest, start_rank, w, h} as printed in the paper.
  Table t({"Nest ID", "Start Rank (paper)", "Start Rank (ours)",
           "Sub-grid (paper)", "Sub-grid (ours)"});
  t.set_title(title);
  for (const auto& row : paper_rows) {
    const auto rect = alloc.find(row[0]);
    t.add_row({std::to_string(row[0]), std::to_string(row[1]),
               rect ? std::to_string(alloc.start_rank_of(row[0])) : "-",
               std::to_string(row[2]) + " x " + std::to_string(row[3]),
               rect ? std::to_string(rect->w) + " x " + std::to_string(rect->h)
                    : "-"});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  // ----------------------------------------------------------- Table I
  const std::vector<NestWeight> initial{
      {1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
  const AllocTree tree = AllocTree::huffman(initial);
  const Allocation before = allocate(tree, 32, 32);
  print_with_paper(before, "Table I: initial allocation on 1024 cores",
                   {{1, 0, 13, 8},
                    {2, 256, 13, 8},
                    {3, 512, 13, 16},
                    {4, 13, 19, 13},
                    {5, 429, 19, 19}});

  // ----------------------------------------------------------- Table II
  ReconfigRequest req;
  req.deleted = {1, 2, 4};
  req.retained = {{3, 0.27}, {5, 0.42}};
  req.inserted = {{6, 0.31}};

  // Proposal mechanisms are resolved by name, same as the commit-side
  // StrategyRegistry — the worked example exercises the open seam.
  const Allocation scratch_alloc =
      allocate(make_partitioner("scratch")->propose(tree, req), 32, 32);
  print_with_paper(scratch_alloc,
                   "Table II: partition from scratch for nests {3,5,6}\n"
                   "(paper sub-grid rounding differs slightly from the "
                   "stated weights; start-rank structure matches)",
                   {{3, 13, 19, 13}, {5, 0, 13, 32}, {6, 429, 19, 19}});

  // -------------------------------------------------------------- Fig. 8
  const Allocation diff_alloc =
      allocate(make_partitioner("diffusion")->propose(tree, req), 32, 32);
  diff_alloc.to_table("Fig. 8(d): tree-based hierarchical diffusion")
      .print(std::cout);

  Table overlap({"Nest", "Scratch overlap (procs)", "Diffusion overlap "
                                                    "(procs)"});
  overlap.set_title(
      "Sender/receiver processor overlap for retained nests (paper: "
      "\"considerable overlap ... compared to no overlap\")");
  for (const NestId nest : {3, 5}) {
    overlap.add_row(
        {std::to_string(nest),
         std::to_string(
             before.find(nest)->intersect(*scratch_alloc.find(nest)).area()),
         std::to_string(
             before.find(nest)->intersect(*diff_alloc.find(nest)).area())});
  }
  overlap.print(std::cout);
  return 0;
}
