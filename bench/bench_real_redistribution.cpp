/// \file bench_real_redistribution.cpp
/// Reproduces §V-D's real-test-case result: the tree-based hierarchical
/// diffusion method's redistribution-time improvement over partition from
/// scratch on 512 and 1024 Blue Gene/L cores, driven by "real" traces —
/// the full weather-simulation → split-file → PDA → nest-tracking pipeline
/// over a Mumbai-2005-flavoured synthetic monsoon (~100 adaptation points,
/// ≤ 7 concurrent nests).
///
/// Paper values: 14% on 512 cores, 12% on 1024 cores.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  RealScenarioConfig scenario;
  scenario.num_intervals = 100;  // ~100 reconfigurations (paper §V-B)
  scenario.sim_px = 32;
  scenario.sim_py = 32;
  scenario.pda.analysis_procs = 64;

  std::cout << "Generating the real trace (weather model + PDA + tracker, "
            << scenario.num_intervals << " adaptation points)...\n";
  const Trace trace = generate_real_trace(scenario);

  std::size_t max_nests = 0;
  int churn_events = 0;
  for (std::size_t e = 0; e < trace.size(); ++e) {
    max_nests = std::max(max_nests, trace[e].size());
    if (e > 0 && trace[e].size() != trace[e - 1].size()) ++churn_events;
  }
  std::cout << "Trace: " << trace.size() << " adaptation points, max "
            << max_nests << " concurrent nests.\n\n";

  const ModelStack models;
  Table t({"Cores (BG/L)", "Improvement (paper)", "Improvement (ours)",
           "Scratch redist total (s)", "Diffusion redist total (s)"});
  t.set_title("Section V-D: redistribution-time improvement, real test "
              "cases");

  const struct {
    int cores;
    double paper;
  } rows[] = {{512, 14.0}, {1024, 12.0}};
  for (const auto& row : rows) {
    const Machine machine = Machine::bluegene(row.cores);
    const TraceRunResult diff = run_trace(machine, models.model, models.truth,
                                          "diffusion", trace);
    const TraceRunResult scratch = run_trace(machine, models.model,
                                             models.truth, "scratch",
                                             trace);
    std::vector<double> improvements;
    for (std::size_t e = 0; e < trace.size(); ++e) {
      const double s = scratch.outcomes[e].committed.actual_redist;
      const double d = diff.outcomes[e].committed.actual_redist;
      if (s > 0.0) improvements.push_back(percent_improvement(s, d));
    }
    t.add_row({std::to_string(row.cores), Table::num(row.paper, 0) + "%",
               Table::num(mean(improvements), 1) + "%",
               Table::num(scratch.total_redist(), 2),
               Table::num(diff.total_redist(), 2)});
  }
  t.print(std::cout);
  return 0;
}
