/// \file bench_table4_synthetic.cpp
/// Reproduces Table IV (+ the §V-D execution-time remark): average
/// improvement in redistribution time of tree-based hierarchical diffusion
/// over partition-from-scratch for the synthetic test cases — 70 random
/// nest configuration changes with 2–9 nests of 181–361 fine-grid points
/// per side — on BG/L 1024, BG/L 256 and fist 256.
///
/// Paper values: 15% (BG/L 1024), 25% (BG/L 256), 10% (fist 256), with an
/// average ~4% execution-time increase for the diffusion method.

#include <iostream>

#include "bench_common.hpp"

using namespace stormtrack;

int main() {
  SweepSpec spec;
  spec.traces.push_back(
      {"suite70", bench::synthetic_trace(SyntheticTraceConfig{}.num_events,
                                         SyntheticTraceConfig{}.seed)});
  spec.machines = {sweep_bluegene(1024), sweep_bluegene(256),
                   sweep_fist_cluster(256)};
  spec.strategies = {"diffusion", "scratch"};
  const double paper_improvement[] = {15.0, 25.0, 10.0};

  const ModelStack models;
  const std::vector<SweepCaseResult> results =
      SweepRunner(models).run(spec);

  Table t({"Simulation Configuration", "Improvement (paper)",
           "Improvement (ours)", "Exec-time delta (ours)"});
  t.set_title(
      "Table IV: average improvement in redistribution times, synthetic "
      "test cases\n(positive exec-time delta = diffusion slower, paper "
      "reports ~4%)");

  for (std::size_t m = 0; m < spec.machines.size(); ++m) {
    const SweepCaseResult& diff_case = find_case(
        results, "suite70", spec.machines[m].name, "diffusion");
    const TraceRunResult& diff = diff_case.result;
    const TraceRunResult& scratch =
        find_case(results, "suite70", spec.machines[m].name, "scratch")
            .result;

    // Per-event improvement over events that actually redistributed data,
    // averaged — the paper's "average percentage improvement".
    std::vector<double> improvements;
    for (std::size_t e = 0; e < diff.outcomes.size(); ++e) {
      const double s = scratch.outcomes[e].committed.actual_redist;
      const double d = diff.outcomes[e].committed.actual_redist;
      if (s > 0.0) improvements.push_back(percent_improvement(s, d));
    }
    const double exec_delta = -percent_improvement(scratch.total_exec(),
                                                   diff.total_exec());
    t.add_row({diff_case.machine_label,
               Table::num(paper_improvement[m], 0) + "%",
               Table::num(mean(improvements), 1) + "%",
               Table::num(exec_delta, 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "Trace: " << spec.traces[0].trace.size()
            << " reconfigurations, nest counts 2-9, nest sizes 181x181 - "
               "361x361 (paper §V-B).\n\n";

  bench::print_stage_metrics(results,
                             "Adaptation pipeline stage costs (6 runs)");
  return 0;
}
