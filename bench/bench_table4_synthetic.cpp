/// \file bench_table4_synthetic.cpp
/// Reproduces Table IV (+ the §V-D execution-time remark): average
/// improvement in redistribution time of tree-based hierarchical diffusion
/// over partition-from-scratch for the synthetic test cases — 70 random
/// nest configuration changes with 2–9 nests of 181–361 fine-grid points
/// per side — on BG/L 1024, BG/L 256 and fist 256.
///
/// Paper values: 15% (BG/L 1024), 25% (BG/L 256), 10% (fist 256), with an
/// average ~4% execution-time increase for the diffusion method.

#include <iostream>

#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

namespace {

struct MachineCase {
  Machine machine;
  double paper_improvement;
};

}  // namespace

int main() {
  SyntheticTraceConfig tcfg;  // paper defaults: 70 events, 2–9 nests
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;

  std::vector<MachineCase> cases;
  cases.push_back({Machine::bluegene(1024), 15.0});
  cases.push_back({Machine::bluegene(256), 25.0});
  cases.push_back({Machine::fist_cluster(256), 10.0});

  Table t({"Simulation Configuration", "Improvement (paper)",
           "Improvement (ours)", "Exec-time delta (ours)"});
  t.set_title(
      "Table IV: average improvement in redistribution times, synthetic "
      "test cases\n(positive exec-time delta = diffusion slower, paper "
      "reports ~4%)");

  for (const MachineCase& c : cases) {
    const TraceRunResult diff = run_trace(c.machine, models.model,
                                          models.truth, Strategy::kDiffusion,
                                          trace);
    const TraceRunResult scratch = run_trace(c.machine, models.model,
                                             models.truth, Strategy::kScratch,
                                             trace);

    // Per-event improvement over events that actually redistributed data,
    // averaged — the paper's "average percentage improvement".
    std::vector<double> improvements;
    for (std::size_t e = 0; e < trace.size(); ++e) {
      const double s = scratch.outcomes[e].committed.actual_redist;
      const double d = diff.outcomes[e].committed.actual_redist;
      if (s > 0.0) improvements.push_back(percent_improvement(s, d));
    }
    const double exec_delta = -percent_improvement(scratch.total_exec(),
                                                   diff.total_exec());
    t.add_row({c.machine.label(),
               Table::num(c.paper_improvement, 0) + "%",
               Table::num(mean(improvements), 1) + "%",
               Table::num(exec_delta, 1) + "%"});
  }
  t.print(std::cout);

  std::cout << "Trace: " << trace.size()
            << " reconfigurations, nest counts 2-9, nest sizes 181x181 - "
               "361x361 (paper §V-B).\n";
  return 0;
}
