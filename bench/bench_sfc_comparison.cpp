/// \file bench_sfc_comparison.cpp
/// Quantifies the related-work argument of §II: Hilbert space-filling-curve
/// repartitioning — the standard AMR technique — against the paper's two
/// rectangular strategies on the 70-case synthetic suite (BG/L 1024).
///
/// Measured shape: re-segmenting the curve at each adaptation point shifts
/// every chunk boundary, so the SFC scheme's data-point overlap collapses
/// and its redistribution cost lands *worse* than even partition-from-
/// scratch; and independently of that, its per-processor nest regions are
/// curve chunks whose halo boundary is much longer than a rectangular
/// block's, inflating *every* simulation step. WRF moreover requires
/// rectangular process sub-grids outright — the paper's §II argument.

#include <iostream>
#include <map>

#include "alloc/sfc_allocation.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"

using namespace stormtrack;

int main() {
  SyntheticTraceConfig tcfg;
  const Trace trace = generate_synthetic_trace(tcfg);
  const ModelStack models;
  const Machine bgl = Machine::bluegene(1024);

  // Rectangular strategies via the standard harness.
  const TraceRunResult diff = run_trace(bgl, models.model, models.truth,
                                        "diffusion", trace);
  const TraceRunResult scratch = run_trace(bgl, models.model, models.truth,
                                           "scratch", trace);

  // SFC strategy: same weights, Hilbert segments, per-retained-nest
  // redistribution between old and new rank lists.
  const HilbertOrder curve(bgl.grid_px(), bgl.grid_py());
  TrafficReport sfc_traffic;
  double sfc_time = 0.0;
  std::int64_t sfc_overlap_pts = 0, sfc_total_pts = 0;
  std::map<int, std::vector<int>> prev_ranks;  // nest -> rank list
  for (const auto& active : trace) {
    std::vector<NestShape> shapes;
    std::vector<NestWeight> weights;
    for (const NestSpec& n : active) shapes.push_back(n.shape);
    const std::vector<double> ratios =
        weight_ratios(models.model, shapes, bgl.cores());
    for (std::size_t i = 0; i < active.size(); ++i)
      weights.push_back(NestWeight{active[i].id, ratios[i]});

    const SfcAllocation alloc(weights, curve);
    std::map<int, std::vector<int>> now;
    for (const NestSpec& n : active) {
      now[n.id] = alloc.ranks_of(n.id, curve);
      const auto old = prev_ranks.find(n.id);
      if (old == prev_ranks.end()) continue;  // inserted: no data to move
      const RedistPlan plan =
          plan_sfc_redistribution(n.shape, old->second, now[n.id]);
      const TrafficReport rep = bgl.comm().alltoallv(plan.messages);
      sfc_traffic += rep;
      sfc_time += rep.modeled_time;
      sfc_overlap_pts += plan.overlap_points;
      sfc_total_pts += plan.total_points;
    }
    prev_ranks = std::move(now);
  }

  Table t({"Strategy", "Total redist time (s)", "Avg hop-bytes",
           "Mean data-point overlap %"});
  t.set_title("SFC (Hilbert) vs rectangular strategies, 70 synthetic cases "
              "on " + bgl.label());
  t.add_row({"Partition from scratch", Table::num(scratch.total_redist(), 2),
             Table::num(scratch.mean_avg_hop_bytes(), 2),
             Table::num(100.0 * scratch.mean_overlap_fraction(), 1)});
  t.add_row({"Tree-based hierarchical diffusion",
             Table::num(diff.total_redist(), 2),
             Table::num(diff.mean_avg_hop_bytes(), 2),
             Table::num(100.0 * diff.mean_overlap_fraction(), 1)});
  t.add_row({"Hilbert SFC segments", Table::num(sfc_time, 2),
             Table::num(sfc_traffic.avg_hops_per_byte(), 2),
             Table::num(sfc_total_pts == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(sfc_overlap_pts) /
                                  static_cast<double>(sfc_total_pts),
                        1)});
  t.print(std::cout);

  // The catch: per-step halo cost of curve-chunk regions.
  Table halo({"Decomposition", "Halo inflation (vs square block)"});
  halo.set_title("Why the paper requires rectangles (§II): per-processor "
                 "region boundary length of a 349x349 nest on 128 "
                 "processors");
  halo.add_row({"rectangular 16x8 blocks",
                Table::num(block_halo_inflation(NestShape{349, 349}, 16, 8),
                           2)});
  halo.add_row({"Hilbert curve chunks",
                Table::num(sfc_halo_inflation(NestShape{349, 349}, 128), 2)});
  halo.print(std::cout);

  std::cout << "Re-segmenting the curve each adaptation point shifts every "
               "chunk boundary, so\nSFC loses the overlap that makes "
               "diffusion cheap; its ragged per-processor\nregions also pay "
               "an inflated halo on every step — and WRF requires\n"
               "rectangular process sub-grids outright (§II).\n";
  return 0;
}
