#include "util/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Hilbert, RoundTripOrder4) {
  const int order = 4;  // 16x16
  for (std::uint64_t d = 0; d < 256; ++d) {
    const CellXY p = hilbert_d2xy(order, d);
    EXPECT_EQ(hilbert_xy2d(order, p), d);
  }
}

TEST(Hilbert, ConsecutiveDistancesAreAdjacentCells) {
  const int order = 5;  // 32x32
  CellXY prev = hilbert_d2xy(order, 0);
  for (std::uint64_t d = 1; d < 1024; ++d) {
    const CellXY cur = hilbert_d2xy(order, d);
    EXPECT_EQ(std::abs(cur.x - prev.x) + std::abs(cur.y - prev.y), 1)
        << "at d=" << d;
    prev = cur;
  }
}

TEST(Hilbert, Order0IsSingleCell) {
  EXPECT_EQ(hilbert_d2xy(0, 0), (CellXY{0, 0}));
}

TEST(Hilbert, KnownOrder1Layout) {
  // Order-1 curve: (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(hilbert_d2xy(1, 0), (CellXY{0, 0}));
  EXPECT_EQ(hilbert_d2xy(1, 1), (CellXY{0, 1}));
  EXPECT_EQ(hilbert_d2xy(1, 2), (CellXY{1, 1}));
  EXPECT_EQ(hilbert_d2xy(1, 3), (CellXY{1, 0}));
}

TEST(Hilbert, OutOfRangeThrows) {
  EXPECT_THROW((void)hilbert_d2xy(2, 16), CheckError);
  EXPECT_THROW((void)hilbert_xy2d(2, CellXY{4, 0}), CheckError);
}

TEST(HilbertOrder, PermutationOnSquareGrid) {
  const HilbertOrder h(16, 16);
  std::set<int> ranks;
  for (int i = 0; i < h.size(); ++i) {
    const int r = h.rank_at(i);
    EXPECT_TRUE(ranks.insert(r).second);
    EXPECT_EQ(h.position_of(r), i);
  }
  EXPECT_EQ(ranks.size(), 256u);
}

TEST(HilbertOrder, NonPowerOfTwoGridCoversAllCells) {
  const HilbertOrder h(13, 7);
  std::set<int> ranks;
  for (int i = 0; i < h.size(); ++i) ranks.insert(h.rank_at(i));
  EXPECT_EQ(ranks.size(), 91u);
  EXPECT_EQ(*ranks.begin(), 0);
  EXPECT_EQ(*ranks.rbegin(), 90);
}

TEST(HilbertOrder, LocalityOnRectangularGrid) {
  // Skipping out-of-grid cells stretches some steps, but the mean step
  // distance must stay small (locality is the whole point).
  const HilbertOrder h(32, 24);
  double total = 0.0;
  for (int i = 1; i < h.size(); ++i) {
    const int a = h.rank_at(i - 1);
    const int b = h.rank_at(i);
    total += std::abs(a % 32 - b % 32) + std::abs(a / 32 - b / 32);
  }
  EXPECT_LT(total / (h.size() - 1), 1.5);
}

TEST(HilbertOrder, BadGridThrows) {
  EXPECT_THROW(HilbertOrder(0, 5), CheckError);
}

}  // namespace
}  // namespace stormtrack
