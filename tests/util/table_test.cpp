#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Nest ID", "Start Rank"});
  t.add_row({"1", "0"});
  t.add_row({"5", "429"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Nest ID"), std::string::npos);
  EXPECT_NE(s.find("429"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, TitleRendered) {
  Table t({"a"});
  t.set_title("Processor allocation");
  EXPECT_EQ(t.to_string().rfind("Processor allocation", 0), 0u);
}

TEST(Table, ColumnCountEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckError);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, CsvSanitizesCommas) {
  Table t({"x"});
  t.add_row({"a,b"});
  EXPECT_EQ(t.to_csv(), "x\na;b\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, AlignmentPadsColumns) {
  Table t({"ab", "c"});
  t.add_row({"x", "long-cell"});
  std::istringstream is(t.to_string());
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(header.size(), rule.size());
}

TEST(Table, CountsAccessors) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace stormtrack
