#include "util/grid2d.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Grid2D, ConstructAndFill) {
  Grid2D<int> g(4, 3, 7);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.at(0, 0), 7);
  EXPECT_EQ(g.at(3, 2), 7);
}

TEST(Grid2D, RowMajorLayout) {
  Grid2D<int> g(3, 2);
  g(0, 0) = 1;
  g(1, 0) = 2;
  g(2, 0) = 3;
  g(0, 1) = 4;
  EXPECT_EQ(g.data()[0], 1);
  EXPECT_EQ(g.data()[1], 2);
  EXPECT_EQ(g.data()[2], 3);
  EXPECT_EQ(g.data()[3], 4);
}

TEST(Grid2D, AtBoundsChecked) {
  Grid2D<int> g(2, 2);
  EXPECT_THROW((void)g.at(2, 0), CheckError);
  EXPECT_THROW((void)g.at(0, -1), CheckError);
  EXPECT_NO_THROW((void)g.at(1, 1));
}

TEST(Grid2D, InBounds) {
  Grid2D<int> g(2, 3);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(1, 2));
  EXPECT_FALSE(g.in_bounds(2, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
}

TEST(Grid2D, Extract) {
  Grid2D<int> g(4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) g(x, y) = y * 4 + x;
  const Grid2D<int> sub = g.extract(Rect{1, 1, 2, 3});
  EXPECT_EQ(sub.width(), 2);
  EXPECT_EQ(sub.height(), 3);
  EXPECT_EQ(sub(0, 0), 5);
  EXPECT_EQ(sub(1, 2), 14);
}

TEST(Grid2D, ExtractOutOfBoundsThrows) {
  Grid2D<int> g(4, 4);
  EXPECT_THROW((void)g.extract(Rect{2, 2, 4, 4}), CheckError);
}

TEST(Grid2D, FillOverwrites) {
  Grid2D<double> g(2, 2, 1.0);
  g.fill(3.5);
  EXPECT_DOUBLE_EQ(g(1, 1), 3.5);
}

TEST(Grid2D, EqualityAndBounds) {
  Grid2D<int> a(2, 2, 1);
  Grid2D<int> b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 0) = 2;
  EXPECT_NE(a, b);
  EXPECT_EQ(a.bounds(), (Rect{0, 0, 2, 2}));
}

TEST(Grid2D, NegativeDimsThrow) {
  EXPECT_THROW((Grid2D<int>(-1, 2)), CheckError);
}

}  // namespace
}  // namespace stormtrack
