#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_atomic_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::string slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

TEST_F(AtomicFileTest, WritesTextExactly) {
  const fs::path p = dir_ / "out.txt";
  write_file_atomic(p, std::string_view("hello\nworld\n"));
  EXPECT_EQ(slurp(p), "hello\nworld\n");
}

TEST_F(AtomicFileTest, OverwritesPreviousContents) {
  const fs::path p = dir_ / "out.txt";
  write_file_atomic(p, std::string_view("a much longer first version"));
  write_file_atomic(p, std::string_view("v2"));
  EXPECT_EQ(slurp(p), "v2");
}

TEST_F(AtomicFileTest, CreatesParentDirectories) {
  const fs::path p = dir_ / "a" / "b" / "c.txt";
  write_file_atomic(p, std::string_view("nested"));
  EXPECT_EQ(slurp(p), "nested");
}

TEST_F(AtomicFileTest, HandlesBinaryBytesIncludingNul) {
  const fs::path p = dir_ / "bin";
  const std::byte bytes[] = {std::byte{0x00}, std::byte{0xFF},
                             std::byte{0x0A}, std::byte{0x00}};
  write_file_atomic(p, std::span<const std::byte>(bytes, 4));
  const std::string got = slurp(p);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], '\0');
  EXPECT_EQ(static_cast<unsigned char>(got[1]), 0xFFu);
}

TEST_F(AtomicFileTest, LeavesNoTempFileBehind) {
  write_file_atomic(dir_ / "out.txt", std::string_view("x"));
  int entries = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_))
    ++entries;
  EXPECT_EQ(entries, 1);
}

TEST_F(AtomicFileTest, ReadFileBytesRoundTrips) {
  const fs::path p = dir_ / "rt";
  write_file_atomic(p, std::string_view("round trip"));
  const std::vector<std::byte> bytes = read_file_bytes(p);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()),
            "round trip");
}

TEST_F(AtomicFileTest, ReadFileBytesMissingFileThrows) {
  EXPECT_THROW((void)read_file_bytes(dir_ / "absent"), CheckError);
}

TEST_F(AtomicFileTest, EmptyFileRoundTrips) {
  const fs::path p = dir_ / "empty";
  write_file_atomic(p, std::string_view(""));
  EXPECT_TRUE(read_file_bytes(p).empty());
}

// The durability protocol is easy to break invisibly: dropping the
// temp-file fsync or the directory fsync after the rename still passes
// every content test above and only shows up at the first power loss.
// The counters pin both syncs to every completed write.
TEST_F(AtomicFileTest, EveryWriteSyncsTheFileAndItsDirectory) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "fsync instrumentation is POSIX-only";
#endif
  const AtomicFileCounters before = atomic_file_counters();
  write_file_atomic(dir_ / "one.txt", std::string_view("one"));
  write_file_atomic(dir_ / "sub" / "two.txt", std::string_view("two"));
  const AtomicFileCounters after = atomic_file_counters();
  EXPECT_EQ(after.files_written - before.files_written, 2u);
  // >= not ==: other threads of this test binary may also be writing.
  EXPECT_GE(after.file_syncs - before.file_syncs, 2u);
  EXPECT_GE(after.dir_syncs - before.dir_syncs, 2u);
}

TEST_F(AtomicFileTest, FailedWritesAreNotCountedAsWritten) {
  // An unwritable destination (parent is a file, not a directory) must
  // throw without bumping the completed-write counter.
  const fs::path blocker = dir_ / "blocker";
  write_file_atomic(blocker, std::string_view("x"));
  const AtomicFileCounters before = atomic_file_counters();
  EXPECT_THROW(write_file_atomic(blocker / "child.txt",
                                 std::string_view("nope")),
               std::exception);
  const AtomicFileCounters after = atomic_file_counters();
  EXPECT_EQ(after.files_written, before.files_written);
}

}  // namespace
}  // namespace stormtrack
