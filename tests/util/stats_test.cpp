#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Stats, MeanBasic) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmpty) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, StdevBasic) {
  const std::array<double, 4> xs{2.0, 4.0, 4.0, 6.0};
  // Population stdev: mean 4, variance (4+0+0+4)/4 = 2.
  EXPECT_NEAR(stdev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, StdevDegenerate) {
  const std::array<double, 1> one{5.0};
  EXPECT_DOUBLE_EQ(stdev(one), 0.0);
  EXPECT_DOUBLE_EQ(stdev({}), 0.0);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::array<double, 5> xs{1, 2, 3, 4, 5};
  const std::array<double, 5> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::array<double, 4> xs{1, 2, 3, 4};
  const std::array<double, 4> ys{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 3> ys{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonLengthMismatchThrows) {
  const std::array<double, 3> xs{1, 2, 3};
  const std::array<double, 2> ys{1, 2};
  EXPECT_THROW((void)pearson(xs, ys), CheckError);
}

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percent_improvement(100.0, 75.0), 25.0);
  EXPECT_DOUBLE_EQ(percent_improvement(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 5.0), 0.0);
}

TEST(Stats, Summarize) {
  const std::array<double, 5> xs{5, 1, 3, 2, 4};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, SummarizeEvenCountMedian) {
  const std::array<double, 4> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

}  // namespace
}  // namespace stormtrack
