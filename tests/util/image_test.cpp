#include "util/image.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace stormtrack {
namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / "stormtrack_image_test" /
         name;
}

std::string read_all(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

TEST(Image, PgmHeaderAndSize) {
  Grid2D<std::uint8_t> img(4, 3, 128);
  const auto path = temp_file("a.pgm");
  write_pgm(img, path);
  const std::string data = read_all(path);
  EXPECT_EQ(data.rfind("P5\n4 3\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), std::string("P5\n4 3\n255\n").size() + 12);
  std::filesystem::remove_all(path.parent_path());
}

TEST(Image, PpmHeaderAndSize) {
  Grid2D<Rgb> img(2, 2, Rgb{1, 2, 3});
  const auto path = temp_file("b.ppm");
  write_ppm(img, path);
  const std::string data = read_all(path);
  EXPECT_EQ(data.rfind("P6\n2 2\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), std::string("P6\n2 2\n255\n").size() + 12);
  std::filesystem::remove_all(path.parent_path());
}

TEST(Image, EmptyImageThrows) {
  Grid2D<std::uint8_t> img;
  EXPECT_THROW(write_pgm(img, temp_file("x.pgm")), CheckError);
}

TEST(FieldToGrey, LinearScaling) {
  Grid2D<double> f(3, 1);
  f(0, 0) = 0.0;
  f(1, 0) = 5.0;
  f(2, 0) = 10.0;
  const auto g = field_to_grey(f);
  EXPECT_EQ(g(0, 0), 0);
  EXPECT_EQ(g(1, 0), 128);
  EXPECT_EQ(g(2, 0), 255);
}

TEST(FieldToGrey, InvertForCloudConvention) {
  // Paper Fig. 1: darker = more cloud water.
  Grid2D<double> f(2, 1);
  f(0, 0) = 0.0;
  f(1, 0) = 1.0;
  const auto g = field_to_grey(f, /*invert=*/true);
  EXPECT_EQ(g(0, 0), 255);
  EXPECT_EQ(g(1, 0), 0);
}

TEST(FieldToGrey, ConstantFieldIsMidGrey) {
  Grid2D<double> f(4, 4, 7.0);
  const auto g = field_to_grey(f);
  for (auto v : g.data()) EXPECT_EQ(v, 128);
}

TEST(LabelsToRgb, DistinctLabelsDistinctColours) {
  Grid2D<int> labels(4, 1);
  labels(0, 0) = -1;
  labels(1, 0) = 0;
  labels(2, 0) = 1;
  labels(3, 0) = 2;
  const auto img = labels_to_rgb(labels);
  EXPECT_EQ(img(0, 0), (Rgb{40, 40, 40}));
  EXPECT_NE(img(1, 0), img(2, 0));
  EXPECT_NE(img(2, 0), img(3, 0));
  EXPECT_NE(img(1, 0), img(3, 0));
}

TEST(LabelsToRgb, Deterministic) {
  Grid2D<int> labels(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) labels(x, y) = (x + y) % 5;
  EXPECT_EQ(labels_to_rgb(labels), labels_to_rgb(labels));
}

}  // namespace
}  // namespace stormtrack
