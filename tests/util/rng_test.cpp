#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace stormtrack {
namespace {

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Xoshiro256 rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntBadRangeThrows) {
  Xoshiro256 rng(3);
  EXPECT_THROW((void)rng.uniform_int(5, 4), CheckError);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(13);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.08);
}

TEST(Rng, NormalScaled) {
  Xoshiro256 rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliRate) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, SplitMix64KnownSequenceDistinct) {
  SplitMix64 sm(0);
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.push_back(sm.next());
  for (std::size_t i = 0; i < seen.size(); ++i)
    for (std::size_t j = i + 1; j < seen.size(); ++j)
      EXPECT_NE(seen[i], seen[j]);
}

}  // namespace
}  // namespace stormtrack
