#include "util/rect.hpp"

#include <gtest/gtest.h>

namespace stormtrack {
namespace {

TEST(Rect, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
}

TEST(Rect, AreaAndEnds) {
  Rect r{2, 3, 4, 5};
  EXPECT_EQ(r.area(), 20);
  EXPECT_EQ(r.x_end(), 6);
  EXPECT_EQ(r.y_end(), 8);
  EXPECT_FALSE(r.empty());
}

TEST(Rect, NegativeExtentIsEmpty) {
  EXPECT_TRUE((Rect{0, 0, -1, 5}.empty()));
  EXPECT_TRUE((Rect{0, 0, 5, 0}.empty()));
  EXPECT_EQ((Rect{0, 0, -3, 5}.area()), 0);
}

TEST(Rect, ContainsPoint) {
  Rect r{1, 1, 3, 3};
  EXPECT_TRUE(r.contains(1, 1));
  EXPECT_TRUE(r.contains(3, 3));
  EXPECT_FALSE(r.contains(4, 3));
  EXPECT_FALSE(r.contains(0, 1));
}

TEST(Rect, ContainsRect) {
  Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{2, 2, 3, 3}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{8, 8, 3, 3}));
  EXPECT_TRUE(outer.contains(Rect{}));  // empty rect is everywhere
}

TEST(Rect, IntersectOverlapping) {
  Rect a{0, 0, 5, 5};
  Rect b{3, 3, 5, 5};
  EXPECT_EQ(a.intersect(b), (Rect{3, 3, 2, 2}));
  EXPECT_EQ(b.intersect(a), (Rect{3, 3, 2, 2}));
  EXPECT_TRUE(a.overlaps(b));
}

TEST(Rect, IntersectDisjoint) {
  Rect a{0, 0, 2, 2};
  Rect b{5, 5, 2, 2};
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_FALSE(a.overlaps(b));
}

TEST(Rect, IntersectTouchingEdgesIsEmpty) {
  Rect a{0, 0, 2, 2};
  Rect b{2, 0, 2, 2};  // shares the x=2 edge, no cells
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Rect, AspectRatio) {
  EXPECT_DOUBLE_EQ((Rect{0, 0, 4, 4}.aspect_ratio()), 1.0);
  EXPECT_DOUBLE_EQ((Rect{0, 0, 8, 2}.aspect_ratio()), 4.0);
  EXPECT_DOUBLE_EQ((Rect{0, 0, 2, 8}.aspect_ratio()), 4.0);
  EXPECT_DOUBLE_EQ(Rect{}.aspect_ratio(), 0.0);
}

TEST(Rect, BoundingUnion) {
  Rect a{0, 0, 2, 2};
  Rect b{5, 5, 2, 2};
  EXPECT_EQ(a.bounding_union(b), (Rect{0, 0, 7, 7}));
  EXPECT_EQ(Rect{}.bounding_union(b), b);
  EXPECT_EQ(a.bounding_union(Rect{}), a);
}

TEST(Rect, StartRankRowMajor) {
  // Paper Table I: nest 5's rectangle starts at (13, 13) on a 32-wide grid
  // -> rank 429.
  EXPECT_EQ(start_rank(Rect{13, 13, 19, 19}, 32), 429);
  EXPECT_EQ(start_rank(Rect{0, 0, 13, 8}, 32), 0);
  EXPECT_EQ(start_rank(Rect{0, 8, 13, 8}, 32), 256);
  EXPECT_EQ(start_rank(Rect{0, 16, 13, 16}, 32), 512);
  EXPECT_EQ(start_rank(Rect{13, 0, 19, 13}, 32), 13);
}

TEST(Rect, Jaccard) {
  Rect a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(jaccard(a, Rect{10, 10, 4, 4}), 0.0);
  // Half-overlap: |∩|=8, |∪|=24.
  EXPECT_DOUBLE_EQ(jaccard(a, Rect{2, 0, 4, 4}), 8.0 / 24.0);
  EXPECT_DOUBLE_EQ(jaccard(Rect{}, Rect{}), 0.0);
}

TEST(Rect, CoverageFraction) {
  Rect a{0, 0, 4, 4};
  EXPECT_DOUBLE_EQ(coverage_fraction(a, a), 1.0);
  EXPECT_DOUBLE_EQ(coverage_fraction(a, Rect{2, 0, 4, 4}), 0.5);
  EXPECT_DOUBLE_EQ(coverage_fraction(Rect{}, a), 0.0);
}

TEST(Rect, ToStringContainsFields) {
  const std::string s = Rect{1, 2, 3, 4}.to_string();
  EXPECT_NE(s.find("x=1"), std::string::npos);
  EXPECT_NE(s.find("h=4"), std::string::npos);
}

}  // namespace
}  // namespace stormtrack
