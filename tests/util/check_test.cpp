#include "util/check.hpp"

#include <gtest/gtest.h>

namespace stormtrack {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(ST_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ST_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ST_CHECK(false), CheckError);
  EXPECT_THROW(ST_CHECK_MSG(false, "boom"), CheckError);
}

TEST(Check, MessageCarriesExpressionAndContext) {
  try {
    ST_CHECK_MSG(2 > 3, "two is not more than " << 3);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not more than 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, IsLogicError) {
  // Callers can catch the standard hierarchy.
  EXPECT_THROW(ST_CHECK(false), std::logic_error);
}

TEST(Check, EvaluatesExpressionOnce) {
  int calls = 0;
  auto f = [&]() {
    ++calls;
    return true;
  };
  ST_CHECK(f());
  EXPECT_EQ(calls, 1);
  ST_CHECK_MSG(f(), "msg");
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace stormtrack
