/// \file framed_log_fault_test.cpp
/// FramedLog under injected I/O faults: failed appends leave the log
/// usable, short writes leave a torn tail that both the in-process
/// restore path and the restart replay path truncate cleanly.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/framed_log.hpp"
#include "util/binary_io.hpp"
#include "util/check.hpp"
#include "util/fs_fault.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x544C4654u;  // arbitrary test magic
constexpr std::uint32_t kVersion = 1;

class FramedLogFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_fault_clear();
    dir_ = fs::temp_directory_path() /
           ("st_flfault_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "records.stjl";
  }
  void TearDown() override {
    fs_fault_clear();
    fs::remove_all(dir_);
  }

  FramedLog::Format format() const {
    return FramedLog::Format{kMagic, kVersion, /*fingerprint=*/7,
                             "fault test log"};
  }

  static std::vector<std::byte> record(std::uint64_t value) {
    BinaryWriter w;
    w.put_u64(value);
    w.put_string("record-" + std::to_string(value));
    return w.bytes();
  }

  /// Reopen with resume and collect the replayed u64 values.
  std::vector<std::uint64_t> replay(int* torn = nullptr) {
    std::vector<std::uint64_t> values;
    FramedLog log(path_, format(), /*resume=*/true, [&](BinaryReader& r) {
      const std::uint64_t value = r.get_u64("test value");
      (void)r.get_string("test tag");
      values.push_back(value);
    });
    if (torn != nullptr) *torn = log.torn_records_dropped();
    return values;
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(FramedLogFaultTest, ShortWriteLeavesTornTailThatResumeTruncates) {
  std::uintmax_t size_after_good = 0;
  {
    FramedLog log(path_, format(), /*resume=*/false, nullptr);
    ASSERT_TRUE(log.try_append(record(1)));
    ASSERT_TRUE(log.try_append(record(2)));
    size_after_good = fs::file_size(path_);

    // Persist 6 bytes of the next frame, then fail — the torn tail a
    // crash mid-write leaves.
    FsFaultSpec spec;
    spec.op = "write";
    spec.path_contains = "records.stjl";
    spec.count = 1;
    spec.short_write_bytes = 6;
    fs_fault_install(spec);
    EXPECT_FALSE(log.try_append(record(3)));
    EXPECT_EQ(log.write_failures(), 1);
    fs_fault_clear();
  }
  // The dying process never appended again, so the torn bytes are still
  // on disk.
  EXPECT_GT(fs::file_size(path_), size_after_good);

  int torn = 0;
  const std::vector<std::uint64_t> values = replay(&torn);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(torn, 1);
  EXPECT_EQ(fs::file_size(path_), size_after_good);
}

TEST_F(FramedLogFaultTest, NextAppendRestoresTailInProcess) {
  FramedLog log(path_, format(), /*resume=*/false, nullptr);
  ASSERT_TRUE(log.try_append(record(1)));

  FsFaultSpec spec;
  spec.op = "write";
  spec.path_contains = "records.stjl";
  spec.count = 1;
  spec.short_write_bytes = 3;
  fs_fault_install(spec);
  EXPECT_FALSE(log.try_append(record(2)));
  fs_fault_clear();

  // The fault window is closed; the retried record must land after the
  // torn prefix is truncated away, leaving a clean 1, 2 history.
  EXPECT_TRUE(log.try_append(record(2)));
  const std::vector<std::uint64_t> values = replay();
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(FramedLogFaultTest, EnospcWindowFailsThenRecovers) {
  FramedLog log(path_, format(), /*resume=*/false, nullptr);
  FsFaultSpec spec;
  spec.op = "write";
  spec.path_contains = "records.stjl";
  spec.skip = 1;
  spec.count = 2;
  spec.error_no = ENOSPC;
  fs_fault_install(spec);

  EXPECT_TRUE(log.try_append(record(1)));   // skipped by the window
  EXPECT_FALSE(log.try_append(record(2)));  // window open
  EXPECT_FALSE(log.try_append(record(2)));
  EXPECT_EQ(log.write_failures(), 2);
  EXPECT_NE(log.last_write_error().find("records.stjl"), std::string::npos);
  EXPECT_TRUE(log.try_append(record(2)));  // window exhausted
  fs_fault_clear();

  const std::vector<std::uint64_t> values = replay();
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(FramedLogFaultTest, FsyncFaultFailsAppendWithoutCorruption) {
  FramedLog log(path_, format(), /*resume=*/false, nullptr);
  ASSERT_TRUE(log.try_append(record(1)));

  FsFaultSpec spec;
  spec.op = "fsync";
  spec.path_contains = "records.stjl";
  spec.count = 1;
  spec.error_no = EIO;
  fs_fault_install(spec);
  EXPECT_FALSE(log.try_append(record(2)));
  fs_fault_clear();

  EXPECT_TRUE(log.try_append(record(3)));
  const std::vector<std::uint64_t> values = replay();
  EXPECT_EQ(values, (std::vector<std::uint64_t>{1, 3}));
}

TEST_F(FramedLogFaultTest, ThrowingAppendStillReportsTheError) {
  FramedLog log(path_, format(), /*resume=*/false, nullptr);
  FsFaultSpec spec;
  spec.op = "write";
  spec.count = 1;
  spec.error_no = ENOSPC;
  fs_fault_install(spec);
  EXPECT_THROW(log.append(record(1)), CheckError);
  fs_fault_clear();
  EXPECT_NO_THROW(log.append(record(1)));
  EXPECT_EQ(replay(), (std::vector<std::uint64_t>{1}));
}

}  // namespace
}  // namespace stormtrack
