/// Checkpoint round trips for malleable runs: a trace run that grows and
/// shrinks its processor view mid-trace must survive a kill-and-resume
/// fingerprint-identical, old-version checkpoint files must be rejected
/// with a clear error, and a resize schedule different from the one that
/// wrote the checkpoints must start fresh instead of resuming.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/trace_run.hpp"
#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

Trace test_trace(int events) {
  SyntheticTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = 0xe1a571c;
  return generate_synthetic_trace(cfg);
}

/// 256 -> 1024 -> 256 ranks on a 32x32 machine: start on a 16x16 view,
/// grow to the full grid at point 4, shrink back at point 9.
ManagerConfig grow_shrink_config() {
  ManagerConfig cfg;
  cfg.initial_view_px = 16;
  cfg.initial_view_py = 16;
  cfg.resize_schedule = {ResizeEvent{4, 32, 32}, ResizeEvent{9, 16, 16}};
  return cfg;
}

std::map<std::string, std::int64_t> counts(const MetricsRegistry& metrics) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, entry] : metrics.entries())
    out[name] = entry.count;
  return out;
}

void kill_after_step(const fs::path& dir, std::int64_t survivor_step,
                     std::int64_t max_step) {
  for (std::int64_t s = survivor_step + 1; s <= max_step; ++s)
    fs::remove(checkpoint_file_path(dir, s));
}

std::vector<char> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class ElasticResumeTest : public ::testing::Test {
 protected:
  ElasticResumeTest() : machine_(Machine::bluegene(1024)) {}

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_elastic_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ModelStack models_;
  Machine machine_;
  fs::path dir_;
};

TEST_F(ElasticResumeTest, KillAndResumeAcrossAResizeIsFingerprintIdentical) {
  const Trace trace = test_trace(14);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 1;
  policy.keep = 0;  // keep everything so the test can pick the survivor

  const TraceRunResult reference = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace,
      grow_shrink_config(), policy);

  // Survivors straddle the schedule: before the grow, between grow and
  // shrink (the resumed run must come back on the 32x32 view), and after
  // the shrink. Each death replays the remaining resizes exactly once.
  for (const std::int64_t survivor : {2, 6, 11}) {
    SCOPED_TRACE("survivor step " + std::to_string(survivor));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                                 "diffusion", trace, grow_shrink_config(),
                                 policy);
    kill_after_step(dir_, survivor, static_cast<std::int64_t>(trace.size()));

    ResumeReport report;
    const TraceRunResult resumed = run_trace_checkpointed(
        machine_, models_.model, models_.truth, "diffusion", trace,
        grow_shrink_config(), policy, &report);

    EXPECT_TRUE(report.resumed);
    EXPECT_EQ(report.step, survivor);
    EXPECT_EQ(resumed.final_state_fingerprint,
              reference.final_state_fingerprint);
    EXPECT_EQ(resumed.total_exec(), reference.total_exec());
    EXPECT_EQ(resumed.total_redist(), reference.total_redist());
    EXPECT_EQ(resumed.total_hop_bytes(), reference.total_hop_bytes());
    ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
    for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
      SCOPED_TRACE("outcome " + std::to_string(i));
      EXPECT_EQ(resumed.outcomes[i].chosen, reference.outcomes[i].chosen);
      EXPECT_EQ(resumed.outcomes[i].allocation.rects(),
                reference.outcomes[i].allocation.rects());
    }
    // Resize events consumed before the death were restored, not replayed:
    // every elastic.* counter matches the uninterrupted run.
    EXPECT_EQ(counts(resumed.metrics), counts(reference.metrics));
  }
}

TEST_F(ElasticResumeTest, OldVersionCheckpointsAreRejectedWithAClearError) {
  const Trace trace = test_trace(6);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 1;
  policy.keep = 0;
  (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                               "diffusion", trace, grow_shrink_config(),
                               policy);

  // Rewrite the newest file's version word (u32 at byte offset 4, after
  // the "STCK" magic) to 1, as a pre-resize build would have written it.
  const fs::path newest = checkpoint_file_path(dir_, 6);
  ASSERT_TRUE(fs::exists(newest));
  std::vector<char> bytes = read_file(newest);
  ASSERT_GE(bytes.size(), 8u);
  bytes[4] = 1;
  bytes[5] = 0;
  bytes[6] = 0;
  bytes[7] = 0;
  write_file(newest, bytes);

  try {
    (void)load_checkpoint(newest);
    FAIL() << "version-1 checkpoint was not rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version 1"),
              std::string::npos)
        << e.what();
  }

  // The directory scan must fall back past the stale file to the newest
  // version-2 checkpoint instead of dying on it.
  const std::uint64_t fp = trace_run_fingerprint(
      machine_, "diffusion", trace, grow_shrink_config());
  const auto latest = latest_valid_checkpoint(dir_, fp);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->checkpoint.step, 5);  // newest surviving v2 file
  EXPECT_EQ(latest->invalid_skipped, 1);
  ASSERT_EQ(latest->errors.size(), 1u);
  EXPECT_NE(latest->errors[0].find("unsupported checkpoint version"),
            std::string::npos)
      << latest->errors[0];
}

TEST_F(ElasticResumeTest, DifferentResizeScheduleStartsFreshNotResumed) {
  const Trace trace = test_trace(6);
  CheckpointPolicy policy;
  policy.dir = dir_;

  (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                               "diffusion", trace, grow_shrink_config(),
                               policy);

  // Same trace, same strategy, but a different resize schedule: the config
  // fingerprint differs, so nothing resumes and the run starts from step 0.
  ManagerConfig other = grow_shrink_config();
  other.resize_schedule = {ResizeEvent{3, 32, 32}};
  ResumeReport report;
  (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                               "diffusion", trace, other, policy, &report);
  EXPECT_FALSE(report.resumed);
}

}  // namespace
}  // namespace stormtrack
