// Checkpoint format v3: the workload name + opaque payload blob framing,
// the refusal of pre-v3 files, and the config fingerprint covering the
// workload choice.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

CoupledConfig particle_config() {
  CoupledConfig cfg;
  cfg.scenario.weather.domain.resolution_km = 24.0;
  cfg.scenario.sim_px = 16;
  cfg.scenario.sim_py = 16;
  cfg.scenario.pda.analysis_procs = 16;
  cfg.manager.steps_per_interval = 3;
  cfg.workload = "particles";
  return cfg;
}

class WorkloadCheckpointTest : public ::testing::Test {
 protected:
  WorkloadCheckpointTest() : machine_(Machine::bluegene(256)) {}

  RunCheckpoint coupled_checkpoint(const CoupledConfig& config,
                                   int intervals) {
    CoupledSimulation sim(machine_, models_.model, models_.truth, config);
    for (int i = 0; i < intervals; ++i) (void)sim.advance();
    RunCheckpoint ckpt;
    ckpt.kind = CheckpointKind::kCoupledRun;
    ckpt.config_fingerprint = coupled_config_fingerprint(machine_, config);
    ckpt.step = sim.interval();
    ckpt.state_fingerprint = sim.state_fingerprint();
    ckpt.coupled = sim.export_state();
    return ckpt;
  }

  ModelStack models_;
  Machine machine_;
};

TEST_F(WorkloadCheckpointTest, ParticleCoupledCheckpointRoundTrips) {
  const CoupledConfig config = particle_config();
  const RunCheckpoint ckpt = coupled_checkpoint(config, 3);
  const std::vector<std::byte> bytes = encode_checkpoint(ckpt);
  const RunCheckpoint decoded = decode_checkpoint(bytes);

  EXPECT_EQ(decoded.kind, CheckpointKind::kCoupledRun);
  EXPECT_EQ(decoded.coupled.workload, "particles");
  EXPECT_EQ(decoded.coupled.workload_state, ckpt.coupled.workload_state);
  EXPECT_EQ(encode_checkpoint(decoded), bytes);

  CoupledSimulation restored(machine_, models_.model, models_.truth, config);
  restored.import_state(decoded.coupled);
  EXPECT_EQ(restored.state_fingerprint(), ckpt.state_fingerprint);
}

TEST_F(WorkloadCheckpointTest, PreV3VersionsAreRefusedWithMigrationHint) {
  const RunCheckpoint ckpt = coupled_checkpoint(particle_config(), 2);
  for (const std::uint32_t old_version : {1u, 2u}) {
    std::vector<std::byte> bytes = encode_checkpoint(ckpt);
    // Frame layout: u32 magic | u32 version | ... — rewrite the version
    // field in place (checked before the CRC, so the stale payload is
    // never parsed).
    std::memcpy(bytes.data() + sizeof(std::uint32_t), &old_version,
                sizeof(old_version));
    try {
      (void)decode_checkpoint(bytes);
      FAIL() << "version " << old_version << " must be refused";
    } catch (const CheckError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("unsupported checkpoint version"),
                std::string::npos);
      EXPECT_NE(what.find("pre-v3"), std::string::npos)
          << "old versions should explain the workload-layer break: "
          << what;
    }
  }
}

TEST_F(WorkloadCheckpointTest, FutureVersionsAreRefusedWithoutTheHint) {
  std::vector<std::byte> bytes =
      encode_checkpoint(coupled_checkpoint(particle_config(), 1));
  const std::uint32_t future = kCheckpointVersion + 1;
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &future, sizeof(future));
  try {
    (void)decode_checkpoint(bytes);
    FAIL() << "future versions must be refused";
  } catch (const CheckError& e) {
    EXPECT_EQ(std::string(e.what()).find("pre-v3"), std::string::npos);
  }
}

TEST_F(WorkloadCheckpointTest, ConfigFingerprintCoversWorkloadChoice) {
  const CoupledConfig base = particle_config();
  const std::uint64_t fp = coupled_config_fingerprint(machine_, base);

  CoupledConfig field = base;
  field.workload = "field";
  EXPECT_NE(coupled_config_fingerprint(machine_, field), fp)
      << "a field checkpoint must not resume a particle run";

  CoupledConfig tuned = base;
  tuned.particles.particles_per_nest = 128;
  EXPECT_NE(coupled_config_fingerprint(machine_, tuned), fp);

  CoupledConfig drift = base;
  drift.particles.drift_u = 0.5;
  EXPECT_NE(coupled_config_fingerprint(machine_, drift), fp);

  // Executor wiring is an execution knob, not state: it must not orphan
  // checkpoints.
  CoupledConfig same = particle_config();
  EXPECT_EQ(coupled_config_fingerprint(machine_, same), fp);
}

}  // namespace
}  // namespace stormtrack
