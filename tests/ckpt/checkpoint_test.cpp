#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/trace_run.hpp"
#include "core/experiment.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

Trace small_trace(int events, std::uint64_t seed = 11) {
  SyntheticTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

/// A realistic trace-run checkpoint: drive a real pipeline \p steps points
/// into \p trace and capture everything, exactly as the runner does.
RunCheckpoint trace_checkpoint(const Machine& machine,
                               const ModelStack& models, const Trace& trace,
                               int steps) {
  ManagerConfig config;
  config.strategy = "hysteresis";  // cross-point strategy state gets covered
  AdaptationPipeline pipeline(machine, models.model, models.truth, config);
  RunCheckpoint ckpt;
  ckpt.kind = CheckpointKind::kTraceRun;
  ckpt.config_fingerprint =
      trace_run_fingerprint(machine, "hysteresis", trace, config);
  for (int i = 0; i < steps; ++i)
    ckpt.outcomes.push_back(pipeline.apply(trace[static_cast<std::size_t>(i)]));
  ckpt.step = steps;
  ckpt.state_fingerprint = pipeline.state_fingerprint();
  ckpt.pipeline = pipeline.export_state();
  return ckpt;
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : machine_(Machine::bluegene(256)) {}

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ModelStack models_;
  Machine machine_;
  fs::path dir_;
};

TEST_F(CheckpointTest, TraceRunEncodeDecodeIsStable) {
  const RunCheckpoint ckpt =
      trace_checkpoint(machine_, models_, small_trace(5), 3);
  const std::vector<std::byte> bytes = encode_checkpoint(ckpt);
  const RunCheckpoint decoded = decode_checkpoint(bytes);
  EXPECT_EQ(decoded.kind, CheckpointKind::kTraceRun);
  EXPECT_EQ(decoded.step, 3);
  EXPECT_EQ(decoded.config_fingerprint, ckpt.config_fingerprint);
  EXPECT_EQ(decoded.state_fingerprint, ckpt.state_fingerprint);
  EXPECT_EQ(decoded.outcomes.size(), 3u);
  EXPECT_FALSE(decoded.has_injector);
  // Re-encoding the decoded checkpoint reproduces the bytes exactly —
  // every field of every nested struct survives the round trip.
  EXPECT_EQ(encode_checkpoint(decoded), bytes);
}

TEST_F(CheckpointTest, DecodedStateRestoresIntoALivePipeline) {
  const Trace trace = small_trace(6);
  const RunCheckpoint ckpt = trace_checkpoint(machine_, models_, trace, 4);
  const RunCheckpoint decoded =
      decode_checkpoint(encode_checkpoint(ckpt));

  ManagerConfig config;
  config.strategy = "hysteresis";
  AdaptationPipeline restored(machine_, models_.model, models_.truth, config);
  restored.import_state(decoded.pipeline);
  EXPECT_EQ(restored.state_fingerprint(), ckpt.state_fingerprint);
}

TEST_F(CheckpointTest, CoupledEncodeDecodeIsStable) {
  CoupledConfig config;
  config.scenario.num_intervals = 4;
  config.scenario.seed = 5;
  CoupledSimulation sim(machine_, models_.model, models_.truth, config);
  for (int i = 0; i < 3; ++i) sim.advance();

  RunCheckpoint ckpt;
  ckpt.kind = CheckpointKind::kCoupledRun;
  ckpt.config_fingerprint = coupled_config_fingerprint(machine_, config);
  ckpt.step = sim.interval();
  ckpt.state_fingerprint = sim.state_fingerprint();
  ckpt.coupled = sim.export_state();

  const std::vector<std::byte> bytes = encode_checkpoint(ckpt);
  const RunCheckpoint decoded = decode_checkpoint(bytes);
  EXPECT_EQ(decoded.kind, CheckpointKind::kCoupledRun);
  EXPECT_EQ(decoded.step, 3);
  EXPECT_EQ(encode_checkpoint(decoded), bytes);

  CoupledSimulation restored(machine_, models_.model, models_.truth, config);
  restored.import_state(decoded.coupled);
  EXPECT_EQ(restored.state_fingerprint(), ckpt.state_fingerprint);
}

TEST_F(CheckpointTest, ZeroLengthFileIsRejected) {
  EXPECT_THROW((void)decode_checkpoint({}), CheckError);
}

TEST_F(CheckpointTest, BadMagicIsRejectedDescriptively) {
  std::vector<std::byte> bytes =
      encode_checkpoint(trace_checkpoint(machine_, models_, small_trace(3), 2));
  bytes[0] = std::byte{0x00};
  try {
    (void)decode_checkpoint(bytes);
    FAIL() << "bad magic must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(CheckpointTest, UnsupportedVersionIsRejected) {
  std::vector<std::byte> bytes =
      encode_checkpoint(trace_checkpoint(machine_, models_, small_trace(3), 2));
  bytes[4] = std::byte{0x99};  // version field follows the magic
  try {
    (void)decode_checkpoint(bytes);
    FAIL() << "wrong version must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CheckpointTest, EveryTruncationIsRejected) {
  const std::vector<std::byte> bytes =
      encode_checkpoint(trace_checkpoint(machine_, models_, small_trace(3), 2));
  // Cut the file at a spread of lengths, including mid-header, mid-payload
  // and just shy of the trailing CRC; none may decode.
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{4}, std::size_t{9}, std::size_t{16},
        bytes.size() / 2, bytes.size() - 5, bytes.size() - 1}) {
    SCOPED_TRACE("length " + std::to_string(len));
    EXPECT_THROW(
        (void)decode_checkpoint(std::span(bytes.data(), len)), CheckError);
  }
}

TEST_F(CheckpointTest, BitFlipFailsTheCrc) {
  std::vector<std::byte> bytes =
      encode_checkpoint(trace_checkpoint(machine_, models_, small_trace(3), 2));
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  try {
    (void)decode_checkpoint(bytes);
    FAIL() << "bit flip must fail the CRC";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST_F(CheckpointTest, TrailingBytesAreRejected) {
  std::vector<std::byte> bytes =
      encode_checkpoint(trace_checkpoint(machine_, models_, small_trace(3), 2));
  bytes.push_back(std::byte{0xEE});
  EXPECT_THROW((void)decode_checkpoint(bytes), CheckError);
}

TEST_F(CheckpointTest, SaveLoadRoundTripsOnDisk) {
  const RunCheckpoint ckpt =
      trace_checkpoint(machine_, models_, small_trace(4), 2);
  const std::size_t bytes = save_checkpoint(dir_, ckpt);
  EXPECT_GT(bytes, 0u);
  const fs::path file = checkpoint_file_path(dir_, 2);
  ASSERT_TRUE(fs::exists(file));
  const RunCheckpoint loaded = load_checkpoint(file);
  EXPECT_EQ(loaded.state_fingerprint, ckpt.state_fingerprint);
}

TEST_F(CheckpointTest, LatestValidFallsBackPastCorruptNewerFiles) {
  const Trace trace = small_trace(6);
  for (const int steps : {1, 2, 3})
    save_checkpoint(dir_, trace_checkpoint(machine_, models_, trace, steps));
  // Corrupt the newest file and truncate the second-newest: resume must
  // fall back to the oldest intact one and report both skips.
  write_file_atomic(checkpoint_file_path(dir_, 3),
                    std::string_view("not a checkpoint at all"));
  const std::vector<std::byte> good =
      read_file_bytes(checkpoint_file_path(dir_, 2));
  write_file_atomic(checkpoint_file_path(dir_, 2),
                    std::span(good.data(), good.size() / 2));

  const auto latest = latest_valid_checkpoint(dir_);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->checkpoint.step, 1);
  EXPECT_EQ(latest->invalid_skipped, 2);
  EXPECT_EQ(latest->errors.size(), 2u);
}

TEST_F(CheckpointTest, LatestValidFiltersByConfigFingerprint) {
  save_checkpoint(dir_,
                  trace_checkpoint(machine_, models_, small_trace(3), 2));
  EXPECT_TRUE(latest_valid_checkpoint(dir_).has_value());
  EXPECT_FALSE(latest_valid_checkpoint(dir_, 0xDEADBEEFull).has_value());
}

TEST_F(CheckpointTest, MissingDirectoryYieldsNoCheckpoint) {
  EXPECT_FALSE(latest_valid_checkpoint(dir_ / "absent").has_value());
}

TEST_F(CheckpointTest, PruneKeepsOnlyTheNewest) {
  const Trace trace = small_trace(6);
  for (const int steps : {1, 2, 3, 4})
    save_checkpoint(dir_, trace_checkpoint(machine_, models_, trace, steps));
  EXPECT_EQ(prune_checkpoints(dir_, 2), 2);
  EXPECT_FALSE(fs::exists(checkpoint_file_path(dir_, 1)));
  EXPECT_FALSE(fs::exists(checkpoint_file_path(dir_, 2)));
  EXPECT_TRUE(fs::exists(checkpoint_file_path(dir_, 3)));
  EXPECT_TRUE(fs::exists(checkpoint_file_path(dir_, 4)));
  EXPECT_EQ(prune_checkpoints(dir_, 0), 0);  // keep <= 0 keeps all
}

TEST_F(CheckpointTest, PolicyValidationAndCadence) {
  CheckpointPolicy policy;
  EXPECT_THROW(policy.validate(), CheckError);  // no dir
  policy.dir = dir_;
  policy.every = 0;
  EXPECT_THROW(policy.validate(), CheckError);
  policy.every = 3;
  EXPECT_NO_THROW(policy.validate());
  EXPECT_FALSE(policy.due(0));
  EXPECT_FALSE(policy.due(1));
  EXPECT_TRUE(policy.due(2));   // third committed step
  EXPECT_TRUE(policy.due(5));
}

}  // namespace
}  // namespace stormtrack
