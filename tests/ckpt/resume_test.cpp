#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "ckpt/trace_run.hpp"
#include "core/experiment.hpp"
#include "exec/cancel.hpp"
#include "exec/executor.hpp"
#include "fault/fault_plan.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

Trace test_trace(int events, std::uint64_t seed = 17) {
  SyntheticTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

/// Counter totals by name (wall-time seconds are timing noise; every count
/// in the registry is deterministic and must survive a kill+resume).
std::map<std::string, std::int64_t> counts(const MetricsRegistry& metrics) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, entry] : metrics.entries())
    out[name] = entry.count;
  return out;
}

/// Simulate a SIGKILL after \p survivor_step: delete every checkpoint the
/// reference run wrote after it, leaving the directory exactly as a death
/// at that point would.
void kill_after_step(const fs::path& dir, std::int64_t survivor_step,
                     std::int64_t max_step) {
  for (std::int64_t s = survivor_step + 1; s <= max_step; ++s)
    fs::remove(checkpoint_file_path(dir, s));
}

class ResumeTest : public ::testing::Test {
 protected:
  ResumeTest() : machine_(Machine::bluegene(256)) {}

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_resume_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  ModelStack models_;
  Machine machine_;
  fs::path dir_;
};

TEST_F(ResumeTest, KilledTraceRunResumesByteIdentical) {
  const Trace trace = test_trace(8);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 2;
  policy.keep = 0;  // keep everything so the test can pick the survivor

  // Uninterrupted reference.
  const TraceRunResult reference = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace,
      ManagerConfig{}, policy);

  // Die after step 4; resume and finish.
  kill_after_step(dir_, 4, static_cast<std::int64_t>(trace.size()));
  ResumeReport report;
  const TraceRunResult resumed = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace,
      ManagerConfig{}, policy, &report);

  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.step, 4);
  EXPECT_EQ(resumed.final_state_fingerprint,
            reference.final_state_fingerprint);
  EXPECT_EQ(resumed.total_exec(), reference.total_exec());
  EXPECT_EQ(resumed.total_redist(), reference.total_redist());
  EXPECT_EQ(resumed.total_hop_bytes(), reference.total_hop_bytes());
  ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    SCOPED_TRACE("outcome " + std::to_string(i));
    EXPECT_EQ(resumed.outcomes[i].chosen, reference.outcomes[i].chosen);
    EXPECT_EQ(resumed.outcomes[i].committed.actual_exec,
              reference.outcomes[i].committed.actual_exec);
    EXPECT_EQ(resumed.outcomes[i].allocation.rects(),
              reference.outcomes[i].allocation.rects());
  }
  // Every counter — including ckpt.writes — matches the uninterrupted run.
  EXPECT_EQ(counts(resumed.metrics), counts(reference.metrics));
}

TEST_F(ResumeTest, KilledTraceRunResumesByteIdenticalWithEightThreads) {
  const Trace trace = test_trace(8);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 3;
  policy.keep = 0;

  ThreadPoolExecutor pool(8);
  ManagerConfig config;
  config.executor = &pool;

  const TraceRunResult reference = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace, config,
      policy);
  kill_after_step(dir_, 3, static_cast<std::int64_t>(trace.size()));
  ResumeReport report;
  const TraceRunResult resumed = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace, config,
      policy, &report);

  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.step, 3);
  EXPECT_EQ(resumed.final_state_fingerprint,
            reference.final_state_fingerprint);
  EXPECT_EQ(resumed.total_exec(), reference.total_exec());
  EXPECT_EQ(counts(resumed.metrics), counts(reference.metrics));
}

TEST_F(ResumeTest, ResumeCarriesHysteresisStrategyState) {
  // The hysteresis incumbent lives across adaptation points; losing it on
  // resume would change later decisions. Kill right after a decision point.
  const Trace trace = test_trace(10, 23);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 1;
  policy.keep = 0;

  const TraceRunResult reference = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "hysteresis", trace,
      ManagerConfig{}, policy);
  kill_after_step(dir_, 5, static_cast<std::int64_t>(trace.size()));
  const TraceRunResult resumed = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "hysteresis", trace,
      ManagerConfig{}, policy);
  EXPECT_EQ(resumed.final_state_fingerprint,
            reference.final_state_fingerprint);
  ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i)
    EXPECT_EQ(resumed.outcomes[i].chosen, reference.outcomes[i].chosen);
}

TEST_F(ResumeTest, KilledRunUnderFaultInjectionResumesExactly) {
  const Trace trace = test_trace(8);
  FaultPlan::RandomConfig rc;
  rc.num_events = 6;
  rc.num_points = 8;
  rc.num_ranks = 256;
  rc.seed = 9;
  const FaultPlan plan = FaultPlan::random(rc);

  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 2;
  policy.keep = 0;

  FaultInjector ref_injector(plan);
  ManagerConfig ref_config;
  ref_config.injector = &ref_injector;
  const TraceRunResult reference = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace, ref_config,
      policy);

  kill_after_step(dir_, 4, static_cast<std::int64_t>(trace.size()));
  FaultInjector res_injector(plan);
  ManagerConfig res_config;
  res_config.injector = &res_injector;
  ResumeReport report;
  const TraceRunResult resumed = run_trace_checkpointed(
      machine_, models_.model, models_.truth, "diffusion", trace, res_config,
      policy, &report);

  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(resumed.final_state_fingerprint,
            reference.final_state_fingerprint);
  // The injector's interpreter position was restored, so fault and
  // recovery counters agree too — faults neither replayed nor skipped.
  EXPECT_EQ(counts(resumed.metrics), counts(reference.metrics));
}

TEST_F(ResumeTest, DifferentConfigurationStartsFreshInsteadOfResuming) {
  const Trace trace = test_trace(6);
  CheckpointPolicy policy;
  policy.dir = dir_;

  (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                               "diffusion", trace, ManagerConfig{}, policy);
  // Same directory, different trace: the config fingerprint differs, so
  // nothing resumes and the run starts from step 0.
  ResumeReport report;
  (void)run_trace_checkpointed(machine_, models_.model, models_.truth,
                               "diffusion", test_trace(6, 99),
                               ManagerConfig{}, policy, &report);
  EXPECT_FALSE(report.resumed);
}

TEST_F(ResumeTest, CancelledRunThrowsCancelledErrorNotCheckError) {
  const Trace trace = test_trace(4);
  CancelToken token;
  token.cancel("watchdog");
  ManagerConfig config;
  config.cancel = &token;
  EXPECT_THROW((void)run_trace(machine_, models_.model, models_.truth,
                               "diffusion", trace, config),
               CancelledError);
}

TEST_F(ResumeTest, KilledCoupledRunResumesToTheSameFingerprint) {
  CoupledConfig config;
  config.scenario.num_intervals = 6;
  config.scenario.seed = 31;
  const std::uint64_t fp = coupled_config_fingerprint(machine_, config);
  CheckpointPolicy policy;
  policy.dir = dir_;
  policy.every = 1;
  policy.keep = 0;

  // Uninterrupted reference with checkpointing on.
  CoupledCheckpointer ref_hook(policy, fp);
  CoupledConfig ref_config = config;
  ref_config.hook = &ref_hook;
  CoupledSimulation reference(machine_, models_.model, models_.truth,
                              ref_config);
  for (int i = 0; i < 6; ++i) reference.advance();
  ref_hook.checkpoint_now(reference);
  EXPECT_GT(ref_hook.bytes_written(), 0);

  // Death after interval 3: drop the later checkpoints, resume, finish.
  kill_after_step(dir_, 3, 6);
  CoupledCheckpointer res_hook(policy, fp);
  CoupledConfig res_config = config;
  res_config.hook = &res_hook;
  CoupledSimulation resumed(machine_, models_.model, models_.truth,
                            res_config);
  const ResumeReport report = resume_coupled(resumed, dir_, fp);
  ASSERT_TRUE(report.resumed);
  EXPECT_EQ(report.step, 3);
  EXPECT_EQ(resumed.interval(), 3);
  for (int i = 3; i < 6; ++i) resumed.advance();
  res_hook.checkpoint_now(resumed);

  EXPECT_EQ(resumed.state_fingerprint(), reference.state_fingerprint());
  EXPECT_EQ(counts(resumed.pipeline().metrics()),
            counts(reference.pipeline().metrics()));
}

TEST_F(ResumeTest, CheckpointNowIsIdempotentPerStep) {
  CoupledConfig config;
  config.scenario.num_intervals = 3;
  const std::uint64_t fp = coupled_config_fingerprint(machine_, config);
  CheckpointPolicy policy;
  policy.dir = dir_;
  CoupledCheckpointer hook(policy, fp);
  CoupledSimulation sim(machine_, models_.model, models_.truth, config);
  sim.advance();
  hook.checkpoint_now(sim);
  hook.checkpoint_now(sim);  // same step: must not write again
  EXPECT_EQ(hook.writes(), 1);
}

TEST_F(ResumeTest, EmptyDirectoryMeansNoResume) {
  CoupledConfig config;
  config.scenario.num_intervals = 2;
  CoupledSimulation sim(machine_, models_.model, models_.truth, config);
  const ResumeReport report =
      resume_coupled(sim, dir_, coupled_config_fingerprint(machine_, config));
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.step, -1);
}

}  // namespace
}  // namespace stormtrack
