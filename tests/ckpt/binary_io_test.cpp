#include "util/binary_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace stormtrack {
namespace {

TEST(BinaryIo, ScalarRoundTrip) {
  BinaryWriter w;
  w.put_u8(0xAB);
  w.put_bool(true);
  w.put_bool(false);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i32(-42);
  w.put_i64(-1234567890123LL);
  w.put_f64(3.14159);
  w.put_string("hello");
  w.put_count(7);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_u8("a"), 0xAB);
  EXPECT_TRUE(r.get_bool("b"));
  EXPECT_FALSE(r.get_bool("c"));
  EXPECT_EQ(r.get_u32("d"), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64("e"), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i32("f"), -42);
  EXPECT_EQ(r.get_i64("g"), -1234567890123LL);
  EXPECT_EQ(r.get_f64("h"), 3.14159);
  EXPECT_EQ(r.get_string("i"), "hello");
  EXPECT_EQ(r.get_count("j"), 7u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryIo, EncodingIsLittleEndian) {
  BinaryWriter w;
  w.put_u32(0x04030201u);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<int>(b[0]), 1);
  EXPECT_EQ(static_cast<int>(b[1]), 2);
  EXPECT_EQ(static_cast<int>(b[2]), 3);
  EXPECT_EQ(static_cast<int>(b[3]), 4);
}

TEST(BinaryIo, DoublesAreBitExact) {
  BinaryWriter w;
  w.put_f64(-0.0);
  w.put_f64(std::numeric_limits<double>::quiet_NaN());
  w.put_f64(std::numeric_limits<double>::infinity());
  w.put_f64(std::numeric_limits<double>::denorm_min());

  BinaryReader r(w.bytes());
  const double neg_zero = r.get_f64("neg zero");
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(std::isnan(r.get_f64("nan")));
  EXPECT_TRUE(std::isinf(r.get_f64("inf")));
  EXPECT_EQ(r.get_f64("denorm"), std::numeric_limits<double>::denorm_min());
}

TEST(BinaryIo, TruncatedReadNamesTheField) {
  BinaryWriter w;
  w.put_u32(123);
  BinaryReader r(w.bytes());
  (void)r.get_u32("first");
  try {
    (void)r.get_u64("missing tail");
    FAIL() << "read past end must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("missing tail"), std::string::npos);
  }
}

TEST(BinaryIo, TruncatedStringThrows) {
  BinaryWriter w;
  w.put_u32(100);  // claims 100 bytes, provides none
  BinaryReader r(w.bytes());
  EXPECT_THROW((void)r.get_string("name"), CheckError);
}

TEST(BinaryIo, BadBoolByteThrows) {
  BinaryWriter w;
  w.put_u8(2);
  BinaryReader r(w.bytes());
  EXPECT_THROW((void)r.get_bool("flag"), CheckError);
}

TEST(BinaryIo, InsaneCountThrows) {
  BinaryWriter w;
  w.put_u64(std::numeric_limits<std::uint64_t>::max());
  BinaryReader r(w.bytes());
  EXPECT_THROW((void)r.get_count("elements"), CheckError);
}

TEST(BinaryIo, EmptyStringRoundTrips) {
  BinaryWriter w;
  w.put_string("");
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_string("empty"), "");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace stormtrack
