/// Property tests of the communication cost model: the qualitative facts
/// the experiments lean on must hold for arbitrary message sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simmpi/simcomm.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<Message> random_messages(Xoshiro256& rng, int ranks, int count) {
  std::vector<Message> msgs;
  for (int i = 0; i < count; ++i) {
    Message m;
    m.src = static_cast<int>(rng.uniform_int(0, ranks - 1));
    m.dst = static_cast<int>(rng.uniform_int(0, ranks - 1));
    m.bytes = rng.uniform_int(0, 1 << 20);
    msgs.push_back(m);
  }
  return msgs;
}

class CostModelSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Torus3D torus_{4, 4, 4};
  RowMajorMapping map_{64};
  SimComm comm_{torus_, map_};
};

TEST_P(CostModelSweep, AddingAMessageNeverSpeedsUpThePhase) {
  Xoshiro256 rng(GetParam());
  std::vector<Message> msgs = random_messages(rng, 64, 20);
  const double base = comm_.alltoallv(msgs).modeled_time;
  msgs.push_back(Message{1, 2, 4096});
  EXPECT_GE(comm_.alltoallv(msgs).modeled_time, base);
}

TEST_P(CostModelSweep, GrowingAMessageNeverSpeedsUpThePhase) {
  Xoshiro256 rng(GetParam());
  std::vector<Message> msgs = random_messages(rng, 64, 20);
  const double base = comm_.alltoallv(msgs).modeled_time;
  for (Message& m : msgs) m.bytes *= 2;
  EXPECT_GE(comm_.alltoallv(msgs).modeled_time, base);
}

TEST_P(CostModelSweep, TimeAtLeastWorstPair) {
  // The paper's §IV-C-1 prediction (pair max) must lower-bound the
  // simulated charge — the invariant the dynamic strategy relies on.
  Xoshiro256 rng(GetParam() + 100);
  const std::vector<Message> msgs = random_messages(rng, 64, 30);
  double worst = 0.0;
  for (const Message& m : msgs) {
    if (m.bytes == 0 || m.src == m.dst) continue;
    worst = std::max(worst,
                     torus_.pair_time(comm_.hops(m.src, m.dst), m.bytes));
  }
  EXPECT_GE(comm_.alltoallv(msgs).modeled_time, worst - 1e-15);
}

TEST_P(CostModelSweep, AccountingIsExact) {
  Xoshiro256 rng(GetParam() + 200);
  const std::vector<Message> msgs = random_messages(rng, 64, 25);
  const TrafficReport r = comm_.alltoallv(msgs);
  std::int64_t bytes = 0, hop_bytes = 0, local = 0, count = 0;
  for (const Message& m : msgs) {
    if (m.bytes == 0) continue;
    if (m.src == m.dst) {
      local += m.bytes;
      continue;
    }
    bytes += m.bytes;
    hop_bytes += m.bytes * comm_.hops(m.src, m.dst);
    ++count;
  }
  EXPECT_EQ(r.total_bytes, bytes);
  EXPECT_EQ(r.hop_bytes, hop_bytes);
  EXPECT_EQ(r.local_bytes, local);
  EXPECT_EQ(r.num_messages, count);
}

TEST_P(CostModelSweep, OrderIndependent) {
  Xoshiro256 rng(GetParam() + 300);
  std::vector<Message> msgs = random_messages(rng, 64, 25);
  const TrafficReport a = comm_.alltoallv(msgs);
  std::reverse(msgs.begin(), msgs.end());
  const TrafficReport b = comm_.alltoallv(msgs);
  EXPECT_DOUBLE_EQ(a.modeled_time, b.modeled_time);
  EXPECT_EQ(a.hop_bytes, b.hop_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostModelSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(CostModel, AggregateCapacityPositiveEverywhere) {
  EXPECT_GT(Torus3D(8, 8, 16).aggregate_capacity(), 0.0);
  EXPECT_GT(Mesh2D(4, 4).aggregate_capacity(), 0.0);
  EXPECT_GT(SwitchedNetwork(64, 16).aggregate_capacity(), 0.0);
}

TEST(CostModel, BiggerTorusHasMoreCapacity) {
  EXPECT_GT(Torus3D(8, 8, 16).aggregate_capacity(),
            Torus3D(8, 8, 4).aggregate_capacity());
}

TEST(CostModel, GathervEqualsEquivalentAlltoallv) {
  Torus3D topo(4, 4, 2);
  RowMajorMapping map(32);
  SimComm comm(topo, map);
  std::vector<std::int64_t> bytes(32);
  Xoshiro256 rng(9);
  for (auto& b : bytes) b = rng.uniform_int(0, 10000);
  std::vector<Message> msgs;
  for (int r = 0; r < 32; ++r) msgs.push_back(Message{r, 5, bytes[r]});
  const TrafficReport g = comm.gatherv(bytes, 5);
  const TrafficReport a = comm.alltoallv(msgs);
  EXPECT_DOUBLE_EQ(g.modeled_time, a.modeled_time);
  EXPECT_EQ(g.hop_bytes, a.hop_bytes);
}

TEST(CostModel, SwitchedContentionUsesTotalBytesNotHopBytes) {
  // 64 disjoint 4 MiB transfers (every rank sends one, receives one):
  // per-rank serialization is ~4.2 ms, the fabric floor 256 MiB / 32 GB/s
  // = ~8.4 ms — contention binds, and the phase must be charged exactly
  // total_bytes / capacity, *identically* for a leaf-local (2-hop) and a
  // cross-core (4-hop) traffic pattern.
  SwitchedNetwork topo(64, 16);  // fist links: 1 GB/s, capacity 32 GB/s
  RowMajorMapping map(64);
  SimComm comm(topo, map);
  const std::int64_t sz = 4 << 20;
  std::vector<Message> near, far;
  for (int p = 0; p < 64; ++p) {
    near.push_back(Message{p, (p % 2 == 0) ? p + 1 : p - 1, sz});  // 2 hops
    far.push_back(Message{p, 63 - p, sz});                         // 4 hops
  }
  const TrafficReport rn = comm.alltoallv(near);
  const TrafficReport rf = comm.alltoallv(far);
  EXPECT_GT(rf.hop_bytes, rn.hop_bytes);
  const double floor = 64.0 * static_cast<double>(sz) /
                       topo.aggregate_capacity();
  EXPECT_DOUBLE_EQ(rn.modeled_time, floor);
  EXPECT_DOUBLE_EQ(rf.modeled_time, floor);
}

}  // namespace
}  // namespace stormtrack
