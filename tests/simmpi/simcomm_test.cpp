#include "simmpi/simcomm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "simmpi/spmd.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

class SimCommTorus : public ::testing::Test {
 protected:
  Torus3D topo_{4, 4, 4, LinkParams{1e-6, 1e-7, 1e8}};
  RowMajorMapping map_{64};
  SimComm comm_{topo_, map_};
};

TEST_F(SimCommTorus, EmptyPhaseCostsNothing) {
  const TrafficReport r = comm_.alltoallv({});
  EXPECT_EQ(r.total_bytes, 0);
  EXPECT_EQ(r.modeled_time, 0.0);
  EXPECT_EQ(r.num_messages, 0);
}

TEST_F(SimCommTorus, SelfMessagesAreLocal) {
  const std::array<Message, 1> msgs{Message{3, 3, 1000}};
  const TrafficReport r = comm_.alltoallv(msgs);
  EXPECT_EQ(r.total_bytes, 0);
  EXPECT_EQ(r.local_bytes, 1000);
  EXPECT_EQ(r.modeled_time, 0.0);
  EXPECT_EQ(r.hop_bytes, 0);
}

TEST_F(SimCommTorus, SingleMessageTimeMatchesPairModel) {
  const int h = comm_.hops(0, 5);
  const std::array<Message, 1> msgs{Message{0, 5, 4096}};
  const TrafficReport r = comm_.alltoallv(msgs);
  EXPECT_DOUBLE_EQ(r.modeled_time, topo_.pair_time(h, 4096));
  EXPECT_EQ(r.hop_bytes, 4096 * h);
  EXPECT_EQ(r.max_hops, h);
}

TEST_F(SimCommTorus, SameSenderSerializes) {
  // Single-port model: one rank's sends serialize.
  const std::array<Message, 2> msgs{Message{0, 1, 1000},
                                    Message{0, 2, 500000}};
  const TrafficReport r = comm_.alltoallv(msgs);
  const double expected = topo_.pair_time(comm_.hops(0, 1), 1000) +
                          topo_.pair_time(comm_.hops(0, 2), 500000);
  EXPECT_DOUBLE_EQ(r.modeled_time, expected);
}

TEST_F(SimCommTorus, IndependentPairsOverlap) {
  // Disjoint endpoint sets: transfers overlap, phase = slowest pair.
  const std::array<Message, 2> msgs{Message{0, 1, 1000},
                                    Message{2, 3, 500000}};
  const TrafficReport r = comm_.alltoallv(msgs);
  EXPECT_DOUBLE_EQ(r.modeled_time,
                   topo_.pair_time(comm_.hops(2, 3), 500000));
}

TEST_F(SimCommTorus, ReceiverSerializesToo) {
  // Many senders into one receiver: the receiver's drain time binds.
  std::vector<Message> msgs;
  for (int s = 1; s <= 8; ++s) msgs.push_back(Message{s, 0, 100000});
  const TrafficReport r = comm_.alltoallv(msgs);
  double recv_sum = 0.0;
  for (int s = 1; s <= 8; ++s)
    recv_sum += topo_.pair_time(comm_.hops(s, 0), 100000);
  EXPECT_DOUBLE_EQ(r.modeled_time, recv_sum);
}

TEST_F(SimCommTorus, ContentionFloorBindsForDiffuseTraffic) {
  // Many disjoint long-haul pairs: per-rank serialization is one message
  // each, but the fabric must carry bytes × hops; the contention floor
  // dominates when hop_bytes / capacity exceeds any single pair time.
  std::vector<Message> msgs;
  for (int s = 0; s < 32; ++s)
    msgs.push_back(Message{s, 32 + s, 1 << 20});  // 1 MiB each
  const TrafficReport r = comm_.alltoallv(msgs);
  const double contention = static_cast<double>(r.hop_bytes) /
                            topo_.aggregate_capacity();
  double worst_pair = 0.0;
  for (const Message& m : msgs)
    worst_pair = std::max(worst_pair,
                          topo_.pair_time(comm_.hops(m.src, m.dst), m.bytes));
  EXPECT_DOUBLE_EQ(r.modeled_time, std::max(worst_pair, contention));
}

TEST_F(SimCommTorus, ZeroByteMessagesIgnored) {
  const std::array<Message, 1> msgs{Message{0, 1, 0}};
  const TrafficReport r = comm_.alltoallv(msgs);
  EXPECT_EQ(r.num_messages, 0);
  EXPECT_EQ(r.modeled_time, 0.0);
}

TEST_F(SimCommTorus, NegativeBytesThrow) {
  const std::array<Message, 1> msgs{Message{0, 1, -5}};
  EXPECT_THROW((void)comm_.alltoallv(msgs), CheckError);
}

TEST_F(SimCommTorus, RankRangeChecked) {
  const std::array<Message, 1> msgs{Message{0, 64, 10}};
  EXPECT_THROW((void)comm_.alltoallv(msgs), CheckError);
}

TEST_F(SimCommTorus, GathervSumsToRoot) {
  std::vector<std::int64_t> bytes(64, 100);
  bytes[0] = 0;  // root sends nothing to itself anyway
  const TrafficReport r = comm_.gatherv(bytes, 0);
  EXPECT_EQ(r.total_bytes, 6300);
  EXPECT_GT(r.modeled_time, 0.0);
}

TEST_F(SimCommTorus, BcastLogRounds) {
  const TrafficReport r = comm_.bcast(1024, 0);
  // Binomial tree on 64 ranks: 63 messages over 6 rounds.
  EXPECT_EQ(r.num_messages, 63);
  EXPECT_GT(r.modeled_time, 0.0);
  const TrafficReport none = comm_.bcast(0, 0);
  EXPECT_EQ(none.num_messages, 0);
}

TEST(SimCommSwitched, SenderSerializes) {
  SwitchedNetwork topo(16, 4, LinkParams{1e-6, 1e-7, 1e8});
  RowMajorMapping map(16);
  SimComm comm(topo, map);
  // Same sender, two messages: switched networks add the times (§IV-C-1).
  const std::array<Message, 2> msgs{Message{0, 1, 1000},
                                    Message{0, 5, 1000}};
  const TrafficReport r = comm.alltoallv(msgs);
  const double expected =
      topo.pair_time(2, 1000) + topo.pair_time(4, 1000);
  EXPECT_DOUBLE_EQ(r.modeled_time, expected);
}

TEST(SimCommSwitched, IndependentSendersTakeMax) {
  SwitchedNetwork topo(16, 4, LinkParams{1e-6, 1e-7, 1e8});
  RowMajorMapping map(16);
  SimComm comm(topo, map);
  const std::array<Message, 2> msgs{Message{0, 1, 1000},
                                    Message{2, 3, 90000}};
  const TrafficReport r = comm.alltoallv(msgs);
  EXPECT_DOUBLE_EQ(r.modeled_time, topo.pair_time(2, 90000));
}

TEST(TrafficReport, AccumulatesSequentially) {
  TrafficReport a;
  a.modeled_time = 1.0;
  a.total_bytes = 10;
  a.hop_bytes = 20;
  a.max_hops = 2;
  TrafficReport b;
  b.modeled_time = 0.5;
  b.total_bytes = 5;
  b.hop_bytes = 30;
  b.max_hops = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.modeled_time, 1.5);
  EXPECT_EQ(a.total_bytes, 15);
  EXPECT_EQ(a.hop_bytes, 50);
  EXPECT_EQ(a.max_hops, 4);
}

TEST(TrafficReport, AvgHopsPerByte) {
  TrafficReport r;
  EXPECT_DOUBLE_EQ(r.avg_hops_per_byte(), 0.0);
  r.total_bytes = 100;
  r.hop_bytes = 250;
  EXPECT_DOUBLE_EQ(r.avg_hops_per_byte(), 2.5);
}

TEST(TypedExchange, DeliversPayloadsInSourceOrder) {
  Torus3D topo(2, 2, 2);
  RowMajorMapping map(8);
  SimComm comm(topo, map);
  std::vector<TypedMessage<int>> msgs;
  msgs.push_back({3, 1, {7, 8}});
  msgs.push_back({0, 1, {1, 2, 3}});
  msgs.push_back({0, 2, {9}});
  const ExchangeResult<int> ex = exchange_payloads(comm, std::move(msgs));
  const auto to1 = ex.received_by(1);
  ASSERT_EQ(to1.size(), 2u);
  EXPECT_EQ(to1[0].src, 0);  // ascending source order
  EXPECT_EQ(to1[0].payload, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(to1[1].src, 3);
  EXPECT_EQ(ex.traffic.total_bytes,
            static_cast<std::int64_t>(6 * sizeof(int)));
  // Grouped-contiguous layout: destinations ascending, one group each.
  ASSERT_EQ(ex.groups.size(), 2u);
  EXPECT_EQ(ex.groups[0].dst, 1);
  EXPECT_EQ(ex.groups[1].dst, 2);
  ASSERT_EQ(ex.messages.size(), 3u);
  EXPECT_EQ(ex.messages[2].dst, 2);
  EXPECT_EQ(ex.messages[2].payload, (std::vector<int>{9}));
  EXPECT_TRUE(ex.received_by(5).empty());
}

TEST(Spmd, CollectsResultsInRankOrder) {
  const auto out =
      run_spmd<int>(4, [](int rank) { return rank * rank; });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 4, 9}));
}

TEST(Spmd, VoidOverloadRunsAllRanks) {
  int sum = 0;
  run_spmd(5, [&](int rank) { sum += rank; });
  EXPECT_EQ(sum, 10);
}

}  // namespace
}  // namespace stormtrack
