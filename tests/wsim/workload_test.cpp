// Unit tests for the pluggable nest-workload layer: the registry, the
// particle workload's conservation/determinism invariants, and the opaque
// checkpoint blobs of both shipped implementations. The coupled-engine and
// golden bit-identity coverage lives in tests/core/.

#include "wsim/workload.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "exec/executor.hpp"
#include "redist/redistributor.hpp"
#include "util/check.hpp"
#include "util/metrics.hpp"
#include "wsim/particles.hpp"
#include "wsim/weather.hpp"
#include "wsim/workload_field.hpp"

namespace stormtrack {
namespace {

constexpr std::int64_t kIdStride = std::int64_t{1} << 20;

NestSpec spec(int id, Rect region) {
  NestSpec s;
  s.id = id;
  s.region = region;
  s.shape = nest_shape_for(region);
  return s;
}

std::uint64_t fingerprint_of(const INestWorkload& w) {
  Fingerprint fp;
  w.add_state_fingerprint(fp);
  return fp.value();
}

/// A real machine + weather + redistributor backing every WorkloadEnv, so
/// the workload calls run against the same components the engine lends.
class WorkloadLayerTest : public ::testing::Test {
 protected:
  WorkloadLayerTest()
      : machine_(Machine::bluegene(256)),
        weather_(WeatherConfig::mumbai_2005(), 7),
        redist_(machine_.comm()) {}

  WorkloadEnv env(TrafficReport* movement = nullptr,
                  Executor* executor = nullptr) {
    WorkloadEnv e;
    e.comm = &machine_.comm();
    e.grid_px = machine_.grid_px();
    e.weather = &weather_;
    e.redistributor = &redist_;
    e.metrics = &metrics_;
    e.executor = executor;
    e.data_movement = movement;
    return e;
  }

  Machine machine_;
  WeatherModel weather_;
  Redistributor redist_;
  MetricsRegistry metrics_;
};

// ------------------------------------------------------------- registry

TEST(WorkloadRegistry, BuiltinsAreRegisteredAscending) {
  const WorkloadRegistry& reg = WorkloadRegistry::global();
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "field");
  EXPECT_EQ(names[1], "particles");
  EXPECT_TRUE(reg.contains("field"));
  EXPECT_TRUE(reg.contains("particles"));
  EXPECT_FALSE(reg.contains("voxels"));
}

TEST(WorkloadRegistry, CreateResolvesNamesAndRejectsUnknown) {
  const WorkloadRegistry& reg = WorkloadRegistry::global();
  const WorkloadParams params;
  EXPECT_EQ(reg.create("field", params)->name(), "field");
  EXPECT_EQ(reg.create("particles", params)->name(), "particles");
  try {
    (void)reg.create("voxels", params);
    FAIL() << "unknown workload must throw";
  } catch (const CheckError& e) {
    // The error is the discovery surface for typos: it must list what IS
    // registered.
    EXPECT_NE(std::string(e.what()).find("field"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("particles"), std::string::npos);
  }
}

TEST(WorkloadRegistry, DuplicateRegistrationIsRefused) {
  EXPECT_THROW(WorkloadRegistry::global().register_workload(
                   "field",
                   [](const WorkloadParams&) {
                     return std::unique_ptr<INestWorkload>();
                   }),
               CheckError);
}

// ----------------------------------------------------------------- wind

TEST_F(WorkloadLayerTest, WindIsADeterministicFunctionOfWeatherState) {
  const ParticleParams params;
  const Wind a = wind_at(weather_, params, 41.5, 77.25);
  const Wind b = wind_at(weather_, params, 41.5, 77.25);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  // Far from every cloud system the vortex envelopes vanish and only the
  // background monsoon drift remains.
  const Wind far = wind_at(weather_, params, -1e6, -1e6);
  EXPECT_DOUBLE_EQ(far.u, params.drift_u);
  EXPECT_DOUBLE_EQ(far.v, params.drift_v);
}

// ------------------------------------------------------------ particles

TEST_F(WorkloadLayerTest, SeededParticlesAreInBoundsWithLatticeIds) {
  ParticleParams params;
  params.particles_per_nest = 64;
  ParticleWorkload w(params);
  w.insert_nest(spec(3, Rect{10, 12, 8, 6}), env());

  const std::vector<Particle>& ps = w.particles(3);
  ASSERT_EQ(ps.size(), 64u);
  EXPECT_EQ(w.total_particles(), 64);
  const NestShape shape = nest_shape_for(Rect{10, 12, 8, 6});
  for (std::size_t k = 0; k < ps.size(); ++k) {
    EXPECT_EQ(ps[k].id, 3 * kIdStride + static_cast<std::int64_t>(k));
    EXPECT_GE(ps[k].x, 0.0);
    EXPECT_LT(ps[k].x, shape.nx);
    EXPECT_GE(ps[k].y, 0.0);
    EXPECT_LT(ps[k].y, shape.ny);
  }

  // Seeding is a pure function of the spec: a second instance lands on the
  // same fingerprint.
  ParticleWorkload w2(params);
  w2.insert_nest(spec(3, Rect{10, 12, 8, 6}), env());
  EXPECT_EQ(fingerprint_of(w), fingerprint_of(w2));
}

TEST_F(WorkloadLayerTest, InsertValidatesSpecAndDuplicates) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{0, 0, 6, 6}), env());
  EXPECT_THROW(w.insert_nest(spec(1, Rect{0, 0, 6, 6}), env()), CheckError);
  EXPECT_THROW(w.insert_nest(spec(2, Rect{0, 0, 0, 6}), env()), CheckError);
  EXPECT_THROW((void)w.nest_spec(99), CheckError);
  EXPECT_THROW((void)w.particles(99), CheckError);
  EXPECT_THROW(ParticleWorkload(ParticleParams{.particles_per_nest = 0}),
               CheckError);
}

TEST_F(WorkloadLayerTest, NestIdsAreAscendingAndDeleteDrops) {
  ParticleWorkload w;
  w.insert_nest(spec(5, Rect{0, 0, 4, 4}), env());
  w.insert_nest(spec(2, Rect{8, 8, 4, 4}), env());
  EXPECT_EQ(w.nest_ids(), (std::vector<int>{2, 5}));
  EXPECT_EQ(w.num_nests(), 2u);
  w.delete_nest(5);
  EXPECT_EQ(w.nest_ids(), (std::vector<int>{2}));
  w.delete_nest(5);  // absent: no-op
  EXPECT_EQ(w.total_particles(), 256);
}

TEST_F(WorkloadLayerTest, MoveNestConservesCountAndTrajectoryFingerprint) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{10, 12, 8, 6}), env());
  const std::uint64_t before = fingerprint_of(w);

  // A disjoint rectangle forces every particle to change owner: ownership
  // is derived from position + rectangle, so the trajectories themselves —
  // and therefore the state fingerprint — must come through the exchange
  // untouched.
  TrafficReport movement;
  w.move_nest(1, Rect{0, 0, 4, 4}, Rect{8, 8, 4, 4}, env(&movement));

  EXPECT_EQ(w.total_particles(), 256);
  EXPECT_EQ(fingerprint_of(w), before);
  EXPECT_GT(movement.total_bytes, 0);
  EXPECT_EQ(metrics_.get("workload.particles_moved_on_realloc").count, 256);
}

TEST_F(WorkloadLayerTest, MoveWithinSameRectangleMovesNothing) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{10, 12, 8, 6}), env());
  TrafficReport movement;
  w.move_nest(1, Rect{0, 0, 4, 4}, Rect{0, 0, 4, 4}, env(&movement));
  EXPECT_EQ(movement.total_bytes, 0);
  EXPECT_EQ(metrics_.get("workload.particles_moved_on_realloc").count, 0);
}

TEST_F(WorkloadLayerTest, IntegrateConservesCountAndAdvancesState) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{30, 30, 8, 8}), env());
  const std::uint64_t seeded = fingerprint_of(w);

  const TrafficReport traffic = w.integrate(1, Rect{0, 0, 4, 4}, 3, env());
  EXPECT_EQ(w.total_particles(), 256);
  EXPECT_NE(fingerprint_of(w), seeded) << "advection must move particles";
  EXPECT_GE(traffic.total_bytes, 0);
  EXPECT_EQ(metrics_.get("workload.advected_particle_steps").count, 3 * 256);
}

TEST_F(WorkloadLayerTest, ParallelIntegrationIsBitIdenticalToSerial) {
  ParticleWorkload serial, threaded;
  serial.insert_nest(spec(1, Rect{30, 30, 8, 8}), env());
  threaded.insert_nest(spec(1, Rect{30, 30, 8, 8}), env());

  ThreadPoolExecutor pool(8);
  for (int i = 0; i < 4; ++i) {
    (void)serial.integrate(1, Rect{0, 0, 4, 4}, 3, env());
    (void)threaded.integrate(1, Rect{0, 0, 4, 4}, 3, env(nullptr, &pool));
    EXPECT_EQ(fingerprint_of(serial), fingerprint_of(threaded))
        << "sub-step block " << i;
  }
}

TEST_F(WorkloadLayerTest, ParticleBlobRoundTripsThroughImport) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{10, 12, 8, 6}), env());
  w.insert_nest(spec(4, Rect{40, 20, 6, 6}), env());
  (void)w.integrate(1, Rect{0, 0, 4, 4}, 2, env());

  const std::vector<std::byte> blob = w.export_state();
  ParticleWorkload restored;
  restored.import_state(blob);
  EXPECT_EQ(fingerprint_of(restored), fingerprint_of(w));
  EXPECT_EQ(restored.total_particles(), w.total_particles());
  EXPECT_EQ(restored.export_state(), blob);
}

TEST_F(WorkloadLayerTest, ParticleImportRejectsGarbage) {
  ParticleWorkload w;
  const std::vector<std::byte> garbage(7, std::byte{0x5a});
  EXPECT_THROW(w.import_state(garbage), CheckError);

  // A truncated valid blob must be rejected too, not silently half-read.
  w.insert_nest(spec(1, Rect{0, 0, 6, 6}), env());
  std::vector<std::byte> truncated = w.export_state();
  truncated.resize(truncated.size() - 8);
  ParticleWorkload fresh;
  EXPECT_THROW(fresh.import_state(truncated), CheckError);
}

TEST_F(WorkloadLayerTest, ReinitReseedsFromTheSpec) {
  ParticleWorkload w;
  w.insert_nest(spec(1, Rect{30, 30, 8, 8}), env());
  const std::uint64_t seeded = fingerprint_of(w);
  (void)w.integrate(1, Rect{0, 0, 4, 4}, 3, env());
  ASSERT_NE(fingerprint_of(w), seeded);
  w.reinit_nest(1, env());
  EXPECT_EQ(fingerprint_of(w), seeded);
  EXPECT_EQ(w.total_particles(), 256);
}

// ----------------------------------------------------------- field blob

TEST_F(WorkloadLayerTest, FieldBlobRoundTripsThroughImport) {
  FieldWorkload w;
  w.insert_nest(spec(2, Rect{20, 20, 6, 6}), env());
  (void)w.integrate(2, Rect{0, 0, 4, 4}, 2, env());

  const std::vector<std::byte> blob = w.export_state();
  FieldWorkload restored;
  restored.import_state(blob);
  EXPECT_EQ(fingerprint_of(restored), fingerprint_of(w));
  EXPECT_EQ(restored.export_state(), blob);

  FieldWorkload fresh;
  const std::vector<std::byte> garbage(5, std::byte{0xff});
  EXPECT_THROW(fresh.import_state(garbage), CheckError);
}

}  // namespace
}  // namespace stormtrack
