/// Randomized property sweep over the synthetic weather generator: the
/// invariants the PDA pipeline depends on must hold for any seed.

#include <gtest/gtest.h>

#include "wsim/weather.hpp"

namespace stormtrack {
namespace {

class WeatherSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static WeatherConfig config() {
    WeatherConfig cfg = WeatherConfig::mumbai_2005();
    cfg.domain.resolution_km = 24.0;
    return cfg;
  }
};

TEST_P(WeatherSweep, FieldsStayPhysical) {
  WeatherModel m(config(), GetParam());
  for (int step = 0; step < 30; ++step) {
    m.step();
    for (double q : m.qcloud().data()) {
      EXPECT_GE(q, 0.0);
      EXPECT_LT(q, 1.0);  // mixing ratios are tiny (kg/kg)
    }
    for (double o : m.olr().data()) {
      EXPECT_GE(o, m.config().olr_clear - m.config().olr_depression - 1e-9);
      EXPECT_LE(o, m.config().olr_clear + 1e-9);
    }
  }
}

TEST_P(WeatherSweep, OlrAntiCorrelatesWithQcloud) {
  WeatherModel m(config(), GetParam() + 10);
  for (int step = 0; step < 5; ++step) m.step();
  // Wherever OLR is at the paper threshold or below, cloud water must be
  // substantial; clear-sky cells must have near-background QCLOUD.
  const auto& q = m.qcloud();
  const auto& o = m.olr();
  for (int y = 0; y < q.height(); ++y) {
    for (int x = 0; x < q.width(); ++x) {
      if (o(x, y) <= 200.0) {
        EXPECT_GT(q(x, y), 2.0 * m.config().qcloud_clear);
      }
      if (o(x, y) >= m.config().olr_clear - 1e-9) {
        EXPECT_LE(q(x, y), m.config().qcloud_clear + 1e-12);
      }
    }
  }
}

TEST_P(WeatherSweep, CloudySubdomainCountsStayModest) {
  // The paper gathers < 200 elements from 1024 files at most steps; the
  // generator must not blanket the domain in cloud.
  WeatherModel m(config(), GetParam() + 20);
  for (int step = 0; step < 20; ++step) {
    m.step();
    int below = 0;
    for (double v : m.olr().data())
      if (v <= 200.0) ++below;
    EXPECT_LT(below, static_cast<int>(m.olr().size()) / 3) << "step "
                                                           << step;
  }
}

TEST_P(WeatherSweep, SystemsDriftOverTime) {
  WeatherModel m(config(), GetParam() + 30);
  ASSERT_FALSE(m.systems().empty());
  const double x0 = m.systems().front().cx;
  for (int step = 0; step < 10; ++step) m.step();
  bool any_moved = false;
  for (const CloudSystem& s : m.systems())
    any_moved |= std::abs(s.cx - x0) > 1.0;
  EXPECT_TRUE(any_moved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeatherSweep,
                         ::testing::Values(100u, 200u, 300u, 400u));

}  // namespace
}  // namespace stormtrack
