#include "wsim/nest.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(NestField, ShapeIsRatioTimesRegion) {
  Grid2D<double> parent(100, 80, 1.0);
  NestField nest(parent, Rect{10, 10, 20, 15});
  EXPECT_EQ(nest.shape().nx, 60);
  EXPECT_EQ(nest.shape().ny, 45);
  EXPECT_EQ(nest.ratio(), 3);
}

TEST(NestField, ConstantFieldInterpolatesConstant) {
  Grid2D<double> parent(50, 50, 7.5);
  NestField nest(parent, Rect{5, 5, 10, 10});
  for (double v : nest.data().data()) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(NestField, LinearFieldInterpolatesExactlyInInterior) {
  // Bilinear interpolation reproduces affine fields away from clamping.
  Grid2D<double> parent(60, 60);
  for (int y = 0; y < 60; ++y)
    for (int x = 0; x < 60; ++x) parent(x, y) = 2.0 * x + 3.0 * y;
  NestField nest(parent, Rect{10, 10, 20, 20});
  const auto& d = nest.data();
  for (int fy = 3; fy < d.height() - 3; ++fy) {
    for (int fx = 3; fx < d.width() - 3; ++fx) {
      const double px = 10 + (fx + 0.5) / 3.0 - 0.5;
      const double py = 10 + (fy + 0.5) / 3.0 - 0.5;
      EXPECT_NEAR(d(fx, fy), 2.0 * px + 3.0 * py, 1e-9);
    }
  }
}

TEST(NestField, ValuesBoundedByParentRange) {
  // Bilinear interpolation cannot overshoot the parent min/max.
  Grid2D<double> parent(40, 40);
  for (int y = 0; y < 40; ++y)
    for (int x = 0; x < 40; ++x)
      parent(x, y) = ((x ^ y) & 1) ? 0.0 : 10.0;
  NestField nest(parent, Rect{2, 2, 30, 30});
  for (double v : nest.data().data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(NestField, RegionMustFitParent) {
  Grid2D<double> parent(20, 20);
  EXPECT_THROW(NestField(parent, Rect{15, 15, 10, 10}), CheckError);
  EXPECT_THROW(NestField(parent, Rect{0, 0, 0, 5}), CheckError);
}

TEST(NestField, UnitRatioCopiesRegion) {
  Grid2D<double> parent(20, 20);
  for (int y = 0; y < 20; ++y)
    for (int x = 0; x < 20; ++x) parent(x, y) = y * 20.0 + x;
  NestField nest(parent, Rect{3, 4, 5, 6}, 1);
  for (int y = 0; y < 6; ++y)
    for (int x = 0; x < 5; ++x)
      EXPECT_DOUBLE_EQ(nest.data()(x, y), parent(3 + x, 4 + y));
}

TEST(NestShapeFor, MatchesRefinement) {
  const NestShape s = nest_shape_for(Rect{0, 0, 67, 116});
  EXPECT_EQ(s.nx, 201);
  EXPECT_EQ(s.ny, 348);
}

}  // namespace
}  // namespace stormtrack
