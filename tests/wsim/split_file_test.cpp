#include "wsim/split_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/check.hpp"

namespace stormtrack {
namespace {

WeatherModel small_model() {
  WeatherConfig cfg = WeatherConfig::mumbai_2005();
  cfg.domain.resolution_km = 48.0;  // coarse grid for fast tests
  return WeatherModel(cfg, 21);
}

TEST(SplitFile, OneFilePerRank) {
  const WeatherModel m = small_model();
  const auto files = write_split_files(m, 8, 4);
  ASSERT_EQ(files.size(), 32u);
  for (int r = 0; r < 32; ++r) {
    EXPECT_EQ(files[r].rank, r);
    EXPECT_EQ(files[r].grid_px, 8);
  }
}

TEST(SplitFile, SubdomainsTileTheDomain) {
  const WeatherModel m = small_model();
  const auto files = write_split_files(m, 8, 4);
  std::int64_t area = 0;
  for (const SplitFile& f : files) {
    area += f.subdomain.area();
    EXPECT_EQ(f.qcloud.width(), f.subdomain.w);
    EXPECT_EQ(f.olr.height(), f.subdomain.h);
  }
  EXPECT_EQ(area, static_cast<std::int64_t>(m.qcloud().width()) *
                      m.qcloud().height());
}

TEST(SplitFile, TileValuesMatchGlobalField) {
  const WeatherModel m = small_model();
  const auto files = write_split_files(m, 4, 4);
  for (const SplitFile& f : files) {
    for (int y = 0; y < f.subdomain.h; ++y)
      for (int x = 0; x < f.subdomain.w; ++x)
        ASSERT_DOUBLE_EQ(f.qcloud(x, y),
                         m.qcloud()(f.subdomain.x + x, f.subdomain.y + y));
  }
}

TEST(SplitFile, FileGridPosition) {
  const WeatherModel m = small_model();
  const auto files = write_split_files(m, 8, 4);
  EXPECT_EQ(files[0].file_x(), 0);
  EXPECT_EQ(files[0].file_y(), 0);
  EXPECT_EQ(files[9].file_x(), 1);
  EXPECT_EQ(files[9].file_y(), 1);
}

TEST(SplitFile, DiskRoundTrip) {
  const WeatherModel m = small_model();
  const auto files = write_split_files(m, 4, 2);
  const auto dir = std::filesystem::temp_directory_path() /
                   "stormtrack_splitfile_test";
  std::filesystem::remove_all(dir);
  for (const SplitFile& f : files) save_split_file(f, dir);
  for (const SplitFile& f : files) {
    const SplitFile loaded = load_split_file(dir, f.rank);
    EXPECT_EQ(loaded.rank, f.rank);
    EXPECT_EQ(loaded.grid_px, f.grid_px);
    EXPECT_EQ(loaded.subdomain, f.subdomain);
    EXPECT_EQ(loaded.qcloud, f.qcloud);
    EXPECT_EQ(loaded.olr, f.olr);
  }
  std::filesystem::remove_all(dir);
}

TEST(SplitFile, MissingFileThrows) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "stormtrack_splitfile_missing";
  std::filesystem::remove_all(dir);
  EXPECT_THROW((void)load_split_file(dir, 0), CheckError);
}

TEST(SplitFile, BadGridThrows) {
  const WeatherModel m = small_model();
  EXPECT_THROW((void)write_split_files(m, 0, 4), CheckError);
}

}  // namespace
}  // namespace stormtrack
