#include "wsim/weather.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace stormtrack {
namespace {

TEST(GeoDomain, IndianRegionAt12km) {
  const GeoDomain d;  // 60–120°E, 5–40°N, 12 km
  EXPECT_GT(d.nx(), 400);
  EXPECT_LT(d.nx(), 560);
  EXPECT_GT(d.ny(), 280);
  EXPECT_LT(d.ny(), 360);
}

TEST(GeoDomain, FinerResolutionMorePoints) {
  GeoDomain coarse;
  GeoDomain fine;
  fine.resolution_km = 4.0;
  EXPECT_NEAR(static_cast<double>(fine.nx()) / coarse.nx(), 3.0, 0.05);
}

TEST(WeatherModel, StartsWithMinimumSystems) {
  const WeatherConfig cfg = WeatherConfig::mumbai_2005();
  WeatherModel m(cfg, 1);
  EXPECT_GE(static_cast<int>(m.systems().size()), cfg.min_systems);
  EXPECT_EQ(m.time_step(), 0);
}

TEST(WeatherModel, PopulationStaysWithinBounds) {
  const WeatherConfig cfg = WeatherConfig::mumbai_2005();
  WeatherModel m(cfg, 7);
  for (int i = 0; i < 120; ++i) {
    m.step();
    EXPECT_GE(static_cast<int>(m.systems().size()), cfg.min_systems);
    EXPECT_LE(static_cast<int>(m.systems().size()), cfg.max_systems);
  }
  EXPECT_EQ(m.time_step(), 120);
}

TEST(WeatherModel, OlrDepressedUnderCloud) {
  const WeatherConfig cfg = WeatherConfig::mumbai_2005();
  WeatherModel m(cfg, 3);
  for (int i = 0; i < 5; ++i) m.step();
  // At a system centre, OLR must be well below clear sky; QCLOUD high.
  const CloudSystem& s = m.systems().front();
  const int cx = std::clamp(static_cast<int>(s.cx), 0,
                            m.qcloud().width() - 1);
  const int cy = std::clamp(static_cast<int>(s.cy), 0,
                            m.qcloud().height() - 1);
  EXPECT_LT(m.olr()(cx, cy), cfg.olr_clear);
  EXPECT_GT(m.qcloud()(cx, cy), cfg.qcloud_clear);
}

TEST(WeatherModel, SomeRegionBelowPaperOlrThreshold) {
  WeatherModel m(WeatherConfig::mumbai_2005(), 11);
  for (int i = 0; i < 10; ++i) m.step();
  int below = 0;
  for (double v : m.olr().data())
    if (v <= 200.0) ++below;
  EXPECT_GT(below, 0);
  // ...but not the whole domain.
  EXPECT_LT(below, static_cast<int>(m.olr().size()) / 2);
}

TEST(WeatherModel, DeterministicBySeed) {
  WeatherModel a(WeatherConfig::mumbai_2005(), 42);
  WeatherModel b(WeatherConfig::mumbai_2005(), 42);
  for (int i = 0; i < 10; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.qcloud(), b.qcloud());
  EXPECT_EQ(a.olr(), b.olr());
}

TEST(WeatherModel, SystemsEvolveOverTime) {
  WeatherModel m(WeatherConfig::mumbai_2005(), 9);
  const Grid2D<double> before = m.qcloud();
  for (int i = 0; i < 8; ++i) m.step();
  EXPECT_NE(m.qcloud(), before);
}

}  // namespace
}  // namespace stormtrack
