#include "wsim/dynamics.hpp"

#include <gtest/gtest.h>

#include "redist/redistributor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

Grid2D<double> random_field(int nx, int ny, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Grid2D<double> f(nx, ny);
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) f(x, y) = rng.uniform(0.0, 1.0);
  return f;
}

TEST(Dynamics, ConstantFieldIsFixedPoint) {
  const Grid2D<double> f(20, 15, 3.7);
  const Grid2D<double> next = step_reference(f, DynamicsParams{});
  for (double v : next.data()) EXPECT_NEAR(v, 3.7, 1e-12);
}

TEST(Dynamics, PureDiffusionConservesMassWithNeumann) {
  // Zero advection + Neumann boundaries: total mass is invariant.
  DynamicsParams p;
  p.u = 0.0;
  p.v = 0.0;
  p.diffusion = 0.2;
  Grid2D<double> f = random_field(24, 18, 5);
  double before = 0.0;
  for (double v : f.data()) before += v;
  for (int s = 0; s < 10; ++s) f = step_reference(f, p);
  double after = 0.0;
  for (double v : f.data()) after += v;
  EXPECT_NEAR(after, before, 1e-9 * before);
}

TEST(Dynamics, DiffusionSmoothsExtremes) {
  DynamicsParams p;
  p.u = 0.0;
  p.v = 0.0;
  p.diffusion = 0.25;
  Grid2D<double> f(21, 21, 0.0);
  f(10, 10) = 100.0;
  for (int s = 0; s < 20; ++s) f = step_reference(f, p);
  EXPECT_LT(f(10, 10), 50.0);
  EXPECT_GT(f(9, 10), 0.0);
}

TEST(Dynamics, AdvectionMovesBlobDownwind) {
  DynamicsParams p;
  p.u = 1.0;
  p.v = 0.0;
  p.diffusion = 0.0;
  Grid2D<double> f(30, 5, 0.0);
  f(5, 2) = 10.0;
  for (int s = 0; s < 10; ++s) f = step_reference(f, p);
  // Pure unit upwind advection translates exactly.
  EXPECT_DOUBLE_EQ(f(15, 2), 10.0);
  EXPECT_DOUBLE_EQ(f(5, 2), 0.0);
}

TEST(Dynamics, MaximumPrincipleHolds) {
  // Upwind + FTCS within stability bounds never overshoots the initial
  // min/max under Neumann boundaries.
  Grid2D<double> f = random_field(32, 32, 11);
  const DynamicsParams p{0.5, -0.3, 0.05};
  for (int s = 0; s < 30; ++s) f = step_reference(f, p);
  for (double v : f.data()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Dynamics, UnstableParamsRejected) {
  const Grid2D<double> f(8, 8, 0.0);
  EXPECT_THROW((void)step_reference(f, DynamicsParams{1.5, 0.0, 0.1}),
               CheckError);
  EXPECT_THROW((void)step_reference(f, DynamicsParams{0.5, 0.0, 0.3}),
               CheckError);
  // Per-term fine, combined CFL violated.
  EXPECT_THROW((void)step_reference(f, DynamicsParams{0.8, 0.6, 0.1}),
               CheckError);
}

class DistributedDynamics : public ::testing::Test {
 protected:
  Torus3D topo_{8, 8, 4};
  RowMajorMapping map_{256};
  SimComm comm_{topo_, map_};
};

TEST_F(DistributedDynamics, MatchesSequentialReferenceExactly) {
  const NestShape nest{37, 29};
  Grid2D<double> distributed = random_field(nest.nx, nest.ny, 21);
  Grid2D<double> reference = distributed;
  const DynamicsParams p{0.5, 0.25, 0.05};
  const DistributedNestStepper stepper(comm_, nest, Rect{2, 3, 5, 4}, 16, p);
  for (int s = 0; s < 8; ++s) {
    (void)stepper.step(distributed);
    reference = step_reference(reference, p);
    ASSERT_EQ(distributed, reference) << "step " << s;
  }
}

TEST_F(DistributedDynamics, HaloTrafficAccounted) {
  const NestShape nest{64, 64};
  Grid2D<double> f = random_field(64, 64, 33);
  const DistributedNestStepper stepper(comm_, nest, Rect{0, 0, 4, 4}, 16);
  const TrafficReport t = stepper.step(f);
  EXPECT_GT(t.total_bytes, 0);
  EXPECT_GT(t.num_messages, 0);
  // 4x4 blocks: 2*4*3 shared edges, two messages each, 16 cells deep.
  EXPECT_EQ(t.num_messages, 48);
  EXPECT_EQ(t.total_bytes, 48 * 16 * 8);
}

TEST_F(DistributedDynamics, SingleProcessorNeedsNoHalo) {
  const NestShape nest{16, 16};
  Grid2D<double> f = random_field(16, 16, 44);
  const DistributedNestStepper stepper(comm_, nest, Rect{5, 5, 1, 1}, 16);
  const TrafficReport t = stepper.step(f);
  EXPECT_EQ(t.total_bytes, 0);
}

TEST_F(DistributedDynamics, StepAfterRedistributionStaysExact) {
  // The full nest life: step on the old rectangle, redistribute, keep
  // stepping on the new rectangle — always equal to the reference.
  const NestShape nest{45, 33};
  Grid2D<double> field = random_field(nest.nx, nest.ny, 55);
  Grid2D<double> reference = field;
  const DynamicsParams p{0.4, 0.4, 0.05};

  const Rect old_rect{0, 0, 6, 5};
  const Rect new_rect{9, 2, 4, 7};
  const DistributedNestStepper before(comm_, nest, old_rect, 16, p);
  for (int s = 0; s < 3; ++s) {
    (void)before.step(field);
    reference = step_reference(reference, p);
  }
  const Redistributor redist(comm_, 8);
  field = redist.redistribute_field(field, old_rect, new_rect, 16);
  const DistributedNestStepper after(comm_, nest, new_rect, 16, p);
  for (int s = 0; s < 3; ++s) {
    (void)after.step(field);
    reference = step_reference(reference, p);
  }
  EXPECT_EQ(field, reference);
}

TEST_F(DistributedDynamics, MoreProcsThanCellsStillExact) {
  const NestShape nest{5, 5};
  Grid2D<double> f = random_field(5, 5, 66);
  Grid2D<double> ref = f;
  const DistributedNestStepper stepper(comm_, nest, Rect{0, 0, 8, 8}, 16);
  (void)stepper.step(f);
  ref = step_reference(ref, DynamicsParams{});
  EXPECT_EQ(f, ref);
}

}  // namespace
}  // namespace stormtrack
