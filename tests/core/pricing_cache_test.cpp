/// The pipeline's memoized pricing is a pure optimization: cache-on and
/// cache-off runs are bit-identical (fingerprints, outcomes, and metric
/// totals), a steady trace actually produces hits, and the
/// pipeline.stable_subtrees metric surfaces the incremental structure.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "core/traces.hpp"
#include "redist/redistributor.hpp"

namespace stormtrack {
namespace {

Trace test_trace() {
  SyntheticTraceConfig cfg;
  cfg.num_events = 14;
  cfg.seed = 0xcac4e;
  return generate_synthetic_trace(cfg);
}

/// A trace whose active set never changes after the first event — the
/// diffusion steady state, where every pricing repeats.
Trace steady_trace(int events) {
  Trace t = test_trace();
  Trace steady;
  for (int i = 0; i < events; ++i) steady.push_back(t.front());
  return steady;
}

TEST(PricingCache, OnAndOffRunsAreBitIdentical) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);
  const Trace trace = test_trace();

  ManagerConfig cache_on;
  cache_on.pricing_cache = true;
  ManagerConfig cache_off;
  cache_off.pricing_cache = false;

  const TraceRunResult on = run_trace(machine, models.model, models.truth,
                                      "dynamic", trace, cache_on);
  const TraceRunResult off = run_trace(machine, models.model, models.truth,
                                       "dynamic", trace, cache_off);

  EXPECT_EQ(on.final_state_fingerprint, off.final_state_fingerprint);
  ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
  for (std::size_t i = 0; i < on.outcomes.size(); ++i) {
    EXPECT_EQ(on.outcomes[i].chosen, off.outcomes[i].chosen) << i;
    EXPECT_EQ(on.outcomes[i].committed.predicted_redist,
              off.outcomes[i].committed.predicted_redist)
        << i;
    EXPECT_EQ(on.outcomes[i].traffic.hop_bytes,
              off.outcomes[i].traffic.hop_bytes)
        << i;
    EXPECT_EQ(on.outcomes[i].overlap_fraction,
              off.outcomes[i].overlap_fraction)
        << i;
  }
  // Same pricing totals too: served and computed queries count alike.
  EXPECT_EQ(on.metrics.get("pipeline.cost_queries").count,
            off.metrics.get("pipeline.cost_queries").count);
  EXPECT_EQ(on.metrics.get("pipeline.stable_subtrees").count,
            off.metrics.get("pipeline.stable_subtrees").count);
}

TEST(PricingCache, SteadyTraceServesRepeatsFromCache) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);
  const Trace trace = steady_trace(10);

  const RedistCounters before = redist_counters();
  const TraceRunResult r =
      run_trace(machine, models.model, models.truth, "diffusion", trace);
  const RedistCounters after = redist_counters();

  // Events 2..10 re-price the exact rectangles event 1 committed.
  EXPECT_GT(after.cost_cache_hits - before.cost_cache_hits, 0);
  // Hits + misses cover every pricing the pipeline reported.
  EXPECT_EQ((after.cost_cache_hits - before.cost_cache_hits) +
                (after.cost_cache_misses - before.cost_cache_misses),
            r.metrics.get("pipeline.cost_queries").count);
  // Steady state: retained nests' subtrees survive diffusion untouched.
  EXPECT_GT(r.metrics.get("pipeline.stable_subtrees").count, 0);
}

TEST(PricingCache, HotpathCounterInvariantHoldsWithCacheOn) {
  // The instrumentation contract (hotpath_instrumentation_test) must hold
  // with memoization enabled: every pricing, hit or miss, is a cost query.
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);
  const Trace trace = steady_trace(6);

  const RedistCounters before = redist_counters();
  const TraceRunResult r =
      run_trace(machine, models.model, models.truth, "dynamic", trace);
  const RedistCounters after = redist_counters();
  EXPECT_EQ(after.cost_queries - before.cost_queries,
            r.metrics.get("pipeline.cost_queries").count);
}

}  // namespace
}  // namespace stormtrack
