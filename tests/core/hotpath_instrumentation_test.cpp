/// Proof-by-counter that the adaptation hot path is allocation-free and
/// cached: candidate pricing must never materialize a Message vector
/// (plans are built only in the Redistribute stage), and the exec-model
/// memo cache must absorb >90% of predictions on the fig12 trace sweep.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "core/traces.hpp"
#include "redist/redistributor.hpp"
#include "sweep/sweep_runner.hpp"

namespace stormtrack {
namespace {

Trace fig12_trace() {
  SyntheticTraceConfig cfg;
  cfg.num_events = 12;
  cfg.seed = 0xf125;
  return generate_synthetic_trace(cfg);
}

TEST(HotPathInstrumentation, PricingMaterializesZeroMessageVectors) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);
  const Trace trace = fig12_trace();

  const RedistCounters before = redist_counters();
  const TraceRunResult r =
      run_trace(machine, models.model, models.truth, "dynamic", trace);
  const RedistCounters after = redist_counters();

  const std::int64_t expected_pricings =
      r.metrics.get("pipeline.cost_queries").count;
  const std::int64_t expected_plans =
      r.metrics.get("pipeline.redist_plans").count;
  ASSERT_GT(expected_pricings, 0);
  ASSERT_GT(expected_plans, 0);

  // Every candidate×retained-nest pair is priced exactly once (streaming)
  // and planned exactly once (Redistribute stage). If the pricing stages
  // still built plans, plans_built would come out 2× expected_plans.
  EXPECT_EQ(after.cost_queries - before.cost_queries, expected_pricings);
  EXPECT_EQ(after.plans_built - before.plans_built, expected_plans);
  // messages_materialized moves only with plans_built: bytes-per-plan
  // bookkeeping stays self-consistent.
  EXPECT_EQ(after.message_bytes_materialized -
                before.message_bytes_materialized,
            (after.messages_materialized - before.messages_materialized) *
                static_cast<std::int64_t>(sizeof(Message)));
}

TEST(HotPathInstrumentation, CostQueriesMatchRedistPlansPerPoint) {
  // The streaming pricing and the redistribute-stage planning must cover
  // the same (candidate, retained nest) pairs — same count, by metric.
  const ModelStack models;
  const Machine machine = Machine::bluegene(1024);
  const Trace trace = fig12_trace();
  const TraceRunResult r =
      run_trace(machine, models.model, models.truth, "diffusion", trace);
  EXPECT_EQ(r.metrics.get("pipeline.cost_queries").count,
            r.metrics.get("pipeline.redist_plans").count);
}

TEST(HotPathInstrumentation, ExecModelCacheHitRateAbove90OnFig12Sweep) {
  // The acceptance bar: >90% of ExecTimeModel::predict calls served from
  // the memo cache across the fig12 trace sweep. The workload is the
  // sweep-runner sharing pattern the cache targets: one ModelStack shared
  // by every case of the grid (both BG/L machines × all four registered
  // strategies), then the verification re-run — the same byte-identical
  // repeat the kill-and-resume CI lane performs — which re-prices every
  // case against the warm model. Within the first pass, cases already
  // share heavily (the scratch candidate and the nest weights are
  // identical across strategies); the verify pass is pure hits.
  const ModelStack models;
  SweepSpec spec;
  spec.traces.push_back({"fig12", fig12_trace()});
  spec.machines.push_back(sweep_bluegene(256));
  spec.machines.push_back(sweep_bluegene(1024));
  spec.strategies = {"scratch", "diffusion", "dynamic", "hysteresis"};
  const SweepRunner runner(models);

  models.model.clear_cache_stats();
  const std::vector<SweepCaseResult> first = runner.run(spec);
  const std::vector<SweepCaseResult> verify = runner.run(spec);

  // The re-run must be byte-identical (cached predictions included).
  ASSERT_EQ(first.size(), verify.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i].result.final_state_fingerprint,
              verify[i].result.final_state_fingerprint)
        << "case " << i;

  const ExecModelCacheStats stats = models.model.cache_stats();
  ASSERT_GT(stats.lookups, 0);
  EXPECT_GT(stats.hit_rate(), 0.9)
      << "lookups " << stats.lookups << " misses " << stats.misses;
}

}  // namespace
}  // namespace stormtrack
