/// Focused tests of the §IV-C dynamic selection logic across random traces.

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace stormtrack {
namespace {

class DynamicStrategyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DynamicStrategyTest() : machine_(Machine::bluegene(256)) {}
  ModelStack models_;
  Machine machine_;
};

TEST_P(DynamicStrategyTest, CommittedMetricsAreOneOfTheCandidates) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 10;
  cfg.seed = GetParam();
  const Trace trace = generate_synthetic_trace(cfg);
  const TraceRunResult r = run_trace(machine_, models_.model, models_.truth,
                                     "dynamic", trace);
  for (const StepOutcome& o : r.outcomes) {
    const CandidateMetrics& expect =
        o.chosen == "diffusion" ? o.diffusion : o.scratch;
    EXPECT_DOUBLE_EQ(o.committed.predicted_redist, expect.predicted_redist);
    EXPECT_DOUBLE_EQ(o.committed.predicted_exec, expect.predicted_exec);
    EXPECT_DOUBLE_EQ(o.committed.actual_redist, expect.actual_redist);
    EXPECT_DOUBLE_EQ(o.committed.actual_exec, expect.actual_exec);
  }
}

TEST_P(DynamicStrategyTest, AlwaysPicksSmallerPredictedTotal) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 10;
  cfg.seed = GetParam() + 1000;
  const Trace trace = generate_synthetic_trace(cfg);
  const TraceRunResult r = run_trace(machine_, models_.model, models_.truth,
                                     "dynamic", trace);
  for (const StepOutcome& o : r.outcomes) {
    EXPECT_LE(o.committed.predicted_total(),
              std::min(o.scratch.predicted_total(),
                       o.diffusion.predicted_total()) +
                  1e-12);
  }
}

TEST_P(DynamicStrategyTest, PredictionsAreInformative) {
  // Decisions based on the predictions must beat a coin flip against the
  // ground truth over a longer trace.
  SyntheticTraceConfig cfg;
  cfg.num_events = 30;
  cfg.seed = GetParam() + 2000;
  const Trace trace = generate_synthetic_trace(cfg);
  const TraceRunResult r = run_trace(machine_, models_.model, models_.truth,
                                     "dynamic", trace);
  int correct = 0, decided = 0;
  for (const StepOutcome& o : r.outcomes) {
    // Skip events where the two candidates are effectively tied in truth.
    const double da = o.diffusion.actual_total();
    const double sa = o.scratch.actual_total();
    if (std::abs(da - sa) < 1e-3 * std::max(da, sa)) continue;
    ++decided;
    const bool tree_best = da < sa;
    if ((o.chosen == "diffusion") == tree_best) ++correct;
  }
  if (decided >= 8)
    EXPECT_GT(static_cast<double>(correct) / decided, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicStrategyTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(DynamicStrategyAggregates, TracksBestCandidatePerEvent) {
  // Dynamic's committed actual total per event never exceeds the worse
  // candidate's actual total (it commits one of the two).
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  SyntheticTraceConfig cfg;
  cfg.num_events = 15;
  cfg.seed = 99;
  const Trace trace = generate_synthetic_trace(cfg);
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "dynamic", trace);
  for (const StepOutcome& o : r.outcomes) {
    EXPECT_LE(o.committed.actual_total(),
              std::max(o.scratch.actual_total(),
                       o.diffusion.actual_total()) +
                  1e-12);
  }
}

}  // namespace
}  // namespace stormtrack
