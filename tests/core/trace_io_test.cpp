#include "core/trace_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(TraceIo, RoundTripSyntheticTrace) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 12;
  cfg.seed = 77;
  const Trace original = generate_synthetic_trace(cfg);

  std::stringstream ss;
  save_trace(original, ss);
  const Trace loaded = load_trace(ss);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t e = 0; e < original.size(); ++e) {
    ASSERT_EQ(loaded[e].size(), original[e].size()) << "event " << e;
    for (std::size_t i = 0; i < original[e].size(); ++i) {
      EXPECT_EQ(loaded[e][i].id, original[e][i].id);
      EXPECT_EQ(loaded[e][i].region, original[e][i].region);
      EXPECT_EQ(loaded[e][i].shape.nx, original[e][i].shape.nx);
      EXPECT_EQ(loaded[e][i].shape.ny, original[e][i].shape.ny);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 4;
  const Trace original = generate_synthetic_trace(cfg);
  const auto path = std::filesystem::temp_directory_path() /
                    "stormtrack_trace_test" / "t.trace";
  save_trace(original, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::filesystem::remove_all(path.parent_path());
}

TEST(TraceIo, EmptyTrace) {
  std::stringstream ss;
  save_trace(Trace{}, ss);
  EXPECT_TRUE(load_trace(ss).empty());
}

TEST(TraceIo, EmptyEventPreserved) {
  Trace t(2);
  t[0].push_back(NestSpec{1, Rect{0, 0, 10, 10}, NestShape{30, 30}});
  // t[1] deliberately empty (all nests deleted).
  std::stringstream ss;
  save_trace(t, ss);
  const Trace loaded = load_trace(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].size(), 1u);
  EXPECT_TRUE(loaded[1].empty());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "stormtrack-trace 1\n"
      "# a comment\n"
      "\n"
      "event 0\n"
      "nest 3 1 2 10 20 30 60  # trailing comment\n");
  const Trace t = load_trace(ss);
  ASSERT_EQ(t.size(), 1u);
  ASSERT_EQ(t[0].size(), 1u);
  EXPECT_EQ(t[0][0].id, 3);
  EXPECT_EQ(t[0][0].region, (Rect{1, 2, 10, 20}));
}

TEST(TraceIo, BadMagicThrows) {
  std::stringstream ss("something-else 1\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, BadVersionThrows) {
  std::stringstream ss("stormtrack-trace 99\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, OutOfOrderEventsThrow) {
  std::stringstream ss("stormtrack-trace 1\nevent 1\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, NestBeforeEventThrows) {
  std::stringstream ss("stormtrack-trace 1\nnest 1 0 0 5 5 15 15\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, DuplicateNestIdThrows) {
  std::stringstream ss(
      "stormtrack-trace 1\nevent 0\n"
      "nest 1 0 0 5 5 15 15\nnest 1 9 9 5 5 15 15\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, MalformedNestThrows) {
  std::stringstream ss("stormtrack-trace 1\nevent 0\nnest 1 0 0\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

TEST(TraceIo, NonPositiveExtentThrows) {
  std::stringstream ss(
      "stormtrack-trace 1\nevent 0\nnest 1 0 0 0 5 15 15\n");
  EXPECT_THROW((void)load_trace(ss), CheckError);
}

/// Error message of loading \p text, or "" when it loads cleanly.
std::string load_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    (void)load_trace(ss);
    return "";
  } catch (const CheckError& e) {
    return e.what();
  }
}

TEST(TraceIo, EmptyStreamNamesTheProblem) {
  EXPECT_NE(load_error("").find("no header"), std::string::npos);
}

TEST(TraceIo, BadMagicMessageQuotesTheMagic) {
  EXPECT_NE(load_error("stormtrack-faults 1\n").find("stormtrack-faults"),
            std::string::npos);
}

TEST(TraceIo, TruncatedNestNamesTheMissingField) {
  // "nest id x y w" — truncated before region.h.
  const std::string err =
      load_error("stormtrack-trace 1\nevent 0\nnest 1 0 0 5\n");
  EXPECT_NE(err.find("region.h"), std::string::npos) << err;
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(TraceIo, NonNumericFieldNamesTheField) {
  const std::string err =
      load_error("stormtrack-trace 1\nevent 0\nnest 1 0 zero 5 5 15 15\n");
  EXPECT_NE(err.find("region.y"), std::string::npos) << err;
}

TEST(TraceIo, TrailingTokenAfterNestRejected) {
  const std::string err =
      load_error("stormtrack-trace 1\nevent 0\nnest 1 0 0 5 5 15 15 42\n");
  EXPECT_NE(err.find("trailing token '42'"), std::string::npos) << err;
}

TEST(TraceIo, TrailingTokenAfterEventRejected) {
  const std::string err = load_error("stormtrack-trace 1\nevent 0 extra\n");
  EXPECT_NE(err.find("trailing token 'extra'"), std::string::npos) << err;
}

TEST(TraceIo, UnknownKeywordNamesIt) {
  const std::string err = load_error("stormtrack-trace 1\nnets 1\n");
  EXPECT_NE(err.find("unknown keyword 'nets'"), std::string::npos) << err;
}

TEST(TraceIo, OutOfOrderEventMessageShowsExpectedAndGot) {
  const std::string err = load_error("stormtrack-trace 1\nevent 0\nevent 2\n");
  EXPECT_NE(err.find("expected event 1"), std::string::npos) << err;
  EXPECT_NE(err.find("got 2"), std::string::npos) << err;
}

TEST(TraceIo, PathOverloadErrorsIncludeTheFilename) {
  const auto dir =
      std::filesystem::temp_directory_path() / "stormtrack_trace_err_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "broken.trace";
  {
    std::ofstream os(path);
    os << "stormtrack-trace 1\nevent 0\nnest 1 0 0 5\n";
  }
  try {
    (void)load_trace(path);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("broken.trace"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("region.h"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, LoadedTraceRunsThroughHarness) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 6;
  std::stringstream ss;
  save_trace(generate_synthetic_trace(cfg), ss);
  const Trace loaded = load_trace(ss);

  const ModelStack models;
  const Machine m = Machine::bluegene(256);
  const TraceRunResult r = run_trace(m, models.model, models.truth,
                                     "diffusion", loaded);
  EXPECT_EQ(r.outcomes.size(), 6u);
}

}  // namespace
}  // namespace stormtrack
