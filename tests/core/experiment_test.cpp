#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace stormtrack {
namespace {

StepOutcome outcome(double exec, double redist, std::int64_t bytes,
                    std::int64_t hop_bytes, int retained, double overlap,
                    const char* chosen = "diffusion") {
  StepOutcome o;
  o.committed.actual_exec = exec;
  o.committed.actual_redist = redist;
  o.traffic.total_bytes = bytes;
  o.traffic.hop_bytes = hop_bytes;
  o.num_retained = retained;
  o.overlap_fraction = overlap;
  o.chosen = chosen;
  return o;
}

TEST(TraceRunResult, TotalsSum) {
  TraceRunResult r;
  r.outcomes.push_back(outcome(2.0, 0.5, 100, 300, 1, 0.5));
  r.outcomes.push_back(outcome(3.0, 0.25, 200, 200, 2, 0.25));
  EXPECT_DOUBLE_EQ(r.total_exec(), 5.0);
  EXPECT_DOUBLE_EQ(r.total_redist(), 0.75);
  EXPECT_DOUBLE_EQ(r.total(), 5.75);
  EXPECT_EQ(r.total_hop_bytes(), 500);
}

TEST(TraceRunResult, MeanHopBytesSkipsSilentEvents) {
  TraceRunResult r;
  r.outcomes.push_back(outcome(1.0, 0.0, 0, 0, 0, 0.0));   // no traffic
  r.outcomes.push_back(outcome(1.0, 0.1, 100, 300, 1, 0.4));
  r.outcomes.push_back(outcome(1.0, 0.1, 100, 100, 1, 0.2));
  EXPECT_DOUBLE_EQ(r.mean_avg_hop_bytes(), (3.0 + 1.0) / 2.0);
}

TEST(TraceRunResult, AllLocalTrafficCountsAsSilent) {
  // A step whose redistribution lands entirely on the senders' own ranks
  // has local_bytes > 0 but total_bytes == 0; it carries no hop
  // information and must not drag the mean toward zero.
  TraceRunResult r;
  StepOutcome all_local = outcome(1.0, 0.05, 0, 0, 1, 0.9);
  all_local.traffic.local_bytes = 4096;
  r.outcomes.push_back(all_local);
  r.outcomes.push_back(outcome(1.0, 0.1, 100, 250, 1, 0.4));
  EXPECT_DOUBLE_EQ(r.mean_avg_hop_bytes(), 2.5);
  EXPECT_EQ(r.total_hop_bytes(), 250);
}

TEST(TraceRunResult, MeanOverlapSkipsEventsWithoutRetainedNests) {
  TraceRunResult r;
  r.outcomes.push_back(outcome(1.0, 0.0, 0, 0, 0, 0.0));  // nothing retained
  r.outcomes.push_back(outcome(1.0, 0.1, 10, 10, 2, 0.6));
  r.outcomes.push_back(outcome(1.0, 0.1, 10, 10, 1, 0.2));
  EXPECT_DOUBLE_EQ(r.mean_overlap_fraction(), 0.4);
}

TEST(TraceRunResult, NoRetainedNestsAnywhereYieldsZeroOverlap) {
  TraceRunResult r;
  r.outcomes.push_back(outcome(1.0, 0.0, 0, 0, 0, 0.0));
  r.outcomes.push_back(outcome(2.0, 0.0, 0, 0, 0, 0.0));
  EXPECT_DOUBLE_EQ(r.mean_overlap_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_avg_hop_bytes(), 0.0);
}

TEST(TraceRunResult, DiffusionPickCount) {
  TraceRunResult r;
  r.outcomes.push_back(outcome(1, 0, 0, 0, 0, 0, "diffusion"));
  r.outcomes.push_back(outcome(1, 0, 0, 0, 0, 0, "scratch"));
  r.outcomes.push_back(outcome(1, 0, 0, 0, 0, 0, "diffusion"));
  EXPECT_EQ(r.diffusion_picks(), 2);
}

TEST(TraceRunResult, EmptyTraceAggregatesAreZero) {
  const TraceRunResult r;
  EXPECT_DOUBLE_EQ(r.total(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_avg_hop_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_overlap_fraction(), 0.0);
  EXPECT_EQ(r.diffusion_picks(), 0);
}

TEST(CandidateMetrics, Totals) {
  CandidateMetrics m;
  m.predicted_exec = 1.0;
  m.predicted_redist = 0.5;
  m.actual_exec = 2.0;
  m.actual_redist = 0.25;
  EXPECT_DOUBLE_EQ(m.predicted_total(), 1.5);
  EXPECT_DOUBLE_EQ(m.actual_total(), 2.25);
}

TEST(ModelStack, SharedTruthAndModelAreConsistent) {
  const ModelStack stack;
  const NestShape n{250, 250};
  const double predicted = stack.model.predict(n, 256);
  const double actual = stack.truth.execution_time(n, 256);
  EXPECT_NEAR(predicted, actual, 0.5 * actual);
}

TEST(RunTrace, StrategyOverridesConfig) {
  ModelStack models;
  const Machine m = Machine::bluegene(256);
  SyntheticTraceConfig cfg;
  cfg.num_events = 3;
  const Trace trace = generate_synthetic_trace(cfg);
  ManagerConfig mc;
  mc.strategy = "diffusion";  // should be overridden to scratch
  const TraceRunResult r = run_trace(m, models.model, models.truth,
                                     "scratch", trace, mc);
  for (const StepOutcome& o : r.outcomes) EXPECT_EQ(o.chosen, "scratch");
}

}  // namespace
}  // namespace stormtrack
