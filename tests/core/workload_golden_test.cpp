// Golden bit-identity pins for the workload-layer refactor.
//
// The fingerprints and halo-byte totals below were captured on the engine
// BEFORE nest payloads moved behind INestWorkload (when CoupledSimulation
// integrated field grids inline). The field workload is a port, not a
// rewrite: these values must never change. A mismatch means the refactor
// altered observable simulation state — insertion interpolation, the
// redistribution path, integration order, or fingerprint hashing.

#include <gtest/gtest.h>

#include "core/coupled.hpp"
#include "core/experiment.hpp"

namespace stormtrack {
namespace {

struct GoldenCase {
  const char* machine;
  int cores;
  const char* strategy;
  int intervals;
  std::uint64_t state_fingerprint;
  std::int64_t halo_bytes;
};

// Captured at commit "Add sparse redistribution pricing, pluggable
// topologies, and malleable processor sets" (pre-workload-layer main).
constexpr GoldenCase kGolden[] = {
    {"bgl", 256, "diffusion", 12, 0x50c2d702ec5dcb04ull, 3634992},
    {"bgl", 256, "scratch", 12, 0x03196c3ff2bc379dull, 3634992},
    {"fist", 256, "diffusion", 10, 0x565996bd1bad4049ull, 3033072},
};

CoupledConfig golden_config(const char* strategy) {
  CoupledConfig cfg;
  cfg.scenario.weather.domain.resolution_km = 24.0;
  cfg.scenario.sim_px = 16;
  cfg.scenario.sim_py = 16;
  cfg.scenario.pda.analysis_procs = 16;
  cfg.manager.steps_per_interval = 3;
  cfg.manager.strategy = strategy;
  return cfg;
}

TEST(WorkloadGolden, FieldPortIsBitIdenticalToPreRefactorEngine) {
  ModelStack models;
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(testing::Message() << c.machine << "/" << c.strategy);
    const Machine machine = Machine::by_name(c.machine, c.cores);
    CoupledSimulation sim(machine, models.model, models.truth,
                          golden_config(c.strategy));
    TrafficReport halo;
    for (int i = 0; i < c.intervals; ++i) halo += sim.advance().halo_traffic;
    EXPECT_EQ(sim.state_fingerprint(), c.state_fingerprint);
    EXPECT_EQ(halo.total_bytes, c.halo_bytes);
  }
}

// The explicit workload name must route to the same implementation as the
// default, and the defaulted config must report it.
TEST(WorkloadGolden, DefaultWorkloadIsField) {
  ModelStack models;
  const Machine machine = Machine::by_name("bgl", 256);
  CoupledConfig cfg = golden_config("diffusion");
  EXPECT_EQ(cfg.workload, "field");
  cfg.workload = "field";
  CoupledSimulation sim(machine, models.model, models.truth, cfg);
  for (int i = 0; i < 12; ++i) (void)sim.advance();
  EXPECT_EQ(sim.state_fingerprint(), kGolden[0].state_fingerprint);
  EXPECT_EQ(sim.workload().name(), "field");
}

}  // namespace
}  // namespace stormtrack
