#include "core/coupled.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

class CoupledTest : public ::testing::Test {
 protected:
  CoupledTest() : machine_(Machine::bluegene(256)) {}

  CoupledConfig config() const {
    CoupledConfig c;
    c.scenario.weather.domain.resolution_km = 24.0;  // test-sized grid
    c.scenario.sim_px = 16;
    c.scenario.sim_py = 16;
    c.scenario.pda.analysis_procs = 16;
    c.manager.steps_per_interval = 3;
    return c;
  }

  ModelStack models_;
  Machine machine_;
};

TEST_F(CoupledTest, EveryActiveNestHasFieldAndAllocation) {
  CoupledSimulation sim(machine_, models_.model, models_.truth, config());
  for (int i = 0; i < 10; ++i) {
    const IntervalReport r = sim.advance();
    EXPECT_EQ(r.interval, i);
    for (const auto& [id, nest] : sim.nests()) {
      EXPECT_TRUE(sim.allocation().find(id).has_value()) << "nest " << id;
      EXPECT_EQ(nest.field.width(), nest.spec.shape.nx);
      EXPECT_EQ(nest.field.height(), nest.spec.shape.ny);
    }
    EXPECT_EQ(sim.nests().size(), sim.allocation().num_nests());
  }
}

TEST_F(CoupledTest, LifecycleEventsMatchNestSet) {
  CoupledSimulation sim(machine_, models_.model, models_.truth, config());
  std::set<int> alive;
  for (int i = 0; i < 12; ++i) {
    const IntervalReport r = sim.advance();
    for (const int id : r.diff.deleted) {
      EXPECT_TRUE(alive.erase(id) == 1) << "deleted unknown nest " << id;
    }
    for (const NestSpec& s : r.diff.inserted)
      EXPECT_TRUE(alive.insert(s.id).second);
    std::set<int> now;
    for (const auto& [id, nest] : sim.nests()) now.insert(id);
    EXPECT_EQ(alive, now) << "interval " << i;
  }
}

TEST_F(CoupledTest, RetainedNestRegionsFrozenAtSpawn) {
  CoupledSimulation sim(machine_, models_.model, models_.truth, config());
  std::map<int, Rect> spawn_region;
  for (int i = 0; i < 12; ++i) {
    const IntervalReport r = sim.advance();
    for (const NestSpec& s : r.diff.inserted)
      spawn_region.emplace(s.id, s.region);
    for (const auto& [id, nest] : sim.nests())
      EXPECT_EQ(nest.spec.region, spawn_region.at(id)) << "nest " << id;
  }
}

TEST_F(CoupledTest, FieldsStayPhysical) {
  // Nest fields are interpolated QCLOUD (non-negative) and the integrator
  // satisfies a maximum principle: values must stay within the global
  // range ever seen at spawn time (with slack for fresh spawns).
  CoupledSimulation sim(machine_, models_.model, models_.truth, config());
  for (int i = 0; i < 10; ++i) {
    sim.advance();
    for (const auto& [id, nest] : sim.nests()) {
      for (const double v : nest.field.data()) {
        EXPECT_GE(v, -1e-12) << "nest " << id;
        EXPECT_LT(v, 1.0) << "nest " << id;  // QCLOUD is ~1e-3 at most
      }
    }
  }
}

TEST_F(CoupledTest, HaloTrafficAccountedWhenNestsSpanProcessors) {
  CoupledSimulation sim(machine_, models_.model, models_.truth, config());
  std::int64_t total_halo = 0;
  for (int i = 0; i < 8; ++i) {
    const IntervalReport r = sim.advance();
    if (!sim.nests().empty()) total_halo += r.halo_traffic.total_bytes;
  }
  EXPECT_GT(total_halo, 0);
}

TEST_F(CoupledTest, DeterministicAcrossRuns) {
  CoupledConfig cfg = config();
  CoupledSimulation a(machine_, models_.model, models_.truth, cfg);
  CoupledSimulation b(machine_, models_.model, models_.truth, cfg);
  for (int i = 0; i < 6; ++i) {
    const IntervalReport ra = a.advance();
    const IntervalReport rb = b.advance();
    EXPECT_EQ(ra.rois_detected, rb.rois_detected);
    EXPECT_DOUBLE_EQ(ra.realloc.committed.actual_redist,
                     rb.realloc.committed.actual_redist);
  }
  ASSERT_EQ(a.nests().size(), b.nests().size());
  for (const auto& [id, nest] : a.nests())
    EXPECT_EQ(nest.field, b.nests().at(id).field) << "nest " << id;
}

TEST_F(CoupledTest, WorksUnderEveryStrategy) {
  for (const char* s :
       {"scratch", "diffusion", "dynamic"}) {
    CoupledConfig cfg = config();
    cfg.manager.strategy = s;
    CoupledSimulation sim(machine_, models_.model, models_.truth, cfg);
    for (int i = 0; i < 6; ++i) {
      const IntervalReport r = sim.advance();
      EXPECT_EQ(sim.nests().size(), sim.allocation().num_nests());
      (void)r;
    }
  }
}

}  // namespace
}  // namespace stormtrack
