/// Endurance tests: long traces, extreme nest counts, and machine-size
/// edges that the per-feature tests do not reach.

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(LongTrace, HundredEventsAllStrategiesStayConsistent) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  SyntheticTraceConfig cfg;
  cfg.num_events = 100;
  cfg.seed = 0x100c;
  const Trace trace = generate_synthetic_trace(cfg);
  for (const char* s :
       {"scratch", "diffusion", "dynamic"}) {
    const TraceRunResult r =
        run_trace(machine, models.model, models.truth, s, trace);
    ASSERT_EQ(r.outcomes.size(), 100u);
    for (std::size_t e = 0; e < trace.size(); ++e) {
      const StepOutcome& o = r.outcomes[e];
      // Allocation construction enforces disjointness; check coverage and
      // non-negative metrics here.
      EXPECT_EQ(o.allocation.num_nests(), trace[e].size());
      EXPECT_GE(o.committed.actual_redist, 0.0);
      EXPECT_GE(o.overlap_fraction, 0.0);
      EXPECT_LE(o.overlap_fraction, 1.0);
      EXPECT_EQ(o.num_retained + o.num_inserted,
                static_cast<int>(trace[e].size()));
    }
  }
}

TEST(LongTrace, ManyNestsOnSmallMachine) {
  // 20 concurrent nests on 64 cores: every nest still gets >= 1 processor
  // and redistribution stays conservative.
  ModelStack models;
  const Machine machine = Machine::bluegene(64);
  SyntheticTraceConfig cfg;
  cfg.num_events = 20;
  cfg.min_nests = 12;
  cfg.max_nests = 20;
  cfg.min_size = 60;
  cfg.max_size = 120;
  cfg.seed = 0xfeed;
  const Trace trace = generate_synthetic_trace(cfg);
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "diffusion", trace);
  for (std::size_t e = 0; e < trace.size(); ++e) {
    for (const NestSpec& n : trace[e]) {
      const auto rect = r.outcomes[e].allocation.find(n.id);
      ASSERT_TRUE(rect.has_value());
      EXPECT_GE(rect->area(), 1);
    }
  }
}

TEST(LongTrace, SingleNestDegenerateTrace) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  Trace trace;
  for (int e = 0; e < 5; ++e) {
    NestSpec n;
    n.id = 1;
    n.region = Rect{0, 0, 80, 80};
    n.shape = NestShape{240, 240};
    trace.push_back({n});
  }
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "diffusion", trace);
  // One nest owns the whole grid forever: zero redistribution after the
  // first event.
  for (std::size_t e = 1; e < trace.size(); ++e) {
    EXPECT_DOUBLE_EQ(r.outcomes[e].committed.actual_redist, 0.0);
    EXPECT_DOUBLE_EQ(r.outcomes[e].overlap_fraction, 1.0);
  }
}

TEST(LongTrace, AlternatingEmptyAndFullSets) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  ManagerConfig cfg;
  ReallocationManager manager(machine, models.model, models.truth, cfg);
  NestSpec n;
  n.region = Rect{0, 0, 70, 70};
  n.shape = NestShape{210, 210};
  for (int cycle = 0; cycle < 5; ++cycle) {
    n.id = cycle + 1;
    const StepOutcome filled = manager.apply(std::vector<NestSpec>{n});
    EXPECT_EQ(filled.num_inserted, 1);
    const StepOutcome empty = manager.apply(std::vector<NestSpec>{});
    EXPECT_EQ(empty.num_deleted, 1);
    EXPECT_EQ(empty.allocation.num_nests(), 0u);
  }
}

TEST(LongTrace, Bluegene64To4096MachinesConstructible) {
  for (const int cores : {64, 128, 2048, 4096}) {
    const Machine m = Machine::bluegene(cores);
    EXPECT_EQ(m.cores(), cores);
    EXPECT_EQ(m.comm().size(), cores);
  }
}

}  // namespace
}  // namespace stormtrack
