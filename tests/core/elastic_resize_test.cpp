/// Malleable processor sets: a run may start on a sub-grid view and
/// grow/shrink at scheduled adaptation points (ReSHAPE-style). The resize
/// machinery must keep every allocation inside the live view, surface
/// grow/shrink metrics, stay bit-identical between serial and threaded
/// executors, and refuse malformed schedules up front.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "core/traces.hpp"
#include "exec/executor.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

Trace test_trace(int events) {
  SyntheticTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = 0xe1a571c;
  return generate_synthetic_trace(cfg);
}

/// 256 -> 1024 -> 256 ranks on a 32x32 machine: start on a 16x16 view,
/// grow to the full grid at point 4, shrink back at point 9.
ManagerConfig grow_shrink_config() {
  ManagerConfig cfg;
  cfg.initial_view_px = 16;
  cfg.initial_view_py = 16;
  cfg.resize_schedule = {ResizeEvent{4, 32, 32}, ResizeEvent{9, 16, 16}};
  return cfg;
}

TEST(ElasticResize, GrowAndShrinkKeepAllocationsInsideTheView) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(1024);  // 32x32
  const Trace trace = test_trace(14);

  for (const char* strategy : {"scratch", "diffusion"}) {
    const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                       strategy, trace, grow_shrink_config());
    ASSERT_EQ(r.outcomes.size(), trace.size()) << strategy;
    // Points 0..3 and 9..13 run on the 16x16 view; 4..8 on the full grid.
    for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
      const int vw = (i >= 4 && i < 9) ? 32 : 16;
      for (const auto& [nest, rect] : r.outcomes[i].allocation.rects()) {
        EXPECT_LE(rect.x_end(), vw) << strategy << " point " << i;
        EXPECT_LE(rect.y_end(), vw) << strategy << " point " << i;
      }
    }
    EXPECT_EQ(r.metrics.get("elastic.grow_events").count, 1) << strategy;
    EXPECT_EQ(r.metrics.get("elastic.shrink_events").count, 1) << strategy;
    EXPECT_EQ(r.metrics.get("elastic.procs_added").count, 1024 - 256)
        << strategy;
    EXPECT_EQ(r.metrics.get("elastic.procs_retired").count, 1024 - 256)
        << strategy;
    EXPECT_EQ(r.metrics.get("elastic.validations").count, 2) << strategy;
    // Both resizes had committed nests to move, so both priced a real
    // view-to-view redistribution.
    EXPECT_GT(r.metrics.get("elastic.resize_total_points").count, 0)
        << strategy;
  }
}

TEST(ElasticResize, SerialAndEightThreadRunsAreBitIdentical) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(1024);
  const Trace trace = test_trace(14);

  for (const char* strategy : {"scratch", "diffusion"}) {
    const TraceRunResult serial = run_trace(
        machine, models.model, models.truth, strategy, trace,
        grow_shrink_config());

    ThreadPoolExecutor pool(8);
    ManagerConfig threaded_cfg = grow_shrink_config();
    threaded_cfg.executor = &pool;
    const TraceRunResult threaded = run_trace(
        machine, models.model, models.truth, strategy, trace, threaded_cfg);

    EXPECT_EQ(serial.final_state_fingerprint,
              threaded.final_state_fingerprint)
        << strategy;
    ASSERT_EQ(serial.outcomes.size(), threaded.outcomes.size()) << strategy;
    for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(serial.outcomes[i].chosen, threaded.outcomes[i].chosen)
          << strategy << " point " << i;
      EXPECT_EQ(serial.outcomes[i].committed.predicted_redist,
                threaded.outcomes[i].committed.predicted_redist)
          << strategy << " point " << i;
      EXPECT_EQ(serial.outcomes[i].traffic.hop_bytes,
                threaded.outcomes[i].traffic.hop_bytes)
          << strategy << " point " << i;
      EXPECT_EQ(serial.outcomes[i].allocation.rects(),
                threaded.outcomes[i].allocation.rects())
          << strategy << " point " << i;
    }
    EXPECT_EQ(serial.metrics.get("elastic.resize_moved_points").count,
              threaded.metrics.get("elastic.resize_moved_points").count)
        << strategy;
  }
}

TEST(ElasticResize, InitialViewChangesTheFirstAllocation) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(1024);
  const Trace trace = test_trace(3);

  ManagerConfig narrow;
  narrow.initial_view_px = 16;
  narrow.initial_view_py = 16;
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "scratch", trace, narrow);
  for (const StepOutcome& o : r.outcomes)
    for (const auto& [nest, rect] : o.allocation.rects()) {
      EXPECT_LE(rect.x_end(), 16);
      EXPECT_LE(rect.y_end(), 16);
    }
}

TEST(ElasticResize, MalformedConfigurationsAreRejectedUpFront) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);  // 16x16
  const Trace trace = test_trace(3);

  {  // Only one initial-view dimension set.
    ManagerConfig cfg;
    cfg.initial_view_px = 8;
    EXPECT_THROW(run_trace(machine, models.model, models.truth, "scratch",
                           trace, cfg),
                 CheckError);
  }
  {  // Initial view exceeds the machine grid.
    ManagerConfig cfg;
    cfg.initial_view_px = 32;
    cfg.initial_view_py = 32;
    EXPECT_THROW(run_trace(machine, models.model, models.truth, "scratch",
                           trace, cfg),
                 CheckError);
  }
  {  // Scheduled resize exceeds the machine grid.
    ManagerConfig cfg;
    cfg.resize_schedule = {ResizeEvent{1, 17, 16}};
    EXPECT_THROW(run_trace(machine, models.model, models.truth, "scratch",
                           trace, cfg),
                 CheckError);
  }
  {  // Scheduled resize at a negative point.
    ManagerConfig cfg;
    cfg.resize_schedule = {ResizeEvent{-1, 8, 8}};
    EXPECT_THROW(run_trace(machine, models.model, models.truth, "scratch",
                           trace, cfg),
                 CheckError);
  }
}

TEST(ElasticResize, ReshapeAndNoOpResizesAreDistinguished) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);  // 16x16
  const Trace trace = test_trace(6);

  // Same area, different shape: a reshape, not a grow or shrink.
  ManagerConfig cfg;
  cfg.initial_view_px = 8;
  cfg.initial_view_py = 16;
  cfg.resize_schedule = {ResizeEvent{2, 16, 8},   // reshape 8x16 -> 16x8
                         ResizeEvent{4, 16, 8}};  // no-op: already 16x8
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "diffusion", trace, cfg);
  EXPECT_EQ(r.metrics.get("elastic.reshape_events").count, 1);
  EXPECT_EQ(r.metrics.get("elastic.grow_events").count, 0);
  EXPECT_EQ(r.metrics.get("elastic.shrink_events").count, 0);
}

}  // namespace
}  // namespace stormtrack
