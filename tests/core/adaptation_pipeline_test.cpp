#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : machine_(Machine::bluegene(256)) {}

  NestSpec nest(int id, int nx, int ny) const {
    NestSpec n;
    n.id = id;
    n.region = Rect{0, 0, nx / 3, ny / 3};
    n.shape = NestShape{nx, ny};
    return n;
  }

  ModelStack models_;
  Machine machine_;
};

TEST_F(ManagerTest, FirstEventAllInserted) {
  ReallocationManager mgr(machine_, models_.model, models_.truth,
                          ManagerConfig{});
  const std::vector<NestSpec> active{nest(1, 200, 200), nest(2, 300, 250)};
  const StepOutcome out = mgr.apply(active);
  EXPECT_EQ(out.num_inserted, 2);
  EXPECT_EQ(out.num_retained, 0);
  EXPECT_EQ(out.num_deleted, 0);
  EXPECT_DOUBLE_EQ(out.committed.actual_redist, 0.0);  // nothing to move
  EXPECT_GT(out.committed.actual_exec, 0.0);
  EXPECT_EQ(out.allocation.num_nests(), 2u);
}

TEST_F(ManagerTest, RetainedNestsPayRedistribution) {
  ReallocationManager mgr(machine_, models_.model, models_.truth,
                          ManagerConfig{});
  mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(2, 300, 250)});
  // Delete 2, keep 1, add a much bigger 3: nest 1's processor share shrinks
  // substantially, so its rectangle must change -> redistribution traffic.
  const StepOutcome out =
      mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(3, 350, 350)});
  EXPECT_EQ(out.num_retained, 1);
  EXPECT_EQ(out.num_deleted, 1);
  EXPECT_EQ(out.num_inserted, 1);
  EXPECT_GT(out.committed.actual_redist, 0.0);
  EXPECT_GT(out.traffic.total_bytes + out.traffic.local_bytes, 0);
}

TEST_F(ManagerTest, DiffusionOverlapAtLeastScratchOnAverage) {
  ManagerConfig cfg;
  cfg.strategy = "diffusion";
  ReallocationManager diff(machine_, models_.model, models_.truth, cfg);
  cfg.strategy = "scratch";
  ReallocationManager scratch(machine_, models_.model, models_.truth, cfg);

  double d_sum = 0.0, s_sum = 0.0;
  std::vector<std::vector<NestSpec>> steps{
      {nest(1, 200, 200), nest(2, 300, 250), nest(3, 250, 300)},
      {nest(1, 200, 200), nest(3, 250, 300), nest(4, 220, 220)},
      {nest(3, 250, 300), nest(4, 220, 220), nest(5, 330, 180)},
      {nest(3, 250, 300), nest(5, 330, 180)},
      {nest(3, 250, 300), nest(5, 330, 180), nest(6, 200, 340)},
  };
  for (const auto& s : steps) {
    d_sum += diff.apply(s).overlap_fraction;
    s_sum += scratch.apply(s).overlap_fraction;
  }
  EXPECT_GE(d_sum, s_sum);
}

TEST_F(ManagerTest, StrategiesCommitTheirNamesake) {
  ManagerConfig cfg;
  cfg.strategy = "scratch";
  ReallocationManager scratch(machine_, models_.model, models_.truth, cfg);
  const std::vector<NestSpec> a{nest(1, 200, 200), nest(2, 300, 250)};
  EXPECT_EQ(scratch.apply(a).chosen, "scratch");

  cfg.strategy = "diffusion";
  ReallocationManager diff(machine_, models_.model, models_.truth, cfg);
  EXPECT_EQ(diff.apply(a).chosen, "diffusion");
}

TEST_F(ManagerTest, DynamicPicksSmallerPredictedTotal) {
  ManagerConfig cfg;
  cfg.strategy = "dynamic";
  ReallocationManager mgr(machine_, models_.model, models_.truth, cfg);
  mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(2, 300, 250)});
  const StepOutcome out =
      mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(3, 260, 260)});
  const bool diffusion_cheaper =
      out.diffusion.predicted_total() <= out.scratch.predicted_total();
  EXPECT_EQ(out.chosen, diffusion_cheaper ? "diffusion" : "scratch");
  EXPECT_DOUBLE_EQ(out.committed.actual_total(),
                   (diffusion_cheaper ? out.diffusion : out.scratch)
                       .actual_total());
}

TEST_F(ManagerTest, EmptyActiveSetClearsAllocation) {
  ReallocationManager mgr(machine_, models_.model, models_.truth,
                          ManagerConfig{});
  mgr.apply(std::vector<NestSpec>{nest(1, 200, 200)});
  const StepOutcome out = mgr.apply(std::vector<NestSpec>{});
  EXPECT_EQ(out.num_deleted, 1);
  EXPECT_EQ(out.allocation.num_nests(), 0u);
  EXPECT_DOUBLE_EQ(out.committed.actual_exec, 0.0);
}

TEST_F(ManagerTest, DuplicateIdsRejected) {
  ReallocationManager mgr(machine_, models_.model, models_.truth,
                          ManagerConfig{});
  const std::vector<NestSpec> dup{nest(1, 200, 200), nest(1, 300, 300)};
  EXPECT_THROW((void)mgr.apply(dup), CheckError);
}

TEST_F(ManagerTest, PredictedRedistNeverExceedsSimulatedActual) {
  // The §IV-C-1 predictor (pair max) lower-bounds the simulated network's
  // single-port+contention charge on direct networks.
  ReallocationManager mgr(machine_, models_.model, models_.truth,
                          ManagerConfig{});
  mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(2, 300, 250)});
  const StepOutcome out =
      mgr.apply(std::vector<NestSpec>{nest(1, 200, 200), nest(3, 350, 350)});
  EXPECT_GT(out.committed.predicted_redist, 0.0);
  EXPECT_LE(out.committed.predicted_redist,
            out.committed.actual_redist * (1.0 + 1e-12));
}

TEST(RunTrace, AggregatesOutcomes) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 8;
  tcfg.seed = 5;
  const Trace trace = generate_synthetic_trace(tcfg);
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "diffusion", trace);
  EXPECT_EQ(r.outcomes.size(), 8u);
  EXPECT_GT(r.total_exec(), 0.0);
  EXPECT_GE(r.total_redist(), 0.0);
  EXPECT_EQ(r.diffusion_picks(), 8);
}

TEST(PipelineStageNames, OrderedAndDistinct) {
  EXPECT_EQ(to_string(PipelineStage::kDiffNests), "diff_nests");
  EXPECT_EQ(to_string(PipelineStage::kDeriveWeights), "derive_weights");
  EXPECT_EQ(to_string(PipelineStage::kBuildCandidates), "build_candidates");
  EXPECT_EQ(to_string(PipelineStage::kPredictCosts), "predict_costs");
  EXPECT_EQ(to_string(PipelineStage::kCommit), "commit");
  EXPECT_EQ(to_string(PipelineStage::kRedistribute), "redistribute");
  // Metric keys sort in execution order so per-stage tables read top-down.
  for (int s = 1; s < kNumPipelineStages; ++s)
    EXPECT_LT(stage_metric_name(static_cast<PipelineStage>(s - 1)),
              stage_metric_name(static_cast<PipelineStage>(s)));
}

TEST(PipelineMetrics, EveryStageTimedEveryAdaptationPoint) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 5;
  tcfg.seed = 11;
  const TraceRunResult r =
      run_trace(machine, models.model, models.truth, "dynamic",
                generate_synthetic_trace(tcfg));
  for (int s = 0; s < kNumPipelineStages; ++s) {
    const MetricsRegistry::Entry e =
        r.metrics.get(stage_metric_name(static_cast<PipelineStage>(s)));
    EXPECT_EQ(e.count, 5) << to_string(static_cast<PipelineStage>(s));
    EXPECT_GE(e.seconds, 0.0);
  }
  EXPECT_EQ(r.metrics.get("pipeline.adaptation_points").count, 5);
  EXPECT_EQ(r.metrics.get("pipeline.candidates_built").count, 10);
}

TEST(AdaptationPipeline, UnknownStrategyNameThrows) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  ManagerConfig cfg;
  cfg.strategy = "no-such-strategy";
  EXPECT_THROW(AdaptationPipeline(machine, models.model, models.truth, cfg),
               CheckError);
}

}  // namespace
}  // namespace stormtrack
