#include "core/nest_tracker.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(NestTracker, FirstUpdateInsertsEverything) {
  NestTracker t;
  const std::vector<Rect> rois{{10, 10, 20, 20}, {100, 100, 30, 30}};
  const NestDiff d = t.update(rois);
  EXPECT_EQ(d.inserted.size(), 2u);
  EXPECT_TRUE(d.retained.empty());
  EXPECT_TRUE(d.deleted.empty());
  EXPECT_EQ(t.active().size(), 2u);
  EXPECT_EQ(t.active()[0].id, 1);
  EXPECT_EQ(t.active()[1].id, 2);
}

TEST(NestTracker, StableIdsForPersistentRois) {
  NestTracker t;
  t.update(std::vector<Rect>{{10, 10, 20, 20}});
  // Slightly moved ROI: same nest.
  const NestDiff d = t.update(std::vector<Rect>{{12, 11, 20, 20}});
  ASSERT_EQ(d.retained.size(), 1u);
  EXPECT_EQ(d.retained[0].id, 1);
  EXPECT_EQ(d.retained[0].region, (Rect{12, 11, 20, 20}));
  EXPECT_TRUE(d.inserted.empty());
  EXPECT_TRUE(d.deleted.empty());
}

TEST(NestTracker, DisappearedRoiDeletesNest) {
  NestTracker t;
  t.update(std::vector<Rect>{{10, 10, 20, 20}, {100, 100, 30, 30}});
  const NestDiff d = t.update(std::vector<Rect>{{10, 10, 20, 20}});
  ASSERT_EQ(d.deleted.size(), 1u);
  EXPECT_EQ(d.deleted[0], 2);
  EXPECT_EQ(t.active().size(), 1u);
}

TEST(NestTracker, NewRoiGetsFreshId) {
  NestTracker t;
  t.update(std::vector<Rect>{{10, 10, 20, 20}});
  const NestDiff d =
      t.update(std::vector<Rect>{{10, 10, 20, 20}, {200, 200, 25, 25}});
  ASSERT_EQ(d.inserted.size(), 1u);
  EXPECT_EQ(d.inserted[0].id, 2);
}

TEST(NestTracker, IdsNeverReused) {
  NestTracker t;
  t.update(std::vector<Rect>{{10, 10, 20, 20}});
  t.update(std::vector<Rect>{});  // delete nest 1
  const NestDiff d = t.update(std::vector<Rect>{{10, 10, 20, 20}});
  ASSERT_EQ(d.inserted.size(), 1u);
  EXPECT_EQ(d.inserted[0].id, 2);  // not 1 again
}

TEST(NestTracker, GreedyMatchingPrefersBestOverlap) {
  NestTracker t(0.05);
  t.update(std::vector<Rect>{{0, 0, 20, 20}, {30, 0, 20, 20}});
  // One new ROI overlapping both old nests, closer to the second.
  const NestDiff d = t.update(std::vector<Rect>{{28, 0, 20, 20}});
  ASSERT_EQ(d.retained.size(), 1u);
  EXPECT_EQ(d.retained[0].id, 2);
  EXPECT_EQ(d.deleted.size(), 1u);
  EXPECT_EQ(d.deleted[0], 1);
}

TEST(NestTracker, ShapeIsRefinedRegion) {
  NestTracker t;
  const NestDiff d = t.update(std::vector<Rect>{{0, 0, 60, 110}});
  ASSERT_EQ(d.inserted.size(), 1u);
  EXPECT_EQ(d.inserted[0].shape.nx, 180);
  EXPECT_EQ(d.inserted[0].shape.ny, 330);
}

TEST(NestTracker, BelowThresholdOverlapIsNewNest) {
  NestTracker t(0.5);  // strict matching
  t.update(std::vector<Rect>{{0, 0, 20, 20}});
  const NestDiff d = t.update(std::vector<Rect>{{15, 15, 20, 20}});
  EXPECT_EQ(d.retained.size(), 0u);
  EXPECT_EQ(d.deleted.size(), 1u);
  EXPECT_EQ(d.inserted.size(), 1u);
}

TEST(NestTracker, BadThresholdThrows) {
  EXPECT_THROW(NestTracker(0.0), CheckError);
  EXPECT_THROW(NestTracker(1.5), CheckError);
}

}  // namespace
}  // namespace stormtrack
