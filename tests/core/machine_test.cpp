#include "core/machine.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Machine, Bluegene1024) {
  const Machine m = Machine::bluegene(1024);
  EXPECT_EQ(m.cores(), 1024);
  EXPECT_EQ(m.grid_px(), 32);
  EXPECT_EQ(m.grid_py(), 32);
  EXPECT_TRUE(m.topology().is_direct_network());
  EXPECT_EQ(m.mapping().name(), "folding");
  EXPECT_EQ(m.comm().size(), 1024);
}

TEST(Machine, Bluegene512And256UseFolding) {
  EXPECT_EQ(Machine::bluegene(512).mapping().name(), "folding");
  EXPECT_EQ(Machine::bluegene(256).mapping().name(), "folding");
}

TEST(Machine, Fist256) {
  const Machine m = Machine::fist_cluster(256);
  EXPECT_EQ(m.cores(), 256);
  EXPECT_FALSE(m.topology().is_direct_network());
  EXPECT_EQ(m.mapping().name(), "row-major");
}

TEST(Machine, LabelMentionsCores) {
  EXPECT_NE(Machine::bluegene(1024).label().find("1024"),
            std::string::npos);
  EXPECT_NE(Machine::fist_cluster(256).label().find("fist"),
            std::string::npos);
}

TEST(Machine, CustomBuildValidatesRankCount) {
  auto topo = std::make_unique<Mesh2D>(4, 4);
  auto map = std::make_unique<RowMajorMapping>(8);  // != 4*4
  EXPECT_THROW(Machine(std::move(topo), std::move(map), 4, 4, "bad"),
               CheckError);
}

}  // namespace
}  // namespace stormtrack
