// CoupledSimulation driving the particle workload end to end: thread-count
// bit-identity, conservation across reallocation, the workload accessor
// contract, and the `workload.*` accounting surface.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "exec/executor.hpp"
#include "util/check.hpp"
#include "wsim/particles.hpp"

namespace stormtrack {
namespace {

CoupledConfig particle_config(const char* strategy = "diffusion") {
  CoupledConfig cfg;
  cfg.scenario.weather.domain.resolution_km = 24.0;
  cfg.scenario.sim_px = 16;
  cfg.scenario.sim_py = 16;
  cfg.scenario.pda.analysis_procs = 16;
  cfg.manager.steps_per_interval = 3;
  cfg.manager.strategy = strategy;
  cfg.workload = "particles";
  return cfg;
}

const ParticleWorkload& particles_of(const CoupledSimulation& sim) {
  const auto* w = dynamic_cast<const ParticleWorkload*>(&sim.workload());
  EXPECT_NE(w, nullptr);
  return *w;
}

TEST(CoupledParticles, SerialAndEightThreadRunsAreBitIdentical) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);

  CoupledSimulation serial(machine, models.model, models.truth,
                           particle_config());
  ThreadPoolExecutor pool(8);
  CoupledConfig threaded_cfg = particle_config();
  threaded_cfg.executor = &pool;
  CoupledSimulation threaded(machine, models.model, models.truth,
                             threaded_cfg);

  for (int i = 0; i < 8; ++i) {
    const IntervalReport a = serial.advance();
    const IntervalReport b = threaded.advance();
    EXPECT_EQ(a.halo_traffic.total_bytes, b.halo_traffic.total_bytes);
    EXPECT_EQ(a.workload_traffic.total_bytes, b.workload_traffic.total_bytes);
    EXPECT_EQ(serial.state_fingerprint(), threaded.state_fingerprint())
        << "diverged at interval " << i;
  }
}

TEST(CoupledParticles, ParticleCountIsConservedThroughReallocation) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  CoupledSimulation sim(machine, models.model, models.truth,
                        particle_config());

  const std::int64_t per_nest = sim.config().particles.particles_per_nest;
  for (int i = 0; i < 10; ++i) {
    (void)sim.advance();
    const ParticleWorkload& w = particles_of(sim);
    // Every live nest holds exactly its seeded complement: handoffs and
    // realloc moves transfer ownership, never particles.
    EXPECT_EQ(w.total_particles(),
              per_nest * static_cast<std::int64_t>(w.num_nests()))
        << "interval " << i;
  }
}

TEST(CoupledParticles, WorkloadCountersLandInTheSimulationMetrics) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  CoupledSimulation sim(machine, models.model, models.truth,
                        particle_config());
  for (int i = 0; i < 8; ++i) (void)sim.advance();

  MetricsRegistry& m = sim.metrics();
  EXPECT_GT(m.get("workload.advected_particle_steps").count, 0);
  EXPECT_GT(m.get("workload.active_ranks").count, 0);
  EXPECT_GT(m.get("workload.rank_slots").count, 0);
  // Participation can never exceed the rectangle capacity.
  EXPECT_LE(m.get("workload.active_ranks").count,
            m.get("workload.rank_slots").count);
  EXPECT_GE(m.get("workload.handoffs").count,
            m.get("workload.ping_pong_particles").count);
}

TEST(CoupledParticles, NestsAccessorIsFieldOnly) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  CoupledSimulation sim(machine, models.model, models.truth,
                        particle_config());
  (void)sim.advance();
  EXPECT_EQ(sim.workload().name(), "particles");
  EXPECT_THROW((void)sim.nests(), CheckError);

  CoupledConfig field_cfg = particle_config();
  field_cfg.workload = "field";
  CoupledSimulation field_sim(machine, models.model, models.truth, field_cfg);
  (void)field_sim.advance();
  EXPECT_EQ(field_sim.nests().size(), field_sim.workload().num_nests());
}

TEST(CoupledParticles, UnknownWorkloadNameIsRefusedAtConstruction) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  CoupledConfig cfg = particle_config();
  cfg.workload = "voxels";
  EXPECT_THROW(
      CoupledSimulation(machine, models.model, models.truth, cfg),
      CheckError);
}

TEST(CoupledParticles, ExportImportContinuesTheExactRun) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  CoupledSimulation sim(machine, models.model, models.truth,
                        particle_config());
  for (int i = 0; i < 4; ++i) (void)sim.advance();

  CoupledSimulation restored(machine, models.model, models.truth,
                             particle_config());
  restored.import_state(sim.export_state());
  EXPECT_EQ(restored.state_fingerprint(), sim.state_fingerprint());
  for (int i = 0; i < 3; ++i) {
    (void)sim.advance();
    (void)restored.advance();
  }
  EXPECT_EQ(restored.state_fingerprint(), sim.state_fingerprint());

  // The blob names its workload: restoring particle state into a field run
  // must be refused, not misparsed.
  CoupledConfig field_cfg = particle_config();
  field_cfg.workload = "field";
  CoupledSimulation field_sim(machine, models.model, models.truth, field_cfg);
  EXPECT_THROW(field_sim.import_state(sim.export_state()), CheckError);
}

}  // namespace
}  // namespace stormtrack
