#include "core/traces.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(SyntheticTrace, RespectsConfigBounds) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 30;
  cfg.seed = 9;
  const Trace trace = generate_synthetic_trace(cfg);
  ASSERT_EQ(trace.size(), 30u);
  for (const auto& active : trace) {
    EXPECT_GE(static_cast<int>(active.size()), cfg.min_nests);
    EXPECT_LE(static_cast<int>(active.size()), cfg.max_nests);
    for (const NestSpec& n : active) {
      EXPECT_GT(n.shape.nx, 0);
      EXPECT_GT(n.shape.ny, 0);
      EXPECT_LE(n.shape.nx, cfg.max_size + 3);
      EXPECT_LE(n.shape.ny, cfg.max_size + 3);
      EXPECT_GE(n.region.x, 0);
      EXPECT_LE(n.region.x_end(), cfg.domain_nx);
      EXPECT_LE(n.region.y_end(), cfg.domain_ny);
    }
  }
}

TEST(SyntheticTrace, DeterministicBySeed) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 10;
  const Trace a = generate_synthetic_trace(cfg);
  const Trace b = generate_synthetic_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].id, b[i][j].id);
      EXPECT_EQ(a[i][j].region, b[i][j].region);
    }
  }
}

TEST(SyntheticTrace, HasChurn) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 40;
  cfg.seed = 17;
  const Trace trace = generate_synthetic_trace(cfg);
  int deletions = 0, insertions = 0, retentions = 0;
  for (std::size_t e = 1; e < trace.size(); ++e) {
    std::set<int> prev, cur;
    for (const NestSpec& n : trace[e - 1]) prev.insert(n.id);
    for (const NestSpec& n : trace[e]) cur.insert(n.id);
    for (int id : prev)
      if (!cur.count(id)) ++deletions;
    for (int id : cur)
      if (!prev.count(id))
        ++insertions;
      else
        ++retentions;
  }
  EXPECT_GT(deletions, 10);
  EXPECT_GT(insertions, 10);
  EXPECT_GT(retentions, 10);
}

TEST(SyntheticTrace, UniqueIdsWithinEvent) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 25;
  cfg.seed = 23;
  for (const auto& active : generate_synthetic_trace(cfg)) {
    std::set<int> ids;
    for (const NestSpec& n : active) EXPECT_TRUE(ids.insert(n.id).second);
  }
}

TEST(SyntheticTrace, BadConfigThrows) {
  SyntheticTraceConfig cfg;
  cfg.num_events = 0;
  EXPECT_THROW((void)generate_synthetic_trace(cfg), CheckError);
}

TEST(RealScenario, ProducesActiveNests) {
  RealScenarioConfig cfg;
  cfg.weather.domain.resolution_km = 24.0;  // test speed
  cfg.num_intervals = 6;
  cfg.sim_px = 16;
  cfg.sim_py = 16;
  cfg.pda.analysis_procs = 16;
  RealScenarioDriver driver(cfg);
  int total_nests = 0;
  for (int i = 0; i < cfg.num_intervals; ++i) {
    const RealScenarioStep step = driver.next();
    EXPECT_EQ(step.interval, i);
    total_nests += static_cast<int>(step.active.size());
    for (const NestSpec& n : step.active) {
      EXPECT_GT(n.shape.nx, 0);
      EXPECT_GT(n.shape.ny, 0);
    }
  }
  EXPECT_GT(total_nests, 0);
}

TEST(RealScenario, TraceGeneration) {
  RealScenarioConfig cfg;
  cfg.weather.domain.resolution_km = 24.0;
  cfg.num_intervals = 4;
  cfg.sim_px = 16;
  cfg.sim_py = 16;
  cfg.pda.analysis_procs = 16;
  const Trace trace = generate_real_trace(cfg);
  EXPECT_EQ(trace.size(), 4u);
}

TEST(RealScenario, RetainedNestsKeepIdsAcrossIntervals) {
  RealScenarioConfig cfg;
  cfg.weather.domain.resolution_km = 24.0;
  cfg.num_intervals = 8;
  cfg.sim_px = 16;
  cfg.sim_py = 16;
  cfg.pda.analysis_procs = 16;
  const Trace trace = generate_real_trace(cfg);
  // Clouds persist between 2-minute intervals, so consecutive active sets
  // should share ids at least once over the run.
  int shared = 0;
  for (std::size_t e = 1; e < trace.size(); ++e) {
    std::set<int> prev;
    for (const NestSpec& n : trace[e - 1]) prev.insert(n.id);
    for (const NestSpec& n : trace[e])
      if (prev.count(n.id)) ++shared;
  }
  EXPECT_GT(shared, 0);
}

}  // namespace
}  // namespace stormtrack
