#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

// ------------------------------------------------------------- registry

TEST(StrategyRegistry, ResolvesBuiltinsByName) {
  StrategyRegistry& reg = StrategyRegistry::global();
  for (const char* name :
       {"scratch", "diffusion", "dynamic", "hysteresis"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    const auto strategy = reg.create(name);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
}

TEST(StrategyRegistry, UnknownNameThrowsWithKnownNamesListed) {
  try {
    (void)StrategyRegistry::global().create("does-not-exist");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does-not-exist"), std::string::npos);
    EXPECT_NE(what.find("diffusion"), std::string::npos);
  }
}

TEST(StrategyRegistry, OpenForExtension) {
  StrategyRegistry reg;  // isolated instance
  EXPECT_FALSE(reg.contains("always-first"));
  class AlwaysFirst final : public IStrategy {
   public:
    std::string name() const override { return "always-first"; }
    std::size_t decide(const PipelineContext&) override { return 0; }
  };
  reg.add("always-first", [](const StrategyOptions&) {
    return std::make_unique<AlwaysFirst>();
  });
  EXPECT_TRUE(reg.contains("always-first"));
  EXPECT_EQ(reg.create("always-first")->name(), "always-first");
  EXPECT_THROW(reg.add("always-first",
                       [](const StrategyOptions&) {
                         return std::unique_ptr<IStrategy>{};
                       }),
               CheckError);
}

TEST(StrategyRegistry, OptionsReachTheFactory) {
  StrategyOptions opts;
  opts.hysteresis_threshold = 0.25;
  const auto s = StrategyRegistry::global().create("hysteresis", opts);
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const HysteresisStrategy&>(*s).threshold(), 0.25);
}

// ----------------------------------------------------------- hysteresis

PipelineContext two_candidates(double scratch_pred, double diffusion_pred) {
  PipelineContext ctx;
  PipelineCandidate s;
  s.name = "scratch";
  s.metrics.predicted_exec = scratch_pred;
  PipelineCandidate d;
  d.name = "diffusion";
  d.metrics.predicted_exec = diffusion_pred;
  ctx.candidates.push_back(std::move(s));
  ctx.candidates.push_back(std::move(d));
  return ctx;
}

TEST(HysteresisStrategy, FirstDecisionIsDynamic) {
  HysteresisStrategy h(0.10);
  const PipelineContext ctx = two_candidates(1.0, 2.0);
  EXPECT_EQ(h.decide(ctx), 0u);  // scratch strictly cheaper
}

TEST(HysteresisStrategy, SmallGainDoesNotSwitch) {
  HysteresisStrategy h(0.10);
  (void)h.decide(two_candidates(1.0, 2.0));  // incumbent: scratch
  // Diffusion now predicted 5% cheaper — below the 10% threshold.
  EXPECT_EQ(h.decide(two_candidates(1.0, 0.95)), 0u);
  // And it stays sticky across points.
  EXPECT_EQ(h.decide(two_candidates(1.0, 0.95)), 0u);
}

TEST(HysteresisStrategy, LargeGainSwitches) {
  HysteresisStrategy h(0.10);
  (void)h.decide(two_candidates(1.0, 2.0));  // incumbent: scratch
  // Diffusion predicted 50% cheaper — well past the threshold.
  EXPECT_EQ(h.decide(two_candidates(1.0, 0.5)), 1u);
  // Diffusion is now the incumbent and itself sticky.
  EXPECT_EQ(h.decide(two_candidates(0.95, 1.0)), 1u);
}

TEST(DynamicStrategy, TieGoesToDiffusion) {
  DynamicStrategy dyn;
  EXPECT_EQ(dyn.decide(two_candidates(1.0, 1.0)), 1u);
  EXPECT_EQ(dyn.decide(two_candidates(0.9, 1.0)), 0u);
  EXPECT_EQ(dyn.decide(two_candidates(1.0, 0.9)), 1u);
}

TEST(HysteresisStrategy, RunsEndToEnd) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 10;
  tcfg.seed = 77;
  const Trace trace = generate_synthetic_trace(tcfg);
  const TraceRunResult r = run_trace(machine, models.model, models.truth,
                                     "hysteresis", trace);
  ASSERT_EQ(r.outcomes.size(), 10u);
  for (const StepOutcome& o : r.outcomes)
    EXPECT_TRUE(o.chosen == "scratch" || o.chosen == "diffusion");
}

// ------------------------------------------------------- golden values
//
// The staged pipeline must reproduce the pre-refactor enum-dispatch
// implementation bit for bit on the paper strategies. These constants were
// captured from the seed build (commit 28fd130) with full double
// precision; the fingerprint folds every committed allocation rectangle of
// the run through FNV-1a.

struct GoldenCase {
  const char* trace;
  const char* machine;
  const char* strategy;
  double total_exec;
  double total_redist;
  std::int64_t total_hop_bytes;
  int diffusion_picks;
  std::uint64_t allocation_fingerprint;
};

constexpr GoldenCase kGolden[] = {
    {"fig12", "bgl256", "scratch", 94.191587142857131, 10.9887949625,
     176892044400, 0, 0x07d9b8de412e6e10ull},
    {"fig12", "bgl256", "diffusion", 91.326671728316327,
     8.1306695250000001, 87043280400, 12, 0xa5dbb2d4b8580375ull},
    {"fig12", "bgl256", "dynamic", 91.772301792091838, 9.546559187499998,
     138080424600, 7, 0x49104d62c6dedb61ull},
    {"fig12", "bgl1024", "scratch", 28.532507640399917, 4.2161275125,
     266912463600, 0, 0xdf0e705bd85f18f5ull},
    {"fig12", "bgl1024", "diffusion", 29.269204402348556,
     2.6506403249999999, 151160207400, 12, 0xeeaed93383059d90ull},
    {"fig12", "bgl1024", "dynamic", 28.648800626180204,
     3.2838450468750002, 203507283600, 7, 0xb09b63e9e6f4ce42ull},
    {"mixed", "bgl256", "scratch", 169.68548407142856, 25.889730387499998,
     412825118400, 0, 0xbb6a917d0e674f3full},
    {"mixed", "bgl256", "diffusion", 172.24566955357145,
     22.025407437500004, 265955675400, 20, 0xd7a7809066a0ee93ull},
    {"mixed", "bgl256", "dynamic", 167.86000294505496, 22.933744937499998,
     297291351600, 11, 0x8d2899f01e320b09ull},
    {"mixed", "bgl1024", "scratch", 52.053772769966805,
     9.9937627625000029, 671273649000, 0, 0xc00e1e691291f593ull},
    {"mixed", "bgl1024", "diffusion", 52.537230413221302,
     6.7928949375000007, 410367610800, 20, 0x177f8f843f6fac11ull},
    {"mixed", "bgl1024", "dynamic", 51.66885518634146, 8.5930046187500011,
     550909495800, 7, 0x83baa7e20e95a48cull},
};

std::uint64_t allocation_fingerprint(const TraceRunResult& r) {
  std::uint64_t fp = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&fp](std::uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ull;  // FNV-1a prime
  };
  for (const StepOutcome& o : r.outcomes)
    for (const auto& [nest, rect] : o.allocation.rects()) {
      mix(static_cast<std::uint64_t>(nest));
      mix(static_cast<std::uint64_t>(rect.x));
      mix(static_cast<std::uint64_t>(rect.y));
      mix(static_cast<std::uint64_t>(rect.w));
      mix(static_cast<std::uint64_t>(rect.h));
    }
  return fp;
}

TEST(StrategyGolden, PipelineMatchesPreRefactorEnumPaths) {
  const ModelStack models;
  const Machine bgl256 = Machine::bluegene(256);
  const Machine bgl1024 = Machine::bluegene(1024);
  SyntheticTraceConfig fig12_cfg;
  fig12_cfg.num_events = 12;
  fig12_cfg.seed = 0xf125;
  SyntheticTraceConfig mixed_cfg;
  mixed_cfg.num_events = 20;
  mixed_cfg.seed = 0x5ca1ab1e;
  const Trace fig12 = generate_synthetic_trace(fig12_cfg);
  const Trace mixed = generate_synthetic_trace(mixed_cfg);

  for (const GoldenCase& g : kGolden) {
    SCOPED_TRACE(std::string(g.trace) + "/" + g.machine + "/" + g.strategy);
    const Trace& trace = std::string_view(g.trace) == "fig12" ? fig12 : mixed;
    const Machine& machine =
        std::string_view(g.machine) == "bgl256" ? bgl256 : bgl1024;
    const TraceRunResult r =
        run_trace(machine, models.model, models.truth, g.strategy, trace);
    // Exact equality: the refactor reorders no floating-point operation.
    EXPECT_EQ(r.total_exec(), g.total_exec);
    EXPECT_EQ(r.total_redist(), g.total_redist);
    EXPECT_EQ(r.total_hop_bytes(), g.total_hop_bytes);
    EXPECT_EQ(r.diffusion_picks(), g.diffusion_picks);
    EXPECT_EQ(allocation_fingerprint(r), g.allocation_fingerprint);
  }
}

}  // namespace
}  // namespace stormtrack
