/// \file protocol_fuzz_test.cpp
/// Hostile-client hardening: a live server fed garbage, mutated, and
/// truncated frames must drop the offending connection and keep serving;
/// slowloris writers and stalled readers must be cut off by the
/// read/write deadlines instead of pinning handler threads. The corpus is
/// seeded, so failures replay deterministically (also run under
/// ASan/UBSan in the daemon-chaos CI job).

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/crc32.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

/// Serialize one well-formed frame the way protocol.cpp does.
std::vector<std::byte> encode_frame(MsgType type,
                                    const std::vector<std::byte>& payload) {
  BinaryWriter w;
  w.put_u32(kFrameMagic);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  for (const std::byte b : payload) {
    w.put_u8(static_cast<std::uint8_t>(b));
  }
  const auto type_byte = static_cast<std::byte>(type);
  std::uint32_t crc = crc32_update(0, {&type_byte, 1});
  crc = crc32_update(crc, payload);
  w.put_u32(crc);
  return w.bytes();
}

std::vector<std::byte> hello_payload() {
  BinaryWriter w;
  w.put_u32(kProtocolVersion);
  return w.bytes();
}

/// Best-effort raw write (the peer may close on us mid-corpus — fine).
void write_bytes(int fd, const std::vector<std::byte>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Wait until the peer closes our socket (EOF/reset); false on timeout.
bool wait_peer_close(int fd, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    struct pollfd p = {fd, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return true;  // EOF or reset: server dropped us
  }
  return false;
}

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name());
    dir_ = fs::temp_directory_path() / ("st_fuzz_" + name);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    socket_ = fs::temp_directory_path() /
              ("st_fz_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++) + ".sock");
  }
  void TearDown() override {
    fs::remove_all(dir_);
    std::error_code ignored;
    fs::remove(socket_, ignored);
  }

  fs::path dir_;
  fs::path socket_;
  static int counter_;
};

int ProtocolFuzzTest::counter_ = 0;

TEST_F(ProtocolFuzzTest, SeededGarbageCorpusNeverWedgesTheServer) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  ServerConfig config;
  config.socket_path = socket_;
  config.read_deadline_seconds = 0.5;  // stalled-frame corpus entries
  config.write_deadline_seconds = 2.0;
  SessionServer server(supervisor, config);
  server.start();

  std::mt19937 rng(0xF00Du);  // fixed seed: failures replay exactly
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const std::vector<std::byte> valid =
      encode_frame(MsgType::kHello, hello_payload());

  std::vector<std::vector<std::byte>> corpus;
  // Pure noise at assorted lengths, including zero-length (connect+close).
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                std::size_t{8}, std::size_t{13},
                                std::size_t{64}, std::size_t{1024}}) {
    std::vector<std::byte> noise(len);
    for (std::byte& b : noise) {
      b = static_cast<std::byte>(byte_dist(rng));
    }
    corpus.push_back(std::move(noise));
  }
  // Every single-byte mutation class of a valid frame: magic, type,
  // length, payload, CRC (16 random positions cover all five regions).
  for (int i = 0; i < 16; ++i) {
    std::vector<std::byte> mutated = valid;
    const auto pos = static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, valid.size() - 1)(rng));
    mutated[pos] ^= static_cast<std::byte>(1 + byte_dist(rng) % 255);
    corpus.push_back(std::move(mutated));
  }
  // Truncations at every prefix boundary class.
  for (const std::size_t keep : {std::size_t{3}, std::size_t{4},
                                 std::size_t{5}, std::size_t{9},
                                 valid.size() - 1}) {
    corpus.emplace_back(valid.begin(),
                        valid.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  // A length field past kMaxFramePayload: must be rejected before any
  // allocation of that size.
  {
    std::vector<std::byte> oversized = valid;
    const std::uint32_t huge = kMaxFramePayload + 1;
    std::memcpy(oversized.data() + 5, &huge, sizeof(huge));
    corpus.push_back(std::move(oversized));
  }
  // A valid hello followed by trailing garbage on the same connection.
  {
    std::vector<std::byte> combo = valid;
    for (int i = 0; i < 32; ++i) {
      combo.push_back(static_cast<std::byte>(byte_dist(rng)));
    }
    corpus.push_back(std::move(combo));
  }

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("corpus entry " + std::to_string(i));
    const int fd = connect_unix(socket_);
    write_bytes(fd, corpus[i]);
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the server says (an error frame, or nothing) until
    // it closes; a wedged handler would hang right here.
    EXPECT_TRUE(wait_peer_close(fd, 5.0));
    close_fd(fd);
  }

  // The server survived the whole corpus: a well-formed client still gets
  // real service on a fresh connection.
  ClientConnection client(socket_);
  EXPECT_TRUE(client.list().empty());
  EXPECT_TRUE(client.stats().healthy);
  server.stop();
}

TEST_F(ProtocolFuzzTest, SlowlorisWriterIsDroppedByTheReadDeadline) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  ServerConfig config;
  config.socket_path = socket_;
  config.read_deadline_seconds = 0.3;
  SessionServer server(supervisor, config);
  server.start();

  // Drip a valid frame one byte at a time, far slower than the deadline
  // allows. The first byte arms the clock; the server must cut us off.
  const std::vector<std::byte> frame =
      encode_frame(MsgType::kHello, hello_payload());
  const int fd = connect_unix(socket_);
  const auto started = std::chrono::steady_clock::now();
  bool dropped = false;
  for (const std::byte b : frame) {
    const ssize_t n = ::send(fd, &b, 1, MSG_NOSIGNAL);
    if (n <= 0) {
      dropped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    char buf[64];
    const ssize_t r = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r == 0) {
      dropped = true;
      break;
    }
  }
  if (!dropped) dropped = wait_peer_close(fd, 5.0);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  close_fd(fd);

  EXPECT_TRUE(dropped);
  EXPECT_LT(elapsed, 5.0);  // deadline fired, not a full-frame stall
  EXPECT_GE(server.deadline_drops(), 1);

  // An honest client that idles *between* frames is never dropped.
  ClientConnection client(socket_);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_TRUE(client.list().empty());
  server.stop();
}

TEST_F(ProtocolFuzzTest, StalledReaderIsDroppedByTheWriteDeadline) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  ServerConfig config;
  config.socket_path = socket_;
  config.write_deadline_seconds = 0.3;
  config.send_buffer_bytes = 4096;  // fill fast so the deadline can fire
  SessionServer server(supervisor, config);
  server.start();

  // Handshake normally, then pipeline hundreds of requests and never read
  // a reply: the server's sends back up until its socket fills and the
  // write deadline trips.
  ClientConnection client(socket_);
  BinaryWriter status_req;
  status_req.put_u64(999);  // unknown id: each reply is an error string
  const std::vector<std::byte> request =
      encode_frame(MsgType::kStatus, status_req.bytes());
  for (int i = 0; i < 800; ++i) {
    write_bytes(client.fd(), request);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (server.deadline_drops() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.deadline_drops(), 1);

  // The daemon sheds the stalled connection, not its own health.
  ClientConnection fresh(socket_);
  EXPECT_TRUE(fresh.stats().healthy);
  server.stop();
}

}  // namespace
}  // namespace stormtrack
