#include "serve/session_journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

class SessionJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_sjournal_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "sessions.stjl";
  }
  void TearDown() override { fs::remove_all(dir_); }

  SessionSpec spec(int intervals) {
    SessionSpec s;
    s.intervals = intervals;
    return s;
  }

  fs::path dir_;
  fs::path path_;
};

TEST_F(SessionJournalTest, ReplayFoldsEveryLifecycle) {
  {
    SessionJournal journal(path_, /*resume=*/false);
    journal.submitted(1, spec(5));
    journal.started(1, 1);
    journal.finished(1, 0xF00Dull, 5);

    journal.submitted(2, spec(9));
    journal.started(2, 1);
    journal.started(2, 2);
    journal.quarantined(2, "kept breaking");

    journal.submitted(3, spec(7));
    journal.cancelled(3, "operator changed their mind");

    journal.submitted(4, spec(3));
    journal.shed(4);

    journal.submitted(5, spec(4));
    journal.started(5, 1);  // daemon dies here: no terminal record

    journal.submitted(6, spec(2));  // never started

    journal.submitted(7, spec(1));
    journal.started(7, 1);
    journal.failed(7, "deadline exceeded");
    EXPECT_EQ(journal.appends(), 17);
  }

  SessionJournal journal(path_, /*resume=*/true);
  const auto& replayed = journal.replayed();
  ASSERT_EQ(replayed.size(), 7u);
  EXPECT_EQ(journal.max_id(), 7u);
  EXPECT_EQ(journal.torn_records_dropped(), 0);

  EXPECT_EQ(replayed.at(1).state, SessionState::kDone);
  EXPECT_EQ(replayed.at(1).fingerprint, 0xF00Dull);
  EXPECT_EQ(replayed.at(1).intervals_done, 5);
  EXPECT_EQ(replayed.at(1).spec.intervals, 5);

  EXPECT_EQ(replayed.at(2).state, SessionState::kQuarantined);
  EXPECT_EQ(replayed.at(2).attempts, 2);
  EXPECT_EQ(replayed.at(2).error, "kept breaking");

  EXPECT_EQ(replayed.at(3).state, SessionState::kCancelled);
  EXPECT_EQ(replayed.at(4).state, SessionState::kShed);

  // The two unfinished shapes recovery must requeue:
  EXPECT_EQ(replayed.at(5).state, SessionState::kRunning);
  EXPECT_EQ(replayed.at(5).attempts, 1);
  EXPECT_EQ(replayed.at(6).state, SessionState::kQueued);

  EXPECT_EQ(replayed.at(7).state, SessionState::kFailed);
  EXPECT_EQ(replayed.at(7).error, "deadline exceeded");
}

TEST_F(SessionJournalTest, TornTailIsDroppedEarlierRecordsSurvive) {
  {
    SessionJournal journal(path_, false);
    journal.submitted(1, spec(5));
    journal.started(1, 1);
    journal.finished(1, 0xBEEFull, 5);
  }
  // Chop a few bytes off the last record, as a crash mid-append would.
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 3);

  SessionJournal journal(path_, true);
  EXPECT_EQ(journal.torn_records_dropped(), 1);
  ASSERT_EQ(journal.replayed().size(), 1u);
  // The finished record was torn: the session replays as still running,
  // which recovery treats as "requeue and resume".
  EXPECT_EQ(journal.replayed().at(1).state, SessionState::kRunning);

  // The journal stays appendable after truncation repair.
  journal.finished(1, 0xBEEFull, 5);
  SessionJournal reread(path_, true);
  EXPECT_EQ(reread.replayed().at(1).state, SessionState::kDone);
}

TEST_F(SessionJournalTest, TransitionForUnknownSessionIsCorruption) {
  {
    SessionJournal journal(path_, false);
    journal.started(99, 1);  // no kSubmitted first: nonsense on replay
  }
  try {
    SessionJournal journal(path_, true);
    FAIL() << "replayed a transition for a never-submitted session";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("never submitted"),
              std::string::npos);
  }
}

TEST_F(SessionJournalTest, WrongMagicNamesTheSessionJournal) {
  {
    std::FILE* f = std::fopen(path_.string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "STCKv3 not a session journal at all............";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  try {
    SessionJournal journal(path_, true);
    FAIL() << "opened a non-journal file";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("session journal"),
              std::string::npos);
  }
}

TEST_F(SessionJournalTest, IdsContinueAcrossRestarts) {
  {
    SessionJournal journal(path_, false);
    journal.submitted(41, spec(2));
  }
  SessionJournal journal(path_, true);
  EXPECT_EQ(journal.max_id(), 41u);
}

}  // namespace
}  // namespace stormtrack
