/// \file degraded_test.cpp
/// Degraded I/O mode end to end: journal writes fail (injected ENOSPC),
/// the daemon keeps accepting and running sessions with records buffered
/// in memory, health flips to degraded, the watchdog recovers once writes
/// succeed again, and nothing acknowledged is lost across a restart.

#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>

#include "util/fs_fault.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;
using Admission = SessionSupervisor::Admission;

class DegradedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_fault_clear();
    dir_ = fs::temp_directory_path() /
           ("st_degraded_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs_fault_clear();
    fs::remove_all(dir_);
  }

  static SessionSpec quick_spec(int intervals, std::uint64_t seed = 11) {
    SessionSpec spec;
    spec.cores = 256;
    spec.intervals = intervals;
    spec.seed = seed;
    return spec;
  }

  static ServeLimits quick_limits() {
    ServeLimits limits;
    limits.max_active = 1;
    limits.watchdog_period_seconds = 0.01;  // fast flush retries
    return limits;
  }

  /// Fail every write to the session journal (not checkpoints).
  static void break_journal_writes() {
    FsFaultSpec spec;
    spec.op = "write";
    spec.path_contains = "sessions.stjl";
    spec.count = -1;
    spec.error_no = ENOSPC;
    fs_fault_install(spec);
  }

  static bool wait_until(const std::function<bool()>& done,
                         double timeout_seconds = 5.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return done();
  }

  fs::path dir_;
};

TEST_F(DegradedTest, JournalFailureDegradesThenWatchdogRecovers) {
  SessionSupervisor supervisor(dir_, quick_limits());
  supervisor.start();

  break_journal_writes();
  const auto submit = supervisor.submit(quick_spec(2));
  ASSERT_EQ(submit.admission, Admission::kAccepted);

  // The accept was acknowledged with the journal down: the record sits
  // buffered, health is degraded, and stats says so.
  EXPECT_FALSE(supervisor.healthy());
  {
    const ServerStats stats = supervisor.stats();
    EXPECT_FALSE(stats.healthy);
    EXPECT_GE(stats.journal_pending, 1u);
    EXPECT_GE(stats.journal_write_failures, 1u);
  }

  // The session itself is unaffected: it runs to done while degraded.
  const SessionStatus done = supervisor.wait_terminal(submit.id);
  EXPECT_EQ(done.state, SessionState::kDone);

  // Disk comes back; the watchdog's next sweep drains the buffer.
  fs_fault_clear();
  // Wait on the counter, not healthy(): health flips inside the flush a
  // beat before the watchdog records the recovery transition.
  EXPECT_TRUE(wait_until([&] {
    return supervisor.metrics().get("server.health_recoveries").count >= 1;
  }));
  EXPECT_TRUE(supervisor.healthy());
  EXPECT_EQ(supervisor.stats().journal_pending, 0u);
  EXPECT_GE(supervisor.metrics().get("server.degraded_transitions").count, 1);
  supervisor.stop();

  // Everything acknowledged while degraded is on disk now: a restart
  // replays the full lifecycle, fingerprint included.
  SessionSupervisor restarted(dir_, quick_limits());
  (void)restarted.recover();
  const SessionStatus replayed = restarted.status(submit.id);
  EXPECT_EQ(replayed.state, SessionState::kDone);
  EXPECT_EQ(replayed.fingerprint, done.fingerprint);
}

TEST_F(DegradedTest, DegradedRunMatchesHealthyRunFingerprint) {
  // Baseline: the same spec run with a healthy journal.
  std::uint64_t healthy_fingerprint = 0;
  {
    SessionSupervisor supervisor(dir_ / "healthy", quick_limits());
    supervisor.start();
    const auto submit = supervisor.submit(quick_spec(3, 77));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    healthy_fingerprint = supervisor.wait_terminal(submit.id).fingerprint;
    supervisor.stop();
  }
  ASSERT_NE(healthy_fingerprint, 0u);

  SessionSupervisor supervisor(dir_ / "degraded", quick_limits());
  supervisor.start();
  break_journal_writes();
  const auto submit = supervisor.submit(quick_spec(3, 77));
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  const SessionStatus done = supervisor.wait_terminal(submit.id);
  EXPECT_EQ(done.state, SessionState::kDone);
  EXPECT_EQ(done.fingerprint, healthy_fingerprint);
  fs_fault_clear();
  EXPECT_TRUE(wait_until([&] { return supervisor.healthy(); }));
  supervisor.stop();
}

TEST_F(DegradedTest, RecoveryKeepsJournalOrderAcrossManyRecords) {
  // Several lifecycles buffered while degraded must drain in logical
  // order: the restart replay accepts the journal (out-of-order records
  // would trip its "transition before submit" check).
  SessionSupervisor supervisor(dir_, quick_limits());
  supervisor.start();
  break_journal_writes();
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  {
    const auto submit = supervisor.submit(quick_spec(1, 1));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    first = submit.id;
  }
  {
    const auto submit = supervisor.submit(quick_spec(1, 2));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    second = submit.id;
  }
  (void)supervisor.wait_terminal(first);
  (void)supervisor.wait_terminal(second);
  fs_fault_clear();
  EXPECT_TRUE(wait_until([&] { return supervisor.healthy(); }));
  supervisor.stop();

  SessionSupervisor restarted(dir_, quick_limits());
  (void)restarted.recover();
  EXPECT_EQ(restarted.status(first).state, SessionState::kDone);
  EXPECT_EQ(restarted.status(second).state, SessionState::kDone);
}

TEST_F(DegradedTest, StatsCarriesPerTenantAccounting) {
  ServeLimits limits = quick_limits();
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  SessionSpec acme = quick_spec(1, 5);
  acme.tenant = "acme";
  const auto a = supervisor.submit(acme);
  ASSERT_EQ(a.admission, Admission::kAccepted);
  const auto b = supervisor.submit(quick_spec(1, 6));  // default tenant
  ASSERT_EQ(b.admission, Admission::kAccepted);
  (void)supervisor.wait_terminal(a.id);
  (void)supervisor.wait_terminal(b.id);

  const ServerStats stats = supervisor.stats();
  const TenantStats* acme_stats = nullptr;
  const TenantStats* default_stats = nullptr;
  for (const TenantStats& tenant : stats.tenants) {
    if (tenant.tenant == "acme") acme_stats = &tenant;
    if (tenant.tenant.empty() || tenant.tenant == "default") {
      default_stats = &tenant;
    }
  }
  ASSERT_NE(acme_stats, nullptr);
  ASSERT_NE(default_stats, nullptr);
  EXPECT_EQ(acme_stats->submitted, 1u);
  EXPECT_EQ(acme_stats->admitted, 1u);
  EXPECT_EQ(acme_stats->completed, 1u);
  EXPECT_GT(acme_stats->cpu_seconds, 0.0);
  EXPECT_EQ(default_stats->submitted, 1u);

  // A completed session seeds the EWMA, so the *next* rejection carries a
  // non-zero retry-after hint; estimated_wait_locked also feeds stats().
  EXPECT_GT(stats.estimated_wait_seconds, 0.0);
  supervisor.stop();
}

}  // namespace
}  // namespace stormtrack
