#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "serve/supervisor.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;
using Admission = SessionSupervisor::Admission;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_recover_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SessionSpec spec(int intervals, std::uint64_t seed = 33) {
    SessionSpec s;
    s.cores = 256;
    s.intervals = intervals;
    s.seed = seed;
    return s;
  }

  static void wait_progress(const SessionSupervisor& supervisor,
                            std::uint64_t id, int intervals) {
    while (supervisor.status(id).intervals_done < intervals) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  fs::path dir_;
};

/// The headline robustness guarantee: a daemon that dies mid-session and
/// restarts on the same state directory finishes the session with the
/// *same state fingerprint* as a daemon that was never interrupted.
TEST_F(RecoveryTest, InterruptedSessionResumesFingerprintIdentical) {
  constexpr int kIntervals = 8;

  // Reference: an uninterrupted run of the same spec.
  std::uint64_t reference_fingerprint = 0;
  {
    SessionSupervisor supervisor(dir_ / "reference", ServeLimits{});
    supervisor.start();
    const auto submit = supervisor.submit(spec(kIntervals));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    const SessionStatus done = supervisor.wait_terminal(submit.id);
    ASSERT_EQ(done.state, SessionState::kDone);
    reference_fingerprint = done.fingerprint;
    supervisor.stop();
  }

  const fs::path state = dir_ / "state";
  std::uint64_t id = 0;
  {
    // Life 1: start the session, stop the daemon after a couple of
    // intervals. stop() writes no terminal journal record for it —
    // graceful stop and SIGKILL recover through the same path (the
    // SIGKILL variant is exercised end-to-end by the daemon CI job).
    SessionSupervisor supervisor(state, ServeLimits{});
    supervisor.start();
    const auto submit = supervisor.submit(spec(kIntervals));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    id = submit.id;
    wait_progress(supervisor, id, 2);
    supervisor.stop();
    ASSERT_EQ(supervisor.status(id).state, SessionState::kInterrupted);
  }

  // Life 2: same state directory. The session surfaces as interrupted,
  // recover() requeues it, and it resumes from its checkpoints.
  SessionSupervisor supervisor(state, ServeLimits{});
  ASSERT_EQ(supervisor.status(id).state, SessionState::kInterrupted);
  const auto report = supervisor.recover();
  EXPECT_EQ(report.requeued, 1);
  EXPECT_EQ(report.terminal, 0);
  EXPECT_EQ(supervisor.status(id).state, SessionState::kQueued);
  supervisor.start();

  const SessionStatus done = supervisor.wait_terminal(id);
  EXPECT_EQ(done.state, SessionState::kDone);
  EXPECT_TRUE(done.resumed);
  EXPECT_GE(done.attempts, 2);
  EXPECT_EQ(done.intervals_done, kIntervals);
  EXPECT_EQ(done.fingerprint, reference_fingerprint);
  supervisor.stop();
}

TEST_F(RecoveryTest, QueuedSessionsSurviveRestartsToo) {
  ServeLimits limits;
  limits.max_active = 1;
  std::uint64_t running_id = 0;
  std::uint64_t queued_id = 0;
  {
    SessionSupervisor supervisor(dir_, limits);
    supervisor.start();
    const auto running = supervisor.submit(spec(10000, 1));
    const auto queued = supervisor.submit(spec(3, 2));
    ASSERT_EQ(running.admission, Admission::kAccepted);
    ASSERT_EQ(queued.admission, Admission::kAccepted);
    running_id = running.id;
    queued_id = queued.id;
    wait_progress(supervisor, running_id, 1);
    ASSERT_EQ(supervisor.status(queued_id).state, SessionState::kQueued);
    supervisor.stop();
  }

  SessionSupervisor supervisor(dir_, limits);
  const auto report = supervisor.recover();
  EXPECT_EQ(report.requeued, 2);
  supervisor.start();
  // Cancel the long one so the test ends promptly; the short queued one
  // must run to completion in its second daemon life.
  (void)supervisor.cancel(running_id, "test over");
  const SessionStatus queued_done = supervisor.wait_terminal(queued_id);
  EXPECT_EQ(queued_done.state, SessionState::kDone);
  EXPECT_EQ(queued_done.intervals_done, 3);
  const SessionStatus cancelled = supervisor.wait_terminal(running_id);
  EXPECT_EQ(cancelled.state, SessionState::kCancelled);
  supervisor.stop();
}

TEST_F(RecoveryTest, TerminalSessionsAreRememberedAndIdsContinue) {
  std::uint64_t done_fingerprint = 0;
  {
    SessionSupervisor supervisor(dir_, ServeLimits{});
    supervisor.start();
    const auto submit = supervisor.submit(spec(3));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    EXPECT_EQ(submit.id, 1u);
    done_fingerprint = supervisor.wait_terminal(submit.id).fingerprint;
    supervisor.stop();
  }

  SessionSupervisor supervisor(dir_, ServeLimits{});
  const auto report = supervisor.recover();
  EXPECT_EQ(report.terminal, 1);
  EXPECT_EQ(report.requeued, 0);
  const SessionStatus remembered = supervisor.status(1);
  EXPECT_EQ(remembered.state, SessionState::kDone);
  EXPECT_EQ(remembered.fingerprint, done_fingerprint);
  EXPECT_EQ(remembered.intervals_done, 3);

  // New sessions continue the id sequence instead of recycling id 1.
  supervisor.start();
  const auto next = supervisor.submit(spec(2));
  ASSERT_EQ(next.admission, Admission::kAccepted);
  EXPECT_EQ(next.id, 2u);
  (void)supervisor.wait_terminal(next.id);
  supervisor.stop();
}

TEST_F(RecoveryTest, RecoverOnFreshDirectoryIsANoop) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  const auto report = supervisor.recover();
  EXPECT_EQ(report.terminal, 0);
  EXPECT_EQ(report.requeued, 0);
}

}  // namespace
}  // namespace stormtrack
