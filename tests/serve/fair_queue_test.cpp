/// \file fair_queue_test.cpp
/// FairQueue semantics: lane order, aging credit, shed victim selection.
/// All tests drive time explicitly — no sleeps, no wall clock.

#include "serve/fair_queue.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace stormtrack {
namespace {

using Clock = FairQueue::Clock;

Clock::time_point t0() { return Clock::time_point{}; }

Clock::time_point at(double seconds) {
  return t0() + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(seconds));
}

TEST(FairQueueTest, PopsByPriorityThenFifoWithinLane) {
  FairQueue q(FairQueueConfig{/*aging_seconds=*/0.0});
  q.push(1, 0, t0());
  q.push(2, 5, t0());
  q.push(3, 5, t0());
  q.push(4, 2, t0());
  EXPECT_EQ(q.pop_best(t0()), 2u);  // highest priority, earliest pushed
  EXPECT_EQ(q.pop_best(t0()), 3u);
  EXPECT_EQ(q.pop_best(t0()), 4u);
  EXPECT_EQ(q.pop_best(t0()), 1u);
  EXPECT_FALSE(q.pop_best(t0()).has_value());
  EXPECT_TRUE(q.empty());
}

TEST(FairQueueTest, AgingLiftsAStarvedLowPriorityEntry) {
  // priority 0 entry waits while priority 3 entries keep arriving. With
  // aging_seconds = 1, after 3 seconds its effective priority reaches
  // 0 + 3, tying fresh priority-3 work — and ties go to the oldest entry.
  FairQueue q(FairQueueConfig{/*aging_seconds=*/1.0});
  q.push(1, 0, t0());
  q.push(2, 3, at(2.5));
  EXPECT_EQ(q.pop_best(at(2.5)), 2u);  // credit 2 so far: still loses
  q.push(3, 3, at(3.5));
  EXPECT_EQ(q.pop_best(at(3.5)), 1u);  // credit 3 ties, age breaks it
  EXPECT_EQ(q.pop_best(at(3.5)), 3u);
}

TEST(FairQueueTest, ZeroAgingNeverLiftsPriority) {
  FairQueue q(FairQueueConfig{/*aging_seconds=*/0.0});
  q.push(1, 0, t0());
  const FairQueue::Entry entry{1, 0, t0()};
  EXPECT_EQ(q.effective_priority(entry, at(1e6)), 0);
}

TEST(FairQueueTest, ShedVictimIsLowestEffectiveThenNewest) {
  FairQueue q(FairQueueConfig{/*aging_seconds=*/0.0});
  q.push(1, 0, at(0.0));
  q.push(2, 0, at(1.0));  // same priority, newer → preferred victim
  q.push(3, 7, at(2.0));
  const auto victim = q.shed_victim(at(2.0));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);
}

TEST(FairQueueTest, AgedEntryOutranksFreshVictim) {
  // With aging, an old priority-0 entry can stop being the shed victim:
  // a fresh priority-1 entry has less effective priority than a
  // priority-0 entry that waited 3 seconds (credit 3).
  FairQueue q(FairQueueConfig{/*aging_seconds=*/1.0});
  q.push(1, 0, at(0.0));
  q.push(2, 1, at(3.0));
  const auto victim = q.shed_victim(at(3.0));
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->id, 2u);  // effective 1 vs the aged entry's 3
}

TEST(FairQueueTest, RemoveDropsOnlyTheNamedId) {
  FairQueue q;
  q.push(1, 0, t0());
  q.push(2, 0, t0());
  q.push(3, 1, t0());
  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2));  // already gone
  EXPECT_FALSE(q.remove(99));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_best(t0()), 3u);
  EXPECT_EQ(q.pop_best(t0()), 1u);
}

TEST(FairQueueTest, EntriesSnapshotCoversAllLanes) {
  FairQueue q;
  q.push(1, 2, t0());
  q.push(2, 0, t0());
  q.push(3, 2, t0());
  const auto entries = q.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Lane order (ascending priority), FIFO within lanes.
  EXPECT_EQ(entries[0].id, 2u);
  EXPECT_EQ(entries[1].id, 1u);
  EXPECT_EQ(entries[2].id, 3u);
}

TEST(FairQueueTest, BoundedStarvationUnderSustainedHighPriorityLoad) {
  // The fairness property the load bench gates end to end, in miniature:
  // one priority-0 session and a stream of priority-9 submits, one pop
  // per second. The low-priority session must be popped within
  // 9 * aging_seconds + 1 pops.
  FairQueue q(FairQueueConfig{/*aging_seconds=*/1.0});
  q.push(1000, 0, at(0.0));
  bool popped_low = false;
  int pops_until_low = 0;
  std::uint64_t next_id = 1;
  for (int second = 1; second <= 12 && !popped_low; ++second) {
    q.push(next_id++, 9, at(static_cast<double>(second)));
    const auto id = q.pop_best(at(static_cast<double>(second)));
    ASSERT_TRUE(id.has_value());
    ++pops_until_low;
    popped_low = *id == 1000u;
  }
  EXPECT_TRUE(popped_low);
  EXPECT_LE(pops_until_low, 10);
}

}  // namespace
}  // namespace stormtrack
