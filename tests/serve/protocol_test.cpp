#include "serve/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/crc32.hpp"
#include "serve/session.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

/// A connected AF_UNIX stream pair; [0] and [1] are the two ends.
class SocketPair {
 public:
  SocketPair() {
    int fds[2] = {-1, -1};
    ST_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    a_ = fds[0];
    b_ = fds[1];
  }
  ~SocketPair() {
    close_fd(a_);
    close_fd(b_);
  }
  [[nodiscard]] int a() const { return a_; }
  [[nodiscard]] int b() const { return b_; }
  void close_a() {
    close_fd(a_);
    a_ = -1;
  }

 private:
  int a_ = -1;
  int b_ = -1;
};

TEST(ProtocolFrameTest, RoundTripsTypedPayloads) {
  SocketPair pair;
  BinaryWriter payload;
  payload.put_u64(42);
  payload.put_string("hello");
  send_frame(pair.a(), MsgType::kSubmit, payload);
  send_frame(pair.a(), MsgType::kList);  // empty payload

  std::optional<Frame> first = recv_frame(pair.b());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kSubmit);
  BinaryReader r = first->reader();
  EXPECT_EQ(r.get_u64("x"), 42u);
  EXPECT_EQ(r.get_string("s"), "hello");

  std::optional<Frame> second = recv_frame(pair.b());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kList);
  EXPECT_TRUE(second->payload.empty());
}

TEST(ProtocolFrameTest, CleanEofBetweenFramesReturnsNullopt) {
  SocketPair pair;
  send_frame(pair.a(), MsgType::kHello, BinaryWriter{});
  pair.close_a();
  EXPECT_TRUE(recv_frame(pair.b()).has_value());
  EXPECT_FALSE(recv_frame(pair.b()).has_value());
}

TEST(ProtocolFrameTest, CorruptedPayloadFailsCrc) {
  SocketPair pair;
  // Build a valid frame by hand, then flip one payload bit.
  BinaryWriter body;
  body.put_u64(7);
  BinaryWriter wire;
  wire.put_u32(kFrameMagic);
  wire.put_u8(static_cast<std::uint8_t>(MsgType::kStatus));
  wire.put_u32(8);
  std::vector<std::byte> bytes(wire.bytes().begin(), wire.bytes().end());
  auto payload = body.bytes();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  bytes[bytes.size() - 1] ^= std::byte{0x01};
  const std::byte type_byte{static_cast<std::uint8_t>(MsgType::kStatus)};
  std::uint32_t crc = crc32_update(0, {&type_byte, 1});
  crc = crc32_update(crc, payload);  // CRC of the *uncorrupted* payload
  BinaryWriter tail;
  tail.put_u32(crc);
  bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());
  ASSERT_EQ(::send(pair.a(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  try {
    (void)recv_frame(pair.b());
    FAIL() << "corrupted frame was accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(ProtocolFrameTest, BadMagicIsRejected) {
  SocketPair pair;
  BinaryWriter wire;
  wire.put_u32(0xDEADBEEFu);
  wire.put_u8(1);
  wire.put_u32(0);
  auto bytes = wire.bytes();
  ASSERT_EQ(::send(pair.a(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  EXPECT_THROW((void)recv_frame(pair.b()), CheckError);
}

TEST(ProtocolFrameTest, OversizedFrameIsRejectedWithoutAllocating) {
  SocketPair pair;
  BinaryWriter wire;
  wire.put_u32(kFrameMagic);
  wire.put_u8(1);
  wire.put_u32(kMaxFramePayload + 1);  // liar: no such payload follows
  auto bytes = wire.bytes();
  ASSERT_EQ(::send(pair.a(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  try {
    (void)recv_frame(pair.b());
    FAIL() << "oversized frame was accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("limit"), std::string::npos);
  }
}

TEST(ProtocolFrameTest, EofMidFrameThrows) {
  SocketPair pair;
  BinaryWriter wire;
  wire.put_u32(kFrameMagic);
  wire.put_u8(1);
  wire.put_u32(100);  // promises 100 payload bytes, delivers none
  auto bytes = wire.bytes();
  ASSERT_EQ(::send(pair.a(), bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  pair.close_a();
  EXPECT_THROW((void)recv_frame(pair.b()), CheckError);
}

TEST(SessionCodecTest, SpecRoundTrips) {
  SessionSpec spec;
  spec.machine = "dragonfly";
  spec.cores = 512;
  spec.strategy = "dynamic";
  spec.workload = "particles";
  spec.intervals = 17;
  spec.seed = 0xFEEDFACEull;
  spec.priority = -3;
  spec.deadline_seconds = 2.5;
  BinaryWriter w;
  put_session_spec(w, spec);
  BinaryReader r(w.bytes());
  const SessionSpec back = get_session_spec(r);
  EXPECT_EQ(back.machine, spec.machine);
  EXPECT_EQ(back.cores, spec.cores);
  EXPECT_EQ(back.strategy, spec.strategy);
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.intervals, spec.intervals);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_EQ(back.deadline_seconds, spec.deadline_seconds);
  EXPECT_TRUE(r.exhausted());
}

TEST(SessionCodecTest, StatusAndEventRoundTrip) {
  SessionStatus status;
  status.id = 9;
  status.state = SessionState::kQuarantined;
  status.attempts = 3;
  status.intervals_done = 12;
  status.next_event_seq = 40;
  status.fingerprint = 0xABCDull;
  status.resumed = true;
  status.error = "it broke";
  BinaryWriter w;
  put_session_status(w, status);
  BinaryReader r(w.bytes());
  const SessionStatus back = get_session_status(r);
  EXPECT_EQ(back.id, 9u);
  EXPECT_EQ(back.state, SessionState::kQuarantined);
  EXPECT_EQ(back.attempts, 3);
  EXPECT_EQ(back.intervals_done, 12);
  EXPECT_EQ(back.next_event_seq, 40u);
  EXPECT_EQ(back.fingerprint, 0xABCDull);
  EXPECT_TRUE(back.resumed);
  EXPECT_EQ(back.error, "it broke");

  SessionEvent event;
  event.seq = 5;
  event.interval = 4;
  event.chosen = "diffusion";
  event.exec_seconds = 1.25;
  event.redist_seconds = 0.5;
  event.moved_bytes = 1 << 20;
  event.inserted = 1;
  event.deleted = 2;
  event.retained = 3;
  BinaryWriter ew;
  put_session_event(ew, event);
  BinaryReader er(ew.bytes());
  const SessionEvent eback = get_session_event(er);
  EXPECT_EQ(eback.seq, 5u);
  EXPECT_EQ(eback.interval, 4);
  EXPECT_EQ(eback.chosen, "diffusion");
  EXPECT_EQ(eback.exec_seconds, 1.25);
  EXPECT_EQ(eback.moved_bytes, 1 << 20);
  EXPECT_EQ(eback.retained, 3);
}

TEST(ServerStatsCodecTest, RoundTripsEveryFieldIncludingThePoolBlock) {
  ServerStats stats;
  stats.active = 3;
  stats.queued = 7;
  stats.healthy = false;
  stats.journal_pending = 2;
  stats.journal_write_failures = 5;
  stats.estimated_wait_seconds = 1.5;
  TenantStats tenant;
  tenant.tenant = "ops";
  tenant.submitted = 10;
  tenant.admitted = 9;
  tenant.rejected = 1;
  tenant.shed = 2;
  tenant.completed = 8;
  tenant.cpu_seconds = 3.25;
  stats.tenants.push_back(tenant);
  stats.pool_threads = 4;
  stats.pool_executing = 2;
  stats.pool_runnable = 5;
  stats.pool_delayed = 1;
  stats.pool_batches = 123;
  stats.pricing_shared_hits = 30;
  stats.pricing_shared_misses = 10;

  BinaryWriter w;
  put_server_stats(w, stats);
  BinaryReader r(w.bytes());
  const ServerStats back = get_server_stats(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.active, 3u);
  EXPECT_EQ(back.queued, 7u);
  EXPECT_FALSE(back.healthy);
  EXPECT_EQ(back.journal_pending, 2u);
  EXPECT_EQ(back.journal_write_failures, 5u);
  EXPECT_EQ(back.estimated_wait_seconds, 1.5);
  ASSERT_EQ(back.tenants.size(), 1u);
  EXPECT_EQ(back.tenants[0].tenant, "ops");
  EXPECT_EQ(back.tenants[0].completed, 8u);
  EXPECT_EQ(back.tenants[0].cpu_seconds, 3.25);
  EXPECT_EQ(back.pool_threads, 4u);
  EXPECT_EQ(back.pool_executing, 2u);
  EXPECT_EQ(back.pool_runnable, 5u);
  EXPECT_EQ(back.pool_delayed, 1u);
  EXPECT_EQ(back.pool_batches, 123u);
  EXPECT_EQ(back.pricing_shared_hits, 30u);
  EXPECT_EQ(back.pricing_shared_misses, 10u);
  EXPECT_DOUBLE_EQ(back.pricing_shared_hit_rate(), 0.75);
}

TEST(ServerStatsCodecTest, DecodesAPayloadWithoutThePoolBlockToZeros) {
  // A stats payload from a daemon that predates the shared-pool block
  // ends at the tenant list; the decoder must yield zeros, not throw.
  // Still protocol v2 — this is what keeps the extension a non-break.
  BinaryWriter w;
  w.put_u64(1);   // active
  w.put_u64(2);   // queued
  w.put_u8(1);    // healthy
  w.put_u64(0);   // journal_pending
  w.put_u64(0);   // journal_write_failures
  w.put_f64(0.5);  // estimated_wait_seconds
  w.put_count(0);  // no tenants — and nothing after them
  BinaryReader r(w.bytes());
  const ServerStats back = get_server_stats(r);
  EXPECT_EQ(back.active, 1u);
  EXPECT_EQ(back.queued, 2u);
  EXPECT_TRUE(back.healthy);
  EXPECT_EQ(back.pool_threads, 0u);
  EXPECT_EQ(back.pool_executing, 0u);
  EXPECT_EQ(back.pool_runnable, 0u);
  EXPECT_EQ(back.pool_delayed, 0u);
  EXPECT_EQ(back.pool_batches, 0u);
  EXPECT_EQ(back.pricing_shared_hits, 0u);
  EXPECT_EQ(back.pricing_shared_misses, 0u);
  EXPECT_DOUBLE_EQ(back.pricing_shared_hit_rate(), 0.0);
}

TEST(SessionSpecValidationTest, DefaultSpecIsValid) {
  EXPECT_TRUE(session_spec_problems(SessionSpec{}).empty());
}

TEST(SessionSpecValidationTest, EveryProblemIsNamed) {
  SessionSpec spec;
  spec.machine = "myrinet";
  spec.strategy = "telepathy";
  spec.workload = "voxels";
  spec.cores = 0;
  spec.intervals = -1;
  spec.deadline_seconds = -2.0;
  const std::vector<std::string> problems = session_spec_problems(spec);
  EXPECT_EQ(problems.size(), 6u);
  EXPECT_NE(problems[0].find("myrinet"), std::string::npos);
  EXPECT_NE(problems[1].find("telepathy"), std::string::npos);
  EXPECT_NE(problems[2].find("voxels"), std::string::npos);
}

TEST(SessionStateTest, TerminalityMatchesTheStateMachine) {
  EXPECT_FALSE(is_terminal(SessionState::kQueued));
  EXPECT_FALSE(is_terminal(SessionState::kRunning));
  EXPECT_FALSE(is_terminal(SessionState::kInterrupted));
  EXPECT_TRUE(is_terminal(SessionState::kDone));
  EXPECT_TRUE(is_terminal(SessionState::kFailed));
  EXPECT_TRUE(is_terminal(SessionState::kQuarantined));
  EXPECT_TRUE(is_terminal(SessionState::kCancelled));
  EXPECT_TRUE(is_terminal(SessionState::kShed));
}

TEST(UnixSocketTest, ListenConnectAndReplaceStaleSocket) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() /
      ("st_proto_" + std::to_string(::getpid()) + ".sock");
  const int listener = listen_unix(path, 4);
  ASSERT_GE(listener, 0);

  std::thread server([&] {
    const int conn = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    std::optional<Frame> frame = recv_frame(conn);
    ASSERT_TRUE(frame.has_value());
    send_frame(conn, MsgType::kHelloOk, BinaryWriter{});
    close_fd(conn);
  });
  const int client = connect_unix(path);
  send_frame(client, MsgType::kHello, BinaryWriter{});
  EXPECT_TRUE(recv_frame(client).has_value());
  close_fd(client);
  server.join();
  close_fd(listener);

  // Rebinding over the dead socket file must succeed (daemon restart
  // after SIGKILL leaves one behind).
  const int again = listen_unix(path, 4);
  EXPECT_GE(again, 0);
  close_fd(again);
  fs::remove(path);
}

TEST(UnixSocketTest, ConnectToNothingMentionsThePath) {
  try {
    (void)connect_unix("/tmp/st-no-such-daemon.sock");
    FAIL() << "connect to nothing succeeded";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("st-no-such-daemon"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace stormtrack
