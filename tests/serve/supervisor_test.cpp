#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "ckpt/checkpoint.hpp"
#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;
using Admission = SessionSupervisor::Admission;

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_super_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SessionSpec quick_spec(int intervals, std::uint64_t seed = 11) {
    SessionSpec spec;
    spec.cores = 256;
    spec.intervals = intervals;
    spec.seed = seed;
    return spec;
  }

  /// Spec that fails at every attempt: dragonfly rejects a core count
  /// that does not fit its group structure, and the supervisor only
  /// validates names at admission.
  static SessionSpec doomed_spec() {
    SessionSpec spec;
    spec.machine = "dragonfly";
    spec.cores = 100;
    spec.intervals = 3;
    return spec;
  }

  /// Poll until \p id reports at least \p intervals completed.
  static void wait_progress(const SessionSupervisor& supervisor,
                            std::uint64_t id, int intervals) {
    while (supervisor.status(id).intervals_done < intervals) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  fs::path dir_;
};

TEST_F(SupervisorTest, RunsSessionsToDoneWithTheRealPipelineFingerprint) {
  ServeLimits limits;
  limits.max_active = 2;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  const auto first = supervisor.submit(quick_spec(3, 11));
  const auto second = supervisor.submit(quick_spec(3, 22));
  ASSERT_EQ(first.admission, Admission::kAccepted);
  ASSERT_EQ(second.admission, Admission::kAccepted);
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(second.id, 2u);

  const SessionStatus a = supervisor.wait_terminal(first.id);
  const SessionStatus b = supervisor.wait_terminal(second.id);
  EXPECT_EQ(a.state, SessionState::kDone);
  EXPECT_EQ(b.state, SessionState::kDone);
  EXPECT_EQ(a.intervals_done, 3);
  EXPECT_EQ(a.attempts, 1);
  EXPECT_NE(a.fingerprint, 0u);
  EXPECT_NE(a.fingerprint, b.fingerprint);  // different seeds, states

  // The supervisor's result is pinned to the library run it claims to
  // be: an inline CoupledSimulation under the same spec must land on the
  // same fingerprint.
  const SessionSpec spec = quick_spec(3, 11);
  Machine machine = Machine::by_name(spec.machine, spec.cores);
  const ModelStack models;
  CoupledConfig cfg;
  cfg.scenario.num_intervals = spec.intervals;
  cfg.scenario.seed = spec.seed;
  cfg.manager.strategy = spec.strategy;
  cfg.workload = spec.workload;
  CoupledSimulation sim(machine, models.model, models.truth, cfg);
  for (int i = 0; i < spec.intervals; ++i) (void)sim.advance();
  EXPECT_EQ(a.fingerprint, sim.state_fingerprint());

  EXPECT_EQ(supervisor.metrics().get("server.completed").count, 2);
  supervisor.stop();
}

TEST_F(SupervisorTest, StreamsEventsInOrder) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  supervisor.start();
  const auto submit = supervisor.submit(quick_spec(4));
  ASSERT_EQ(submit.admission, Admission::kAccepted);

  std::uint64_t seq = 0;
  std::vector<SessionEvent> events;
  while (true) {
    const auto batch = supervisor.wait_events(submit.id, seq, 1.0);
    for (const SessionEvent& event : batch.events) {
      events.push_back(event);
      seq = event.seq + 1;
    }
    if (batch.terminal) break;
  }
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].interval, static_cast<int>(i));
    EXPECT_FALSE(events[i].chosen.empty());
  }
  supervisor.stop();
}

TEST_F(SupervisorTest, AdmissionBoundsQueueAndRejectsBusy) {
  ServeLimits limits;
  limits.max_active = 1;
  limits.max_queued = 2;
  SessionSupervisor supervisor(dir_, limits);
  // Deliberately not started: nothing drains the queue, so the bounds
  // are exact and deterministic.
  EXPECT_EQ(supervisor.submit(quick_spec(2)).admission, Admission::kAccepted);
  EXPECT_EQ(supervisor.submit(quick_spec(2)).admission, Admission::kAccepted);

  const auto third = supervisor.submit(quick_spec(2));
  EXPECT_EQ(third.admission, Admission::kRejectedBusy);
  EXPECT_EQ(third.queued, 2);
  EXPECT_NE(third.reason.find("at capacity"), std::string::npos);

  // A misbehaving client hammering submit never grows state: every extra
  // submission bounces and the queue stays at its bound.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(supervisor.submit(quick_spec(2)).admission,
              Admission::kRejectedBusy);
  }
  EXPECT_EQ(supervisor.queued_count(), 2);
  EXPECT_EQ(supervisor.metrics().get("server.rejected_busy").count, 51);
  EXPECT_EQ(supervisor.list().size(), 2u);
}

TEST_F(SupervisorTest, HigherPrioritySubmitShedsTheLowestQueued) {
  ServeLimits limits;
  limits.max_active = 1;
  limits.max_queued = 2;
  SessionSupervisor supervisor(dir_, limits);

  SessionSpec low = quick_spec(2);
  low.priority = 1;
  SessionSpec lower = quick_spec(2);
  lower.priority = 0;
  const auto first = supervisor.submit(low);
  const auto second = supervisor.submit(lower);

  SessionSpec urgent = quick_spec(2);
  urgent.priority = 7;
  const auto third = supervisor.submit(urgent);
  ASSERT_EQ(third.admission, Admission::kAccepted);

  // The priority-0 session was shed; the queue is still at its bound.
  EXPECT_EQ(supervisor.status(second.id).state, SessionState::kShed);
  EXPECT_EQ(supervisor.status(first.id).state, SessionState::kQueued);
  EXPECT_EQ(supervisor.queued_count(), 2);
  EXPECT_EQ(supervisor.metrics().get("server.shed_sessions").count, 1);

  // Equal priority does not shed: shedding only ever trades up.
  SessionSpec equal = quick_spec(2);
  equal.priority = 1;
  EXPECT_EQ(supervisor.submit(equal).admission, Admission::kRejectedBusy);
}

TEST_F(SupervisorTest, InvalidSpecsNeverReachTheQueue) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  SessionSpec bad = quick_spec(2);
  bad.machine = "myrinet";
  bad.intervals = 0;
  const auto result = supervisor.submit(bad);
  EXPECT_EQ(result.admission, Admission::kInvalid);
  EXPECT_NE(result.reason.find("myrinet"), std::string::npos);
  EXPECT_NE(result.reason.find("intervals"), std::string::npos);
  EXPECT_EQ(supervisor.queued_count(), 0);
  EXPECT_TRUE(supervisor.list().empty());
}

TEST_F(SupervisorTest, CancelQueuedAndRunningSessions) {
  ServeLimits limits;
  limits.max_active = 1;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  const auto running = supervisor.submit(quick_spec(10000));
  ASSERT_EQ(running.admission, Admission::kAccepted);
  const auto queued = supervisor.submit(quick_spec(5));
  ASSERT_EQ(queued.admission, Admission::kAccepted);

  // Cancelling the queued session is immediate.
  const SessionStatus queued_status =
      supervisor.cancel(queued.id, "not needed");
  EXPECT_EQ(queued_status.state, SessionState::kCancelled);
  EXPECT_EQ(queued_status.error, "not needed");

  // Cancelling the running one lands at the next adaptation point.
  wait_progress(supervisor, running.id, 1);
  (void)supervisor.cancel(running.id, "stop please");
  const SessionStatus final_status = supervisor.wait_terminal(running.id);
  EXPECT_EQ(final_status.state, SessionState::kCancelled);
  EXPECT_NE(final_status.error.find("stop please"), std::string::npos);
  EXPECT_LT(final_status.intervals_done, 10000);
  EXPECT_EQ(supervisor.metrics().get("server.cancelled").count, 2);

  EXPECT_THROW((void)supervisor.cancel(999, "x"), CheckError);
  supervisor.stop();
}

TEST_F(SupervisorTest, DeadlineFailsTheSessionPromptly) {
  ServeLimits limits;
  limits.session_deadline_seconds = 0.2;
  limits.watchdog_period_seconds = 0.02;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  const auto submit = supervisor.submit(quick_spec(100000));
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  const auto start = std::chrono::steady_clock::now();
  const SessionStatus status = supervisor.wait_terminal(submit.id);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(status.state, SessionState::kFailed);
  EXPECT_NE(status.error.find("deadline"), std::string::npos);
  EXPECT_LT(elapsed, 10.0);  // generous for sanitizer builds
  EXPECT_EQ(supervisor.metrics().get("server.deadline_failures").count, 1);
  supervisor.stop();
}

TEST_F(SupervisorTest, RepeatedFailuresQuarantineAfterRetries) {
  ServeLimits limits;
  limits.max_attempts = 2;
  limits.backoff_seconds = 0.001;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  const auto submit = supervisor.submit(doomed_spec());
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  const SessionStatus status = supervisor.wait_terminal(submit.id);
  EXPECT_EQ(status.state, SessionState::kQuarantined);
  EXPECT_EQ(status.attempts, 2);
  EXPECT_FALSE(status.error.empty());
  EXPECT_EQ(supervisor.metrics().get("server.retries").count, 1);
  EXPECT_EQ(supervisor.metrics().get("server.quarantined").count, 1);
  supervisor.stop();
}

TEST_F(SupervisorTest, DeadlineDuringBackoffCancelsTheSleepPromptly) {
  ServeLimits limits;
  limits.max_attempts = 3;
  limits.backoff_seconds = 30.0;  // would dwarf the deadline if slept out
  limits.session_deadline_seconds = 0.3;
  limits.watchdog_period_seconds = 0.02;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  const auto submit = supervisor.submit(doomed_spec());
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  const auto start = std::chrono::steady_clock::now();
  const SessionStatus status = supervisor.wait_terminal(submit.id);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(status.state, SessionState::kFailed);
  EXPECT_NE(status.error.find("backoff"), std::string::npos);
  // The 30 s backoff must have been interrupted by the 0.3 s budget, not
  // slept to completion.
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(supervisor.metrics().get("server.deadline_failures").count, 1);
  supervisor.stop();
}

TEST_F(SupervisorTest, SubmitWakesALaneEvenWithTheWatchdogParked) {
  ServeLimits limits;
  limits.max_active = 1;
  // Park the watchdog in an hour-long sleep. A submit emits exactly one
  // notification, which must reach the single lane — the watchdog sleeps
  // on its own condition variable and cannot swallow it. Before the split
  // this hung ~half the time; run a few rounds so a regression is loud.
  limits.watchdog_period_seconds = 3600.0;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  for (int round = 0; round < 4; ++round) {
    const auto submit =
        supervisor.submit(quick_spec(1, 100 + static_cast<std::uint64_t>(round)));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!is_terminal(supervisor.status(submit.id).state)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "no lane woke for session " << submit.id
          << " — the submit notification was lost";
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(supervisor.status(submit.id).state, SessionState::kDone);
  }
  // stop() must also wake the parked watchdog promptly.
  const auto stop_start = std::chrono::steady_clock::now();
  supervisor.stop();
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          stop_start)
                .count(),
            10.0);
}

TEST_F(SupervisorTest, StopLeavesRunningSessionsInterruptedWithoutTerminalRecord) {
  ServeLimits limits;
  limits.max_active = 1;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();
  const auto submit = supervisor.submit(quick_spec(10000));
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  wait_progress(supervisor, submit.id, 1);
  supervisor.stop();
  EXPECT_EQ(supervisor.status(submit.id).state, SessionState::kInterrupted);

  // The journal confirms the absence of a terminal record: replaying it
  // shows the session still running — exactly what crash recovery keys on.
  SessionJournal journal(dir_ / "sessions.stjl", true);
  EXPECT_EQ(journal.replayed().at(submit.id).state, SessionState::kRunning);
}

}  // namespace
}  // namespace stormtrack
