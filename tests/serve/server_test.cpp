#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name());
    dir_ = fs::temp_directory_path() / ("st_server_" + name);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // Socket paths must fit sun_path (~107 chars): keep them short and
    // keyed by pid so parallel ctest jobs never collide.
    socket_ = fs::temp_directory_path() /
              ("st_srv_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++) + ".sock");
  }
  void TearDown() override {
    fs::remove_all(dir_);
    std::error_code ignored;
    fs::remove(socket_, ignored);
  }

  static SessionSpec spec(int intervals) {
    SessionSpec s;
    s.cores = 256;
    s.intervals = intervals;
    return s;
  }

  fs::path dir_;
  fs::path socket_;
  static int counter_;
};

int ServerTest::counter_ = 0;

TEST_F(ServerTest, SubmitAttachAndReattachOverTheSocket) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  supervisor.start();
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();

  ClientConnection client(socket_);
  const auto reply = client.submit(spec(3));
  ASSERT_TRUE(reply.accepted);
  EXPECT_EQ(reply.id, 1u);

  std::vector<SessionEvent> events;
  const SessionStatus done = client.attach(
      reply.id, 0, [&](const SessionEvent& e) { events.push_back(e); });
  EXPECT_EQ(done.state, SessionState::kDone);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].interval, 2);
  EXPECT_EQ(done.fingerprint, supervisor.status(reply.id).fingerprint);

  // Detach/reattach: a *new* connection resumes the stream from any seq —
  // including after the session finished.
  ClientConnection second(socket_);
  std::vector<SessionEvent> tail;
  const SessionStatus again = second.attach(
      reply.id, 1, [&](const SessionEvent& e) { tail.push_back(e); });
  EXPECT_EQ(again.state, SessionState::kDone);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 1u);

  const std::vector<SessionStatus> sessions = second.list();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].state, SessionState::kDone);

  server.stop();
  supervisor.stop();
}

TEST_F(ServerTest, RejectedBusyTravelsTheWire) {
  ServeLimits limits;
  limits.max_queued = 0;
  SessionSupervisor supervisor(dir_, limits);  // not started: queue fills
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();

  ClientConnection client(socket_);
  const auto reply = client.submit(spec(2));
  EXPECT_FALSE(reply.accepted);
  EXPECT_NE(reply.reason.find("at capacity"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, ErrorsForUnknownIdsAndInvalidSpecs) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();

  ClientConnection client(socket_);
  try {
    (void)client.status(404);
    FAIL() << "status for unknown id succeeded";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("404"), std::string::npos);
  }

  SessionSpec bad = spec(2);
  bad.workload = "voxels";
  try {
    (void)client.submit(bad);
    FAIL() << "invalid spec accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("voxels"), std::string::npos);
  }
  server.stop();
}

TEST_F(ServerTest, GarbageOnOneConnectionDoesNotHurtOthers) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();

  // A client that speaks nonsense gets dropped...
  const int raw = connect_unix(socket_);
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(raw, junk, sizeof(junk), 0), 0);
  char buffer[64];
  // ...the server closes on us (recv sees EOF eventually).
  while (::recv(raw, buffer, sizeof(buffer), 0) > 0) {
  }
  close_fd(raw);

  // ...and the daemon still serves well-formed clients.
  ClientConnection client(socket_);
  const auto reply = client.submit(spec(2));
  EXPECT_TRUE(reply.accepted);
  server.stop();
  supervisor.stop();
}

TEST_F(ServerTest, ShutdownRequestIsObservable) {
  SessionSupervisor supervisor(dir_, ServeLimits{});
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();
  EXPECT_FALSE(server.shutdown_requested());
  {
    ClientConnection client(socket_);
    client.shutdown_server();
  }
  EXPECT_TRUE(server.shutdown_requested());
  server.wait_shutdown_requested();  // must not block
  server.stop();
}

TEST_F(ServerTest, CancelOverTheWire) {
  ServeLimits limits;
  limits.max_active = 1;
  SessionSupervisor supervisor(dir_, limits);  // not started: stays queued
  SessionServer server(supervisor, ServerConfig{.socket_path = socket_});
  server.start();

  ClientConnection client(socket_);
  const auto reply = client.submit(spec(2));
  ASSERT_TRUE(reply.accepted);
  const SessionStatus cancelled = client.cancel(reply.id);
  EXPECT_EQ(cancelled.state, SessionState::kCancelled);
  EXPECT_EQ(client.status(reply.id).state, SessionState::kCancelled);
  server.stop();
}

}  // namespace
}  // namespace stormtrack
