/// Cooperative shared-pool scheduling (ServeLimits::pool_threads > 0):
/// sessions are tasks that yield at adaptation points, max_active is an
/// admission bound rather than a thread count, results stay byte-identical
/// to serial/lane execution on any pool width, retries park instead of
/// sleeping a thread, the cross-session pricing cache proves its sharing,
/// and the executor nesting hazard is rejected at construction.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "core/machine.hpp"
#include "serve/supervisor.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;
using Admission = SessionSupervisor::Admission;

class PoolSupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_pool_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static SessionSpec quick_spec(int intervals, std::uint64_t seed = 11) {
    SessionSpec spec;
    spec.cores = 256;
    spec.intervals = intervals;
    spec.seed = seed;
    return spec;
  }

  /// Spec that fails at every attempt: dragonfly rejects a core count
  /// that does not fit its group structure, and the supervisor only
  /// validates names at admission.
  static SessionSpec doomed_spec() {
    SessionSpec spec;
    spec.machine = "dragonfly";
    spec.cores = 100;
    spec.intervals = 3;
    return spec;
  }

  static ServeLimits pool_limits(int pool_threads, int max_active) {
    ServeLimits limits;
    limits.pool_threads = pool_threads;
    limits.max_active = max_active;
    limits.max_queued = 64;
    limits.watchdog_period_seconds = 0.005;
    return limits;
  }

  /// The library-level reference run: fingerprint of \p spec executed
  /// inline, serially, with no caches shared with anything.
  static std::uint64_t serial_fingerprint(const SessionSpec& spec) {
    Machine machine = Machine::by_name(spec.machine, spec.cores);
    const ModelStack models;
    CoupledConfig cfg;
    cfg.scenario.num_intervals = spec.intervals;
    cfg.scenario.seed = spec.seed;
    cfg.manager.strategy = spec.strategy;
    cfg.workload = spec.workload;
    CoupledSimulation sim(machine, models.model, models.truth, cfg);
    for (int i = 0; i < spec.intervals; ++i) (void)sim.advance();
    return sim.state_fingerprint();
  }

  /// Poll until \p id reports at least \p intervals completed.
  static void wait_progress(const SessionSupervisor& supervisor,
                            std::uint64_t id, int intervals) {
    while (supervisor.status(id).intervals_done < intervals) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  fs::path dir_;
};

TEST_F(PoolSupervisorTest, FingerprintsMatchSerialOnEveryPoolWidth) {
  // The cooperative-yield determinism suite: the same three sessions land
  // on the same per-session fingerprints whether sessions own lanes
  // (serial reference) or multiplex onto 1, 2, or 8 pool threads.
  const std::vector<SessionSpec> specs = {quick_spec(3, 11), quick_spec(3, 22),
                                          quick_spec(2, 33)};
  std::vector<std::uint64_t> reference;
  reference.reserve(specs.size());
  for (const SessionSpec& spec : specs) {
    reference.push_back(serial_fingerprint(spec));
  }

  for (const int width : {1, 2, 8}) {
    SessionSupervisor supervisor(
        dir_ / ("w" + std::to_string(width)), pool_limits(width, 8));
    supervisor.start();
    std::vector<std::uint64_t> ids;
    ids.reserve(specs.size());
    for (const SessionSpec& spec : specs) {
      const auto submit = supervisor.submit(spec);
      ASSERT_EQ(submit.admission, Admission::kAccepted);
      ids.push_back(submit.id);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const SessionStatus status = supervisor.wait_terminal(ids[i]);
      EXPECT_EQ(status.state, SessionState::kDone);
      EXPECT_EQ(status.fingerprint, reference[i])
          << "pool width " << width << ", session " << i;
      EXPECT_EQ(status.attempts, 1);
    }
    supervisor.stop();
  }
}

TEST_F(PoolSupervisorTest, MaxActiveIsAnAdmissionBoundNotAThreadCount) {
  // Twelve sessions live at once on a single worker thread: under lane
  // scheduling this concurrency would require twelve threads. Round-robin
  // slicing keeps all twelve active until the first one finishes, so the
  // all-admitted snapshot is guaranteed to be observable.
  SessionSupervisor supervisor(dir_, pool_limits(1, 12));
  supervisor.start();

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 12; ++i) {
    const auto submit = supervisor.submit(quick_spec(4, 100 + i));
    ASSERT_EQ(submit.admission, Admission::kAccepted) << submit.reason;
    ids.push_back(submit.id);
  }
  while (true) {
    const ServerStats snapshot = supervisor.stats();
    if (snapshot.active == 12) {
      EXPECT_EQ(snapshot.queued, 0u);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(supervisor.wait_terminal(id).state, SessionState::kDone);
  }
  EXPECT_EQ(supervisor.metrics().get("server.completed").count, 12);
  const ServerStats stats = supervisor.stats();
  EXPECT_EQ(stats.pool_threads, 1u);
  EXPECT_GT(stats.pool_batches, 0u);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, SessionsInterleaveOnOneWorker) {
  // Round-robin slicing: with one worker, a second session makes progress
  // long before the first (6 intervals) finishes — the lane model would
  // serialize them whole.
  SessionSupervisor supervisor(dir_, pool_limits(1, 4));
  supervisor.start();
  const auto first = supervisor.submit(quick_spec(6, 11));
  const auto second = supervisor.submit(quick_spec(6, 22));
  ASSERT_EQ(first.admission, Admission::kAccepted);
  ASSERT_EQ(second.admission, Admission::kAccepted);

  wait_progress(supervisor, second.id, 1);
  const SessionStatus status = supervisor.status(first.id);
  EXPECT_EQ(status.state, SessionState::kRunning);
  EXPECT_LT(status.intervals_done, 6);

  EXPECT_EQ(supervisor.wait_terminal(first.id).state, SessionState::kDone);
  EXPECT_EQ(supervisor.wait_terminal(second.id).state, SessionState::kDone);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, SharedPricingCacheWarmsAcrossSessions) {
  // Two identical sessions on the same machine model: the second prices
  // its candidates out of the first one's cache entries. The hit counter
  // is the proof of sharing; the fingerprint equality is the proof that
  // sharing changed nothing.
  SessionSupervisor supervisor(dir_, pool_limits(2, 4));
  supervisor.start();
  const auto first = supervisor.submit(quick_spec(3, 11));
  const auto second = supervisor.submit(quick_spec(3, 11));
  ASSERT_EQ(first.admission, Admission::kAccepted);
  ASSERT_EQ(second.admission, Admission::kAccepted);
  const SessionStatus a = supervisor.wait_terminal(first.id);
  const SessionStatus b = supervisor.wait_terminal(second.id);
  EXPECT_EQ(a.state, SessionState::kDone);
  EXPECT_EQ(b.state, SessionState::kDone);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, serial_fingerprint(quick_spec(3, 11)));

  EXPECT_GT(supervisor.metrics().get("server.pricing_shared_hits").count, 0);
  const ServerStats stats = supervisor.stats();
  EXPECT_GT(stats.pricing_shared_hits, 0u);
  EXPECT_GT(stats.pricing_shared_misses, 0u);
  EXPECT_GT(stats.pricing_shared_hit_rate(), 0.0);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, SharedPricingIsBitIdenticalToUnshared) {
  // Belt and braces for the "sharing changes nothing" claim: the same
  // sessions with the shared cache disabled land on identical
  // fingerprints.
  const SessionSpec spec = quick_spec(3, 77);
  std::uint64_t shared_fp = 0;
  {
    SessionSupervisor supervisor(dir_ / "shared", pool_limits(2, 4));
    supervisor.start();
    const auto submit = supervisor.submit(spec);
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    shared_fp = supervisor.wait_terminal(submit.id).fingerprint;
    supervisor.stop();
  }
  ServeLimits unshared = pool_limits(2, 4);
  unshared.shared_pricing = false;
  SessionSupervisor supervisor(dir_ / "unshared", unshared);
  supervisor.start();
  const auto submit = supervisor.submit(spec);
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  EXPECT_EQ(supervisor.wait_terminal(submit.id).fingerprint, shared_fp);
  EXPECT_EQ(supervisor.metrics().get("server.pricing_shared_hits").count, 0);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, RejectsPrivateExecutorsAlongsideTheSharedPool) {
  // The executor nesting hazard: a session pipeline must never spawn a
  // private ThreadPoolExecutor when a shared pool is configured.
  ServeLimits limits = pool_limits(2, 4);
  limits.executor_threads = 2;
  EXPECT_THROW(SessionSupervisor(dir_, limits), CheckError);
}

TEST_F(PoolSupervisorTest, RetriesParkAndQuarantineWithoutALaneThread) {
  ServeLimits limits = pool_limits(1, 4);
  limits.max_attempts = 2;
  limits.backoff_seconds = 0.001;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();
  const auto doomed = supervisor.submit(doomed_spec());
  const auto healthy = supervisor.submit(quick_spec(2, 11));
  ASSERT_EQ(doomed.admission, Admission::kAccepted);
  ASSERT_EQ(healthy.admission, Admission::kAccepted);

  const SessionStatus bad = supervisor.wait_terminal(doomed.id);
  EXPECT_EQ(bad.state, SessionState::kQuarantined);
  EXPECT_EQ(bad.attempts, 2);
  EXPECT_FALSE(bad.error.empty());
  // The worker the doomed session would have camped on in lane mode kept
  // serving the healthy session during the parked backoff.
  EXPECT_EQ(supervisor.wait_terminal(healthy.id).state, SessionState::kDone);
  EXPECT_EQ(supervisor.metrics().get("server.retries").count, 1);
  EXPECT_EQ(supervisor.metrics().get("server.quarantined").count, 1);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, ClientCancelStopsAParkedOrRunningSession) {
  SessionSupervisor supervisor(dir_, pool_limits(1, 4));
  supervisor.start();
  const auto submit = supervisor.submit(quick_spec(50, 11));
  ASSERT_EQ(submit.admission, Admission::kAccepted);
  wait_progress(supervisor, submit.id, 1);
  (void)supervisor.cancel(submit.id, "operator asked");
  const SessionStatus status = supervisor.wait_terminal(submit.id);
  EXPECT_EQ(status.state, SessionState::kCancelled);
  EXPECT_LT(status.intervals_done, 50);
  EXPECT_EQ(supervisor.metrics().get("server.cancelled").count, 1);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, GracefulStopInterruptsAndRecoveryResumesExactly) {
  const SessionSpec spec = quick_spec(6, 11);
  std::uint64_t id = 0;
  {
    SessionSupervisor supervisor(dir_, pool_limits(2, 4));
    supervisor.start();
    const auto submit = supervisor.submit(spec);
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    id = submit.id;
    wait_progress(supervisor, id, 2);
    supervisor.stop();
    const SessionStatus interrupted = supervisor.status(id);
    // Usually interrupted mid-run; done is possible if the last slice
    // finished before stop() swept it.
    EXPECT_TRUE(interrupted.state == SessionState::kInterrupted ||
                interrupted.state == SessionState::kDone);
  }
  SessionSupervisor supervisor(dir_, pool_limits(2, 4));
  const auto report = supervisor.recover();
  EXPECT_GE(report.requeued + report.terminal, 1);
  supervisor.start();
  const SessionStatus resumed = supervisor.wait_terminal(id);
  EXPECT_EQ(resumed.state, SessionState::kDone);
  EXPECT_EQ(resumed.intervals_done, 6);
  EXPECT_EQ(resumed.fingerprint, serial_fingerprint(spec));
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, StatsAccountEveryAdmittedSessionExactlyOnce) {
  SessionSupervisor supervisor(dir_, pool_limits(2, 6));
  supervisor.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto submit = supervisor.submit(quick_spec(4, 200 + i));
    ASSERT_EQ(submit.admission, Admission::kAccepted);
    ids.push_back(submit.id);
  }
  // While sessions run, every admitted session is in exactly one of the
  // three pool states (executing / runnable / parked); the sum is the
  // active count in the same locked snapshot.
  for (int probe = 0; probe < 20; ++probe) {
    const ServerStats stats = supervisor.stats();
    EXPECT_EQ(stats.pool_executing + stats.pool_runnable + stats.pool_delayed,
              stats.active);
    if (stats.active == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(supervisor.wait_terminal(id).state, SessionState::kDone);
  }
  const ServerStats stats = supervisor.stats();
  EXPECT_EQ(stats.pool_threads, 2u);
  EXPECT_EQ(stats.pool_executing + stats.pool_runnable + stats.pool_delayed,
            0u);
  supervisor.stop();
}

TEST_F(PoolSupervisorTest, FairQueueAgingStillFeedsThePoolWithoutStarvation) {
  // One admission slot, a low-priority victim behind a stream of
  // high-priority submissions: aging credit must pull the victim through
  // the fair queue into the pool before the stream ends.
  ServeLimits limits = pool_limits(1, 1);
  limits.max_queued = 4;
  limits.aging_seconds = 0.02;
  SessionSupervisor supervisor(dir_, limits);
  supervisor.start();

  SessionSpec victim = quick_spec(1, 7);
  victim.priority = 0;
  const auto victim_submit = supervisor.submit(victim);
  ASSERT_EQ(victim_submit.admission, Admission::kAccepted);

  int victim_done_at = -1;
  constexpr int kStream = 24;
  for (int i = 0; i < kStream; ++i) {
    SessionSpec noisy = quick_spec(1, 1000 + i);
    noisy.priority = 9;
    // Keep the queue persistently contended: wait for a slot, then refill.
    while (true) {
      const auto submit = supervisor.submit(noisy);
      if (submit.admission == Admission::kAccepted) break;
      ASSERT_EQ(submit.admission, Admission::kRejectedBusy);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (victim_done_at < 0 &&
        is_terminal(supervisor.status(victim_submit.id).state)) {
      victim_done_at = i;
    }
  }
  const SessionStatus victim_status =
      supervisor.wait_terminal(victim_submit.id);
  EXPECT_EQ(victim_status.state, SessionState::kDone);
  // Starvation would mean the victim only ran once the stream drained;
  // aging must have promoted it while high-priority work kept arriving.
  EXPECT_GE(victim_done_at, 0) << "victim did not finish during the stream";
  supervisor.stop();
}

}  // namespace
}  // namespace stormtrack
