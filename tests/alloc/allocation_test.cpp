#include "alloc/allocation.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_example() {
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

TEST(Allocation, TableIStartRanks) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  EXPECT_EQ(a.start_rank_of(1), 0);
  EXPECT_EQ(a.start_rank_of(2), 256);
  EXPECT_EQ(a.start_rank_of(3), 512);
  EXPECT_EQ(a.start_rank_of(4), 13);
  EXPECT_EQ(a.start_rank_of(5), 429);
}

TEST(Allocation, FindPresentAndAbsent) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  EXPECT_TRUE(a.find(3).has_value());
  EXPECT_FALSE(a.find(42).has_value());
  EXPECT_THROW((void)a.start_rank_of(42), CheckError);
}

TEST(Allocation, OverlappingRectsRejected) {
  std::map<NestId, Rect> rects{{1, Rect{0, 0, 4, 4}}, {2, Rect{2, 2, 4, 4}}};
  EXPECT_THROW(Allocation(8, 8, rects), CheckError);
}

TEST(Allocation, OutOfGridRejected) {
  std::map<NestId, Rect> rects{{1, Rect{6, 6, 4, 4}}};
  EXPECT_THROW(Allocation(8, 8, rects), CheckError);
}

TEST(Allocation, EmptyRectRejected) {
  std::map<NestId, Rect> rects{{1, Rect{0, 0, 0, 4}}};
  EXPECT_THROW(Allocation(8, 8, rects), CheckError);
}

TEST(Allocation, EmptyAllocationOk) {
  const Allocation a;
  EXPECT_EQ(a.num_nests(), 0u);
  EXPECT_FALSE(a.find(1).has_value());
}

TEST(Allocation, ToTableHasPaperColumns) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  const std::string s = a.to_table("Table I").to_string();
  EXPECT_NE(s.find("Nest ID"), std::string::npos);
  EXPECT_NE(s.find("Start Rank"), std::string::npos);
  EXPECT_NE(s.find("Processor sub-grid"), std::string::npos);
  EXPECT_NE(s.find("19 x 19"), std::string::npos);
  EXPECT_NE(s.find("429"), std::string::npos);
}

TEST(Allocation, AsciiArtCoversGrid) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  const std::string art = a.to_ascii(32);
  // Every character is a nest digit (1–5); no '.' gaps in a full tiling.
  for (char c : art)
    if (c != '\n') {
      EXPECT_TRUE(c >= '1' && c <= '5') << c;
    }
}

TEST(Allocation, MeanRectOverlapBounds) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  EXPECT_DOUBLE_EQ(mean_rect_overlap(a, a), 1.0);
  const Allocation empty;
  EXPECT_DOUBLE_EQ(mean_rect_overlap(a, empty), 0.0);
}


TEST(Allocation, LabelGridCoversAndMatchesRects) {
  const Allocation a =
      allocate(AllocTree::huffman(paper_example()), 32, 32);
  const Grid2D<int> labels = a.to_label_grid();
  ASSERT_EQ(labels.width(), 32);
  ASSERT_EQ(labels.height(), 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const int id = labels(x, y);
      ASSERT_NE(id, -1) << "(" << x << "," << y << ")";
      EXPECT_TRUE(a.find(id)->contains(x, y));
    }
  }
}

TEST(Allocation, LabelGridMarksFreeProcessors) {
  std::map<NestId, Rect> rects{{1, Rect{0, 0, 2, 2}}};
  const Allocation a(4, 4, rects);
  const Grid2D<int> labels = a.to_label_grid();
  EXPECT_EQ(labels(0, 0), 1);
  EXPECT_EQ(labels(3, 3), -1);
}

}  // namespace
}  // namespace stormtrack
