#include "alloc/sfc_allocation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_example() {
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

TEST(SfcAllocation, SegmentsPartitionTheCurve) {
  const HilbertOrder order(32, 32);
  const SfcAllocation a(paper_example(), order);
  int covered = 0;
  int cursor = 0;
  for (const auto& [nest, seg] : a.segments()) {
    EXPECT_EQ(seg.begin, cursor);  // contiguous, ascending nest id
    EXPECT_GE(seg.count, 1);
    covered += seg.count;
    cursor = seg.end();
  }
  EXPECT_EQ(covered, 1024);
}

TEST(SfcAllocation, AreasProportionalToWeights) {
  const HilbertOrder order(32, 32);
  const SfcAllocation a(paper_example(), order);
  for (const NestWeight& nw : paper_example()) {
    const double share = a.segments().at(nw.nest).count / 1024.0;
    EXPECT_NEAR(share, nw.weight, 0.01) << "nest " << nw.nest;
  }
}

TEST(SfcAllocation, RanksDisjointAcrossNests) {
  const HilbertOrder order(16, 16);
  const SfcAllocation a(paper_example(), order);
  std::set<int> seen;
  for (const auto& [nest, seg] : a.segments())
    for (int r : a.ranks_of(nest, order)) EXPECT_TRUE(seen.insert(r).second);
  EXPECT_EQ(seen.size(), 256u);
}

TEST(SfcAllocation, RetainedNestsKeepRelativeOrder) {
  const HilbertOrder order(32, 32);
  const SfcAllocation before(paper_example(), order);
  const std::vector<NestWeight> after_w{{3, 0.27}, {5, 0.42}, {6, 0.31}};
  const SfcAllocation after(after_w, order);
  // Nest 3 precedes nest 5 on the curve in both allocations.
  EXPECT_LT(before.segments().at(3).begin, before.segments().at(5).begin);
  EXPECT_LT(after.segments().at(3).begin, after.segments().at(5).begin);
}

TEST(SfcAllocation, EveryNestGetsAProcessorOnTinyGrid) {
  const HilbertOrder order(3, 3);
  std::vector<NestWeight> nests;
  for (int i = 1; i <= 9; ++i) nests.push_back({i, i == 1 ? 100.0 : 0.01});
  const SfcAllocation a(nests, order);
  for (const auto& [nest, seg] : a.segments()) EXPECT_EQ(seg.count, 1);
}

TEST(SfcAllocation, MoreNestsThanProcessorsThrows) {
  const HilbertOrder order(2, 2);
  std::vector<NestWeight> nests;
  for (int i = 1; i <= 5; ++i) nests.push_back({i, 1.0});
  EXPECT_THROW(SfcAllocation(nests, order), CheckError);
}

TEST(SfcRedistribution, ConservesBytes) {
  const NestShape nest{100, 100};
  const std::vector<int> old_ranks{0, 1, 2, 3};
  const std::vector<int> new_ranks{2, 3, 4, 5, 6};
  const RedistPlan plan =
      plan_sfc_redistribution(nest, old_ranks, new_ranks, 8);
  std::int64_t bytes = 0;
  for (const Message& m : plan.messages) bytes += m.bytes;
  EXPECT_EQ(bytes, 100 * 100 * 8);
}

TEST(SfcRedistribution, IdenticalRankListsFullOverlap) {
  const NestShape nest{50, 50};
  const std::vector<int> ranks{4, 9, 16};
  const RedistPlan plan = plan_sfc_redistribution(nest, ranks, ranks, 8);
  EXPECT_DOUBLE_EQ(plan.overlap_fraction(), 1.0);
}

TEST(SfcRedistribution, SmallSegmentShiftKeepsMostPointsInPlace) {
  // The SFC locality property: growing the rank list at one end leaves
  // most chunks nearly where they were.
  const NestShape nest{200, 200};
  std::vector<int> old_ranks, new_ranks;
  for (int r = 0; r < 20; ++r) old_ranks.push_back(r);
  for (int r = 0; r < 21; ++r) new_ranks.push_back(r);
  const RedistPlan plan =
      plan_sfc_redistribution(nest, old_ranks, new_ranks, 8);
  // Chunk boundaries all shift slightly (n/20 vs n/21 blocks), so the
  // overlap decays with rank index but stays substantial on average —
  // and far above a full relocation's zero.
  EXPECT_GT(plan.overlap_fraction(), 0.35);
  std::vector<int> moved_ranks;
  for (int r = 100; r < 121; ++r) moved_ranks.push_back(r);
  const RedistPlan relocated =
      plan_sfc_redistribution(nest, old_ranks, moved_ranks, 8);
  EXPECT_DOUBLE_EQ(relocated.overlap_fraction(), 0.0);
}

TEST(HaloInflation, SfcWorseThanBlocks) {
  // The §II argument, quantified: Hilbert chunks have longer boundaries
  // than rectangular blocks of the same areas.
  const NestShape nest{240, 240};
  const double sfc = sfc_halo_inflation(nest, 64);
  const double block = block_halo_inflation(nest, 8, 8);
  EXPECT_GT(sfc, block);
  EXPECT_LT(block, 1.3);  // near-square blocks are near-optimal
  EXPECT_GT(sfc, 1.15);
}

TEST(HaloInflation, SkewedBlocksWorseThanSquare) {
  const NestShape nest{240, 240};
  EXPECT_GT(block_halo_inflation(nest, 64, 1),
            block_halo_inflation(nest, 8, 8));
}

}  // namespace
}  // namespace stormtrack
