#include "alloc/partitioner.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

ReconfigRequest paper_reconfig() {
  ReconfigRequest req;
  req.deleted = {1, 2, 4};
  req.retained = {{3, 0.27}, {5, 0.42}};
  req.inserted = {{6, 0.31}};
  return req;
}

AllocTree paper_tree() {
  const std::vector<NestWeight> nests{
      {1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
  return AllocTree::huffman(nests);
}

TEST(ScratchPartitioner, IgnoresCurrentTree) {
  const ScratchPartitioner p;
  const AllocTree from_empty = p.propose(AllocTree{}, paper_reconfig());
  const AllocTree from_paper = p.propose(paper_tree(), paper_reconfig());
  EXPECT_EQ(from_empty.to_dot(), from_paper.to_dot());
  EXPECT_EQ(p.name(), "scratch");
}

TEST(DiffusionPartitioner, UsesCurrentTree) {
  const DiffusionPartitioner p;
  const AllocTree t = p.propose(paper_tree(), paper_reconfig());
  EXPECT_EQ(t.num_nests(), 3);
  EXPECT_EQ(p.name(), "diffusion");
}

TEST(AllocationDriver, StepCommitsState) {
  const DiffusionPartitioner p;
  AllocationDriver driver(p, 32, 32);
  ReconfigRequest first;
  first.inserted = {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
  const Allocation& a1 = driver.step(first);
  EXPECT_EQ(a1.num_nests(), 5u);
  EXPECT_EQ(driver.current().start_rank_of(5), 429);

  const Allocation& a2 = driver.step(paper_reconfig());
  EXPECT_EQ(a2.num_nests(), 3u);
  EXPECT_TRUE(a2.find(6).has_value());
  EXPECT_FALSE(a2.find(1).has_value());
}

TEST(AllocationDriver, DiffusionPreservesMoreOverlapThanScratch) {
  // Drive both strategies through the same random reconfigurations; the
  // diffusion driver must accumulate at least as much rectangle overlap
  // (the headline §IV-B property, aggregated).
  const ScratchPartitioner sp;
  const DiffusionPartitioner dp;
  AllocationDriver scratch(sp, 32, 32);
  AllocationDriver diffusion(dp, 32, 32);

  Xoshiro256 rng(321);
  int next_id = 1;
  ReconfigRequest first;
  for (int i = 0; i < 5; ++i)
    first.inserted.push_back({next_id++, rng.uniform(0.1, 1.0)});
  scratch.step(first);
  diffusion.step(first);

  double scratch_overlap = 0.0, diffusion_overlap = 0.0;
  for (int event = 0; event < 30; ++event) {
    ReconfigRequest req;
    for (const NestWeight& leaf : diffusion.tree().leaves()) {
      if (rng.bernoulli(0.3))
        req.deleted.push_back(leaf.nest);
      else
        req.retained.push_back({leaf.nest, rng.uniform(0.1, 1.0)});
    }
    const int inserts = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < inserts; ++i)
      req.inserted.push_back({next_id++, rng.uniform(0.1, 1.0)});
    if (req.retained.empty() && req.inserted.empty())
      req.inserted.push_back({next_id++, 1.0});

    const Allocation before_s = scratch.current();
    const Allocation before_d = diffusion.current();
    scratch_overlap += mean_rect_overlap(before_s, scratch.step(req));
    diffusion_overlap += mean_rect_overlap(before_d, diffusion.step(req));
  }
  EXPECT_GT(diffusion_overlap, scratch_overlap);
}

TEST(AllocationDriver, BadGridThrows) {
  const ScratchPartitioner p;
  EXPECT_THROW(AllocationDriver(p, 0, 32), CheckError);
}

}  // namespace
}  // namespace stormtrack
