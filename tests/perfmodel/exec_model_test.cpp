#include "perfmodel/exec_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stormtrack {
namespace {

TEST(GroundTruth, MoreProcessorsIsFaster) {
  GroundTruthCost truth;
  const NestShape n{300, 300};
  EXPECT_GT(truth.execution_time(n, 8, 8), truth.execution_time(n, 16, 16));
}

TEST(GroundTruth, BiggerNestIsSlower) {
  GroundTruthCost truth;
  EXPECT_LT(truth.execution_time(NestShape{180, 180}, 10, 10),
            truth.execution_time(NestShape{360, 360}, 10, 10));
}

TEST(GroundTruth, SkewedRectanglesAreSlower) {
  // The §V-D effect: same processor count, worse aspect ratio → slower.
  GroundTruthCost truth;
  const NestShape n{300, 300};
  EXPECT_LT(truth.execution_time(n, 16, 16),
            truth.execution_time(n, 4, 64));
  EXPECT_LT(truth.execution_time(n, 16, 16),
            truth.execution_time(n, 64, 4));
}

TEST(GroundTruth, CountOverloadUsesSquareRect) {
  GroundTruthCost truth;
  const NestShape n{240, 240};
  EXPECT_DOUBLE_EQ(truth.execution_time(n, 256),
                   truth.execution_time(n, 16, 16));
  EXPECT_DOUBLE_EQ(truth.execution_time(n, 512),
                   truth.execution_time(n, 16, 32));
}

TEST(GroundTruth, InvalidArgsThrow) {
  GroundTruthCost truth;
  EXPECT_THROW((void)truth.execution_time(NestShape{0, 10}, 4, 4),
               CheckError);
  EXPECT_THROW((void)truth.execution_time(NestShape{10, 10}, 0, 4),
               CheckError);
}

TEST(ExecModel, PaperDefaultHas13DomainsAnd10Counts) {
  const ProfileConfig cfg = ProfileConfig::paper_default();
  EXPECT_EQ(cfg.domains.size(), 13u);
  EXPECT_EQ(cfg.proc_counts.size(), 10u);
}

TEST(ExecModel, PredictsWithinNoiseOfTruth) {
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  for (const NestShape n :
       {NestShape{200, 200}, NestShape{250, 320}, NestShape{350, 200}}) {
    for (const int p : {64, 128, 256, 400, 512}) {
      const double predicted = model.predict(n, p);
      const double actual = truth.execution_time(n, p);
      EXPECT_NEAR(predicted, actual, 0.35 * actual)
          << n.nx << "x" << n.ny << " on " << p;
    }
  }
}

TEST(ExecModel, PearsonCorrelationNearPoint9) {
  // §V-F: "our prediction method yielded Pearson's correlation coefficient
  // of 0.9". Evaluate over a spread of nest configurations.
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  Xoshiro256 rng(77);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 200; ++i) {
    const NestShape n{static_cast<int>(rng.uniform_int(175, 361)),
                      static_cast<int>(rng.uniform_int(175, 361))};
    const int pw = static_cast<int>(rng.uniform_int(6, 24));
    const int ph = static_cast<int>(rng.uniform_int(6, 24));
    predicted.push_back(model.predict(n, pw * ph));
    actual.push_back(truth.execution_time(n, pw, ph));
  }
  const double r = pearson(predicted, actual);
  EXPECT_GT(r, 0.80);
  EXPECT_LT(r, 0.999);  // noise + aspect blindness keep it imperfect
}

TEST(ExecModel, MonotoneInNestSize) {
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  EXPECT_LT(model.predict(NestShape{180, 180}, 256),
            model.predict(NestShape{360, 360}, 256));
}

TEST(ExecModel, ClampOutsideProfiledProcRange) {
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  const NestShape n{250, 250};
  EXPECT_DOUBLE_EQ(model.predict(n, 8), model.predict(n, 32));
  EXPECT_DOUBLE_EQ(model.predict(n, 4096), model.predict(n, 1024));
}

TEST(ExecModel, LinearBetweenProfiledCounts) {
  GroundTruthCost truth;
  ProfileConfig cfg = ProfileConfig::paper_default();
  cfg.noise_rel_stdev = 0.0;  // exact samples
  ExecTimeModel model(truth, cfg);
  const NestShape n{240, 240};
  const double t128 = model.predict(n, 128);
  const double t192 = model.predict(n, 192);
  const double t160 = model.predict(n, 160);
  EXPECT_NEAR(t160, 0.5 * (t128 + t192), 1e-12);
}

TEST(ExecModel, DeterministicGivenSeed) {
  GroundTruthCost truth;
  ExecTimeModel a(truth, ProfileConfig::paper_default());
  ExecTimeModel b(truth, ProfileConfig::paper_default());
  EXPECT_DOUBLE_EQ(a.predict(NestShape{222, 333}, 300),
                   b.predict(NestShape{222, 333}, 300));
}

TEST(WeightRatios, SumToOneAndOrderBySize) {
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  const std::vector<NestShape> shapes{{180, 180}, {270, 270}, {360, 360}};
  const std::vector<double> w = weight_ratios(model, shapes, 1024);
  ASSERT_EQ(w.size(), 3u);
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(w[0], w[1]);
  EXPECT_LT(w[1], w[2]);
}

}  // namespace
}  // namespace stormtrack
