/// Randomized properties of the Delaunay interpolant and the execution-time
/// model that the dynamic strategy's predictions rest on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "perfmodel/exec_model.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

class InterpolationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpolationSweep, ValuesWithinSiteRangeInsideHull) {
  // Barycentric interpolation is a convex combination: inside the hull the
  // value must lie within [min, max] of the site values.
  Xoshiro256 rng(GetParam());
  std::vector<Point2> sites;
  std::vector<double> values;
  // Corners guarantee the query box is inside the hull.
  for (const Point2 c :
       {Point2{0, 0}, Point2{100, 0}, Point2{0, 100}, Point2{100, 100}}) {
    sites.push_back(c);
    values.push_back(rng.uniform(1.0, 9.0));
  }
  for (int i = 0; i < 20; ++i) {
    sites.push_back({rng.uniform(1.0, 99.0), rng.uniform(1.0, 99.0)});
    values.push_back(rng.uniform(1.0, 9.0));
  }
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const ScatteredInterpolant interp(sites, values);
  for (int q = 0; q < 100; ++q) {
    const double v =
        interp({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

TEST_P(InterpolationSweep, ContinuityAcrossSmallSteps) {
  // Piecewise-linear interpolants are Lipschitz: nearby queries give
  // nearby values (no jumps at triangle boundaries).
  Xoshiro256 rng(GetParam() + 50);
  std::vector<Point2> sites;
  std::vector<double> values;
  for (const Point2 c :
       {Point2{0, 0}, Point2{50, 0}, Point2{0, 50}, Point2{50, 50}}) {
    sites.push_back(c);
    values.push_back(rng.uniform(0.0, 1.0));
  }
  for (int i = 0; i < 12; ++i) {
    sites.push_back({rng.uniform(2.0, 48.0), rng.uniform(2.0, 48.0)});
    values.push_back(rng.uniform(0.0, 1.0));
  }
  const ScatteredInterpolant interp(sites, values);
  for (int q = 0; q < 200; ++q) {
    const Point2 p{rng.uniform(1.0, 49.0), rng.uniform(1.0, 49.0)};
    const Point2 p2{p.x + 1e-6, p.y + 1e-6};
    EXPECT_NEAR(interp(p), interp(p2), 1e-3);
  }
}

TEST_P(InterpolationSweep, ExecModelPositiveAndFiniteEverywhere) {
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  Xoshiro256 rng(GetParam() + 99);
  for (int q = 0; q < 200; ++q) {
    const NestShape n{static_cast<int>(rng.uniform_int(50, 600)),
                      static_cast<int>(rng.uniform_int(50, 600))};
    const int procs = static_cast<int>(rng.uniform_int(1, 4096));
    const double t = model.predict(n, procs);
    EXPECT_GT(t, 0.0) << n.nx << "x" << n.ny << " on " << procs;
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST_P(InterpolationSweep, ExecModelMonotoneInProcsOnAverage) {
  // More processors should not make a nest slower, save for noise: check
  // the profiled-count endpoints (linear interpolation between them can
  // only be monotone if the endpoints are ordered).
  GroundTruthCost truth;
  ExecTimeModel model(truth, ProfileConfig::paper_default());
  Xoshiro256 rng(GetParam() + 123);
  int ordered = 0, total = 0;
  for (int q = 0; q < 50; ++q) {
    const NestShape n{static_cast<int>(rng.uniform_int(150, 400)),
                      static_cast<int>(rng.uniform_int(150, 400))};
    ++total;
    if (model.predict(n, 32) > model.predict(n, 1024)) ++ordered;
  }
  EXPECT_EQ(ordered, total);  // 32 vs 1024 cores is a 32x work gap; noise
                              // cannot invert it
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolationSweep,
                         ::testing::Values(7u, 14u, 21u));

}  // namespace
}  // namespace stormtrack
