/// The ExecTimeModel memo cache must be invisible except in speed: cached
/// predictions bit-identical to cold ones, identical under concurrency,
/// and the hit/miss accounting consistent.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "perfmodel/exec_model.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<std::pair<NestShape, int>> query_set(std::uint64_t seed,
                                                 int distinct) {
  // A small pool of distinct (shape, procs) queries, like real adaptation
  // traces where the same nests recur point after point.
  Xoshiro256 rng(seed);
  std::vector<std::pair<NestShape, int>> pool;
  pool.reserve(static_cast<std::size_t>(distinct));
  for (int i = 0; i < distinct; ++i)
    pool.emplace_back(NestShape{static_cast<int>(rng.uniform_int(100, 450)),
                                static_cast<int>(rng.uniform_int(100, 450))},
                      static_cast<int>(rng.uniform_int(16, 1200)));
  return pool;
}

TEST(ExecModelCache, CachedEqualsColdBitIdentical) {
  GroundTruthCost truth;
  // Two models from the identical campaign: `cold` is queried once per
  // key, `warm` repeatedly — every repeat must reproduce the cold double
  // exactly (EXPECT_EQ, not NEAR).
  const ExecTimeModel cold(truth, ProfileConfig::paper_default());
  const ExecTimeModel warm(truth, ProfileConfig::paper_default());
  const auto pool = query_set(0x5eedULL, 40);
  std::vector<double> first;
  for (const auto& [shape, procs] : pool)
    first.push_back(cold.predict(shape, procs));
  for (int round = 0; round < 5; ++round)
    for (std::size_t i = 0; i < pool.size(); ++i)
      EXPECT_EQ(warm.predict(pool[i].first, pool[i].second), first[i])
          << "round " << round << " query " << i;
}

TEST(ExecModelCache, StatsCountHitsAndMisses) {
  GroundTruthCost truth;
  const ExecTimeModel model(truth, ProfileConfig::paper_default());
  const auto pool = query_set(0xabcULL, 10);
  for (const auto& [shape, procs] : pool) (void)model.predict(shape, procs);
  ExecModelCacheStats s = model.cache_stats();
  EXPECT_EQ(s.lookups, 10);
  EXPECT_EQ(s.misses, 10);
  EXPECT_EQ(s.hits(), 0);

  for (int round = 0; round < 9; ++round)
    for (const auto& [shape, procs] : pool) (void)model.predict(shape, procs);
  s = model.cache_stats();
  EXPECT_EQ(s.lookups, 100);
  EXPECT_EQ(s.misses, 10);
  EXPECT_EQ(s.hits(), 90);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.9);

  model.clear_cache_stats();
  s = model.cache_stats();
  EXPECT_EQ(s.lookups, 0);
  EXPECT_EQ(s.misses, 0);
}

TEST(ExecModelCache, SerialVsEightThreadsBitIdentical) {
  GroundTruthCost truth;
  const ExecTimeModel serial(truth, ProfileConfig::paper_default());
  const ExecTimeModel threaded(truth, ProfileConfig::paper_default());
  const auto pool = query_set(0xf00dULL, 64);

  std::vector<double> expected;
  for (const auto& [shape, procs] : pool)
    expected.push_back(serial.predict(shape, procs));

  // 8 threads hammer the same model over the same pool concurrently (each
  // with a different traversal offset, so keys race into the cache in
  // different orders) — every thread must see the serial values exactly.
  constexpr int kThreads = 8;
  std::vector<std::vector<double>> got(
      kThreads, std::vector<double>(pool.size(), 0.0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round)
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const std::size_t q =
              (i + static_cast<std::size_t>(t) * 7) % pool.size();
          got[static_cast<std::size_t>(t)][q] =
              threaded.predict(pool[q].first, pool[q].second);
        }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    for (std::size_t i = 0; i < pool.size(); ++i)
      EXPECT_EQ(got[static_cast<std::size_t>(t)][i], expected[i])
          << "thread " << t << " query " << i;

  const ExecModelCacheStats s = threaded.cache_stats();
  EXPECT_EQ(s.lookups, kThreads * 4 * static_cast<std::int64_t>(pool.size()));
  // At least one miss per distinct key; racing duplicates may add more,
  // but hits must still dominate.
  EXPECT_GE(s.misses, static_cast<std::int64_t>(pool.size()));
  EXPECT_GT(s.hit_rate(), 0.5);
}

}  // namespace
}  // namespace stormtrack
