#include "perfmodel/delaunay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

TEST(Delaunay, TriangleOfThree) {
  Delaunay2D d({{0, 0}, {1, 0}, {0, 1}});
  ASSERT_EQ(d.triangles().size(), 1u);
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  Delaunay2D d({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(d.triangles().size(), 2u);
}

TEST(Delaunay, EulerInvariantOnRandomSites) {
  // For a triangulation of a point set: T = 2n - 2 - h, with h hull points.
  // Sanity-check a weaker invariant: T <= 2n and every site appears.
  Xoshiro256 rng(3);
  std::vector<Point2> sites;
  for (int i = 0; i < 30; ++i)
    sites.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  Delaunay2D d(sites);
  EXPECT_LE(d.triangles().size(), 2u * sites.size());
  std::vector<char> used(sites.size(), 0);
  for (const Triangle& t : d.triangles())
    for (int v : t) used[static_cast<std::size_t>(v)] = 1;
  for (char u : used) EXPECT_TRUE(u);
}

TEST(Delaunay, EmptyCircumcircleProperty) {
  Xoshiro256 rng(17);
  std::vector<Point2> sites;
  for (int i = 0; i < 20; ++i)
    sites.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  Delaunay2D d(sites);
  // No site may lie strictly inside any triangle's circumcircle.
  for (const Triangle& t : d.triangles()) {
    const Point2& a = sites[static_cast<std::size_t>(t[0])];
    const Point2& b = sites[static_cast<std::size_t>(t[1])];
    const Point2& c = sites[static_cast<std::size_t>(t[2])];
    // Circumcenter via perpendicular bisectors.
    const double dd =
        2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    ASSERT_NE(dd, 0.0);
    const double ux = ((a.x * a.x + a.y * a.y) * (b.y - c.y) +
                       (b.x * b.x + b.y * b.y) * (c.y - a.y) +
                       (c.x * c.x + c.y * c.y) * (a.y - b.y)) /
                      dd;
    const double uy = ((a.x * a.x + a.y * a.y) * (c.x - b.x) +
                       (b.x * b.x + b.y * b.y) * (a.x - c.x) +
                       (c.x * c.x + c.y * c.y) * (b.x - a.x)) /
                      dd;
    const double r2 = (a.x - ux) * (a.x - ux) + (a.y - uy) * (a.y - uy);
    for (std::size_t s = 0; s < sites.size(); ++s) {
      const double d2 = (sites[s].x - ux) * (sites[s].x - ux) +
                        (sites[s].y - uy) * (sites[s].y - uy);
      EXPECT_GE(d2, r2 - 1e-7) << "site " << s << " inside circumcircle";
    }
  }
}

TEST(Delaunay, LocateInsideAndOutside) {
  Delaunay2D d({{0, 0}, {10, 0}, {0, 10}, {10, 10}});
  EXPECT_GE(d.locate({5, 5}), 0);
  EXPECT_GE(d.locate({0.1, 0.1}), 0);
  EXPECT_EQ(d.locate({20, 20}), -1);
  EXPECT_EQ(d.locate({-1, 5}), -1);
}

TEST(Delaunay, BarycentricSumsToOne) {
  Delaunay2D d({{0, 0}, {10, 0}, {0, 10}});
  const auto bc = d.barycentric(0, {2, 3});
  EXPECT_NEAR(bc[0] + bc[1] + bc[2], 1.0, 1e-12);
  for (double w : bc) EXPECT_GE(w, -1e-12);
}

TEST(Delaunay, NearestSite) {
  Delaunay2D d({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_EQ(d.nearest_site({1, 1}), 0);
  EXPECT_EQ(d.nearest_site({9, 1}), 1);
  EXPECT_EQ(d.nearest_site({1, 20}), 2);
}

TEST(Delaunay, DuplicateSitesThrow) {
  EXPECT_THROW(Delaunay2D({{0, 0}, {0, 0}, {1, 1}}), CheckError);
}

TEST(Delaunay, TooFewSitesThrow) {
  EXPECT_THROW(Delaunay2D({{0, 0}, {1, 1}}), CheckError);
}

TEST(Delaunay, CollinearSitesThrow) {
  EXPECT_THROW(Delaunay2D({{0, 0}, {1, 1}, {2, 2}, {3, 3}}), CheckError);
}

TEST(Interpolant, ExactOnLinearFunction) {
  // Piecewise-linear interpolation reproduces affine functions exactly
  // inside the hull.
  Xoshiro256 rng(5);
  std::vector<Point2> sites;
  std::vector<double> values;
  auto f = [](const Point2& p) { return 3.0 + 2.0 * p.x - 0.5 * p.y; };
  for (int i = 0; i < 25; ++i) {
    sites.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
    values.push_back(f(sites.back()));
  }
  // Add corners so queries stay inside the hull.
  for (const Point2 c :
       {Point2{0, 0}, Point2{10, 0}, Point2{0, 10}, Point2{10, 10}}) {
    sites.push_back(c);
    values.push_back(f(c));
  }
  ScatteredInterpolant interp(sites, values);
  for (int i = 0; i < 50; ++i) {
    const Point2 q{rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)};
    EXPECT_NEAR(interp(q), f(q), 1e-9);
  }
}

TEST(Interpolant, ExactAtSites) {
  std::vector<Point2> sites{{0, 0}, {4, 0}, {0, 4}, {4, 4}};
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  ScatteredInterpolant interp(sites, values);
  for (std::size_t i = 0; i < sites.size(); ++i)
    EXPECT_NEAR(interp(sites[i]), values[i], 1e-9);
}

TEST(Interpolant, OutsideHullClampsToNearestSite) {
  std::vector<Point2> sites{{0, 0}, {4, 0}, {0, 4}};
  std::vector<double> values{1.0, 2.0, 3.0};
  ScatteredInterpolant interp(sites, values);
  EXPECT_DOUBLE_EQ(interp({-5, -5}), 1.0);
  EXPECT_DOUBLE_EQ(interp({10, 0}), 2.0);
}

TEST(Interpolant, ValueCountMismatchThrows) {
  EXPECT_THROW(
      ScatteredInterpolant({{0, 0}, {1, 0}, {0, 1}}, {1.0, 2.0}),
      CheckError);
}

}  // namespace
}  // namespace stormtrack
