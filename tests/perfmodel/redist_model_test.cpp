#include "perfmodel/redist_model.hpp"

#include <gtest/gtest.h>

#include <array>

#include "redist/redistributor.hpp"

namespace stormtrack {
namespace {

TEST(RedistModel, DirectNetworkPredictsPairMax) {
  Torus3D topo(4, 4, 4, LinkParams{1e-6, 1e-7, 1e8});
  RowMajorMapping map(64);
  SimComm comm(topo, map);
  RedistTimeModel model(comm);
  const std::array<Message, 3> msgs{Message{0, 1, 1000},
                                    Message{0, 2, 500000},
                                    Message{5, 5, 999999}};  // self: free
  const double expected = topo.pair_time(comm.hops(0, 2), 500000);
  EXPECT_DOUBLE_EQ(model.predict(msgs), expected);
}

TEST(RedistModel, SwitchedNetworkPredictsSenderSums) {
  SwitchedNetwork topo(16, 4, LinkParams{1e-6, 1e-7, 1e8});
  RowMajorMapping map(16);
  SimComm comm(topo, map);
  RedistTimeModel model(comm);
  const std::array<Message, 3> msgs{Message{0, 1, 1000}, Message{0, 5, 1000},
                                    Message{2, 3, 500}};
  const double sender0 = topo.pair_time(2, 1000) + topo.pair_time(4, 1000);
  EXPECT_DOUBLE_EQ(model.predict(msgs), sender0);
}

TEST(RedistModel, EmptyPhasePredictsZero) {
  Torus3D topo(2, 2, 2);
  RowMajorMapping map(8);
  SimComm comm(topo, map);
  EXPECT_DOUBLE_EQ(RedistTimeModel(comm).predict(std::span<const Message>{}),
                   0.0);
}

TEST(RedistModel, PredictionLowerBoundsSimulatedActual) {
  // On a direct network: pair max <= per-rank serial max <= phase time.
  Torus3D topo(8, 8, 4);
  RowMajorMapping map(256);
  SimComm comm(topo, map);
  RedistTimeModel model(comm);
  const RedistPlan plan = plan_redistribution(
      NestShape{300, 300}, Rect{0, 0, 8, 8}, Rect{4, 4, 10, 10}, 16);
  const double predicted = model.predict(plan.messages);
  const double actual = comm.alltoallv(plan.messages).modeled_time;
  EXPECT_GT(predicted, 0.0);
  EXPECT_LE(predicted, actual * (1.0 + 1e-12));
}

TEST(RedistModel, CorrelatesWithActualAcrossPlans) {
  Torus3D topo(8, 8, 4);
  RowMajorMapping map(256);
  SimComm comm(topo, map);
  RedistTimeModel model(comm);
  // Bigger moves should predict and cost more, monotonically.
  const RedistPlan small_plan = plan_redistribution(
      NestShape{180, 180}, Rect{0, 0, 6, 6}, Rect{0, 0, 7, 6}, 16);
  const RedistPlan big_plan = plan_redistribution(
      NestShape{360, 360}, Rect{0, 0, 6, 6}, Rect{10, 8, 6, 6}, 16);
  EXPECT_LT(model.predict(small_plan.messages),
            model.predict(big_plan.messages));
  EXPECT_LT(comm.alltoallv(small_plan.messages).modeled_time,
            comm.alltoallv(big_plan.messages).modeled_time);
}

}  // namespace
}  // namespace stormtrack
