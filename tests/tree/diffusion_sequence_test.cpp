/// Multi-adaptation-point diffusion scenarios: the properties §IV-B claims
/// hold *across a sequence* of reconfigurations, not just for one.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "alloc/allocation.hpp"
#include "tree/alloc_tree.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

constexpr Rect kGrid{0, 0, 32, 32};

std::vector<NestWeight> paper_example() {
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

TEST(DiffusionSequence, IdenticalWeightsKeepIdenticalRectangles) {
  // A reconfiguration that changes nothing must not move anything.
  AllocTree tree = AllocTree::huffman(paper_example());
  const auto before = tree.subdivide(kGrid);
  ReconfigRequest req;
  for (const NestWeight& nw : tree.leaves()) req.retained.push_back(nw);
  tree = tree.diffuse(req);
  EXPECT_EQ(tree.subdivide(kGrid), before);
}

TEST(DiffusionSequence, RetainedSubtreeRatiosPreserveRectangles) {
  // Uniformly rescaling all weights (renormalization) is also a no-op for
  // the geometry: subdivision uses ratios only.
  AllocTree tree = AllocTree::huffman(paper_example());
  const auto before = tree.subdivide(kGrid);
  ReconfigRequest req;
  for (const NestWeight& nw : tree.leaves())
    req.retained.push_back({nw.nest, nw.weight * 3.7});
  tree = tree.diffuse(req);
  EXPECT_EQ(tree.subdivide(kGrid), before);
}

TEST(DiffusionSequence, InsertDeleteRoundTripRestoresSurvivors) {
  // Insert a nest, then delete it with unchanged retained weights: the
  // survivors' rectangles must return to (close to) their prior shape.
  AllocTree tree = AllocTree::huffman(paper_example());
  const auto before = tree.subdivide(kGrid);

  ReconfigRequest add;
  for (const NestWeight& nw : tree.leaves())
    add.retained.push_back({nw.nest, nw.weight * 0.8});
  add.inserted = {{6, 0.2}};
  tree = tree.diffuse(add);

  ReconfigRequest remove;
  remove.deleted = {6};
  for (const NestWeight& nw : paper_example())
    remove.retained.push_back(nw);
  tree = tree.diffuse(remove);

  const auto after = tree.subdivide(kGrid);
  for (const NestWeight& nw : paper_example()) {
    EXPECT_GT(jaccard(before.at(nw.nest), after.at(nw.nest)), 0.5)
        << "nest " << nw.nest;
  }
}

TEST(DiffusionSequence, ChurnedTreeStillProportional) {
  // After heavy churn the (non-Huffman) tree must still allocate areas
  // roughly proportional to weights.
  Xoshiro256 rng(31);
  AllocTree tree = AllocTree::huffman(paper_example());
  int next_id = 6;
  for (int event = 0; event < 40; ++event) {
    ReconfigRequest req;
    for (const NestWeight& leaf : tree.leaves()) {
      if (rng.bernoulli(0.3) && tree.num_nests() > 2)
        req.deleted.push_back(leaf.nest);
      else
        req.retained.push_back({leaf.nest, rng.uniform(0.1, 1.0)});
    }
    if (rng.bernoulli(0.7))
      req.inserted.push_back({next_id++, rng.uniform(0.1, 1.0)});
    tree = tree.diffuse(req);
  }
  const auto rects = tree.subdivide(kGrid);
  const double total = tree.total_weight();
  for (const NestWeight& leaf : tree.leaves()) {
    const double share =
        static_cast<double>(rects.at(leaf.nest).area()) / kGrid.area();
    const double want = leaf.weight / total;
    EXPECT_NEAR(share, want, 0.35 * want + 0.02) << "nest " << leaf.nest;
  }
}

TEST(DiffusionSequence, AspectRatiosStayBounded) {
  // §IV-B concedes diffusion trees may stop being Huffman; rectangles must
  // still not degenerate into slivers over a long run.
  Xoshiro256 rng(77);
  AllocTree tree = AllocTree::huffman(paper_example());
  int next_id = 6;
  for (int event = 0; event < 60; ++event) {
    ReconfigRequest req;
    for (const NestWeight& leaf : tree.leaves()) {
      if (rng.bernoulli(0.25) && tree.num_nests() > 2)
        req.deleted.push_back(leaf.nest);
      else
        req.retained.push_back({leaf.nest, rng.uniform(0.2, 1.0)});
    }
    const int inserts = static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < inserts && tree.num_nests() + i < 9; ++i)
      req.inserted.push_back({next_id++, rng.uniform(0.2, 1.0)});
    tree = tree.diffuse(req);
    // Individual rectangles can get skewed (the paper concedes diffusion
    // trees stop being Huffman), but never degenerate to 1-wide slivers,
    // and the population stays square-ish on average.
    double sum = 0.0;
    int count = 0;
    for (const auto& [nest, rect] : tree.subdivide(kGrid)) {
      EXPECT_LE(rect.aspect_ratio(), 16.0)
          << "event " << event << " nest " << nest;
      sum += rect.aspect_ratio();
      ++count;
    }
    EXPECT_LE(sum / count, 6.0) << "event " << event;
  }
}

TEST(DiffusionSequence, DiffusionBeatsScratchOnCumulativeOverlap) {
  // The headline §IV-B property, measured over many random multi-event
  // scenarios rather than a single curated one.
  Xoshiro256 rng(123);
  int diffusion_wins = 0;
  const int kScenarios = 20;
  for (int s = 0; s < kScenarios; ++s) {
    std::vector<NestWeight> initial;
    int next_id = 1;
    for (int i = 0; i < 5; ++i)
      initial.push_back({next_id++, rng.uniform(0.1, 1.0)});
    AllocTree diff_tree = AllocTree::huffman(initial);
    AllocTree scratch_tree = diff_tree;
    double d_overlap = 0.0, s_overlap = 0.0;
    for (int event = 0; event < 10; ++event) {
      ReconfigRequest req;
      for (const NestWeight& leaf : diff_tree.leaves()) {
        if (rng.bernoulli(0.3) && diff_tree.num_nests() > 2)
          req.deleted.push_back(leaf.nest);
        else
          req.retained.push_back({leaf.nest, leaf.weight});
      }
      if (rng.bernoulli(0.8))
        req.inserted.push_back({next_id++, rng.uniform(0.1, 1.0)});

      const auto d_before = diff_tree.subdivide(kGrid);
      const auto s_before = scratch_tree.subdivide(kGrid);
      diff_tree = diff_tree.diffuse(req);
      std::vector<NestWeight> all(req.retained);
      all.insert(all.end(), req.inserted.begin(), req.inserted.end());
      scratch_tree = AllocTree::huffman(all);
      const auto d_after = diff_tree.subdivide(kGrid);
      const auto s_after = scratch_tree.subdivide(kGrid);
      for (const NestWeight& nw : req.retained) {
        d_overlap += coverage_fraction(d_before.at(nw.nest),
                                       d_after.at(nw.nest));
        s_overlap += coverage_fraction(s_before.at(nw.nest),
                                       s_after.at(nw.nest));
      }
    }
    if (d_overlap > s_overlap) ++diffusion_wins;
  }
  EXPECT_GE(diffusion_wins, kScenarios * 3 / 4);
}

}  // namespace
}  // namespace stormtrack
