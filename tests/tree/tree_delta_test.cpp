/// perturbed_leaves() semantics: a nest is perturbed exactly when its
/// root-to-leaf path signature (split sides + child weights, the data
/// subdivide() consumes) changed — the foundation of the pipeline's
/// incremental-pricing accounting.

#include <gtest/gtest.h>

#include <vector>

#include "tree/alloc_tree.hpp"
#include "tree/tree_delta.hpp"
#include "util/rect.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_weights() {
  return {{1, 0.35}, {2, 0.25}, {3, 0.2}, {4, 0.1}, {5, 0.1}};
}

TEST(TreeDelta, IdenticalTreesHaveNoPerturbedLeaves) {
  const AllocTree t = AllocTree::huffman(paper_weights());
  EXPECT_TRUE(perturbed_leaves(t, t).empty());
}

TEST(TreeDelta, SteadyStateDiffusionKeepsEveryLeafStable) {
  const AllocTree t = AllocTree::huffman(paper_weights());
  // Same nests, same weights: diffuse() reorganizes nothing.
  ReconfigRequest req;
  req.retained = paper_weights();
  const AllocTree t2 = t.diffuse(req);
  EXPECT_TRUE(perturbed_leaves(t, t2).empty());
  // ... and the induced rectangles really are identical, which is what the
  // empty delta promises.
  EXPECT_EQ(t.subdivide(Rect{0, 0, 32, 32}), t2.subdivide(Rect{0, 0, 32, 32}));
}

TEST(TreeDelta, InsertedNestIsPerturbed) {
  const AllocTree t = AllocTree::huffman(paper_weights());
  ReconfigRequest req;
  req.retained = paper_weights();
  req.inserted = {{6, 0.15}};
  const AllocTree t2 = t.diffuse(req);
  const std::vector<NestId> perturbed = perturbed_leaves(t, t2);
  // The new nest has no old signature; its arrival also rewrites weight
  // sums on the path above it, perturbing (at least) its neighbours.
  EXPECT_FALSE(perturbed.empty());
  EXPECT_TRUE(std::find(perturbed.begin(), perturbed.end(), 6) !=
              perturbed.end());
  // Sorted ascending, as documented.
  EXPECT_TRUE(std::is_sorted(perturbed.begin(), perturbed.end()));
}

TEST(TreeDelta, EverythingPerturbedAgainstEmptyBefore) {
  const AllocTree t = AllocTree::huffman(paper_weights());
  const std::vector<NestId> perturbed = perturbed_leaves(AllocTree{}, t);
  EXPECT_EQ(perturbed, (std::vector<NestId>{1, 2, 3, 4, 5}));
}

TEST(TreeDelta, StableSignatureImpliesStableRectangle) {
  // The load-bearing property: any leaf NOT reported perturbed must get
  // the same rectangle from subdivide() on any common grid.
  const AllocTree before = AllocTree::huffman(paper_weights());
  ReconfigRequest req;
  req.retained = paper_weights();
  req.inserted = {{7, 0.05}};
  const AllocTree after = before.diffuse(req);
  const std::vector<NestId> perturbed = perturbed_leaves(before, after);
  const auto rects_before = before.subdivide(Rect{0, 0, 32, 32});
  const auto rects_after = after.subdivide(Rect{0, 0, 32, 32});
  for (const auto& [nest, rect] : rects_after) {
    if (std::find(perturbed.begin(), perturbed.end(), nest) !=
        perturbed.end())
      continue;
    const auto it = rects_before.find(nest);
    ASSERT_TRUE(it != rects_before.end()) << "nest " << nest;
    EXPECT_EQ(it->second, rect) << "nest " << nest;
  }
}

}  // namespace
}  // namespace stormtrack
