#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tree/alloc_tree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_example() {
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

/// The paper's §IV-B running reconfiguration: delete {1,2,4}, retain {3,5}
/// with new weights 0.27/0.42, insert 6 with weight 0.31.
ReconfigRequest paper_reconfig() {
  ReconfigRequest req;
  req.deleted = {1, 2, 4};
  req.retained = {{3, 0.27}, {5, 0.42}};
  req.inserted = {{6, 0.31}};
  return req;
}

TEST(Diffusion, PaperFig8TreeShape) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  const AllocTree t = old_tree.diffuse(paper_reconfig());
  t.validate();
  EXPECT_EQ(t.num_nests(), 3);
  EXPECT_FALSE(t.has_free_slots());

  // Fig. 8(c): node 6 inserted beside node 3 (|0.31-0.27| < |0.42-0.31|);
  // node 5 takes the other root branch after the surplus free slot at old
  // node 4's position is spliced out.
  const auto& root = t.node(t.root());
  ASSERT_FALSE(root.is_leaf());
  const auto& left = t.node(root.left);
  const auto& right = t.node(root.right);
  // One root child is leaf 5, the other the internal {6, 3} pair.
  const AllocTree::Node* pair = nullptr;
  const AllocTree::Node* single = nullptr;
  if (left.is_leaf()) {
    single = &left;
    pair = &right;
  } else {
    single = &right;
    pair = &left;
  }
  ASSERT_TRUE(single->is_leaf());
  EXPECT_EQ(single->nest, 5);
  ASSERT_FALSE(pair->is_leaf());
  std::set<NestId> pair_ids{t.node(pair->left).nest,
                            t.node(pair->right).nest};
  EXPECT_EQ(pair_ids, (std::set<NestId>{3, 6}));
  EXPECT_NEAR(pair->weight, 0.58, 1e-12);
}

TEST(Diffusion, PaperFig8dOverlapBeatsScratch) {
  // §IV-B: diffusion keeps 3's and 5's rectangles largely in place while
  // the scratch repartition (Fig. 4) moves them entirely.
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  const auto old_rects = old_tree.subdivide(Rect{0, 0, 32, 32});

  const AllocTree diff_tree = old_tree.diffuse(paper_reconfig());
  const auto diff_rects = diff_tree.subdivide(Rect{0, 0, 32, 32});

  const std::vector<NestWeight> scratch_w{{3, 0.27}, {5, 0.42}, {6, 0.31}};
  const auto scratch_rects =
      AllocTree::huffman(scratch_w).subdivide(Rect{0, 0, 32, 32});

  for (const NestId nest : {3, 5}) {
    const auto d = old_rects.at(nest).intersect(diff_rects.at(nest)).area();
    const auto s =
        old_rects.at(nest).intersect(scratch_rects.at(nest)).area();
    EXPECT_GT(d, s) << "nest " << nest;
    EXPECT_GT(d, 0) << "nest " << nest;
  }
  // Paper: "no overlap in the partition from scratch approach".
  EXPECT_EQ(old_rects.at(3).intersect(scratch_rects.at(3)).area(), 0);
  EXPECT_EQ(old_rects.at(5).intersect(scratch_rects.at(5)).area(), 0);
}

TEST(Diffusion, RetainOnlyWeightUpdate) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.retained = {{1, 0.2}, {2, 0.2}, {3, 0.2}, {4, 0.2}, {5, 0.2}};
  const AllocTree t = old_tree.diffuse(req);
  EXPECT_EQ(t.num_nests(), 5);
  for (const NestWeight& nw : t.leaves()) EXPECT_DOUBLE_EQ(nw.weight, 0.2);
  // Structure unchanged: same leaf arrangement as the old tree.
  const auto& root = t.node(t.root());
  EXPECT_EQ(t.node(t.node(root.left).right).nest, 3);
}

TEST(Diffusion, PureDeletionSplicesOut) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {4};
  req.retained = {{1, 0.15}, {2, 0.15}, {3, 0.25}, {5, 0.45}};
  const AllocTree t = old_tree.diffuse(req);
  EXPECT_EQ(t.num_nests(), 4);
  EXPECT_FALSE(t.has_free_slots());
  // 5 should absorb its deleted sibling's position: 5's leaf is now a
  // direct child of the root.
  const auto& root = t.node(t.root());
  const bool left5 = root.left >= 0 && t.node(root.left).is_leaf() &&
                     t.node(root.left).nest == 5;
  const bool right5 = root.right >= 0 && t.node(root.right).is_leaf() &&
                      t.node(root.right).nest == 5;
  EXPECT_TRUE(left5 || right5);
}

TEST(Diffusion, PureInsertionSplitsClosestWeightLeaf) {
  // Fig. 6: tree {1:0.5, (2:0.25, 3:0.25)}; insert 4 with weight 0.4 after
  // retained weights become {1:0.3, 2:0.15, 3:0.15}. Node 4 must land
  // beside node 1 (closest weight), not beside 2 or 3.
  const std::vector<NestWeight> start{{1, 0.5}, {2, 0.25}, {3, 0.25}};
  const AllocTree old_tree = AllocTree::huffman(start);
  ReconfigRequest req;
  req.retained = {{1, 0.3}, {2, 0.15}, {3, 0.15}};
  req.inserted = {{4, 0.4}};
  const AllocTree t = old_tree.diffuse(req);
  EXPECT_EQ(t.num_nests(), 4);

  // Find leaf 4's sibling: must be leaf 1.
  for (int i = 0;; ++i) {
    const auto& n = t.node(i);
    if (n.is_leaf() && n.nest == 4) {
      const auto& parent = t.node(n.parent);
      const int sib = parent.left == i ? parent.right : parent.left;
      EXPECT_EQ(t.node(sib).nest, 1);
      break;
    }
  }
}

TEST(Diffusion, MoreInsertionsThanDeletionsGrowsHuffmanSubtree) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {1};
  req.retained = {{2, 0.1}, {3, 0.2}, {4, 0.2}, {5, 0.2}};
  req.inserted = {{6, 0.1}, {7, 0.1}, {8, 0.1}};
  const AllocTree t = old_tree.diffuse(req);
  t.validate();
  EXPECT_EQ(t.num_nests(), 7);
  EXPECT_FALSE(t.has_free_slots());
}

TEST(Diffusion, DeleteEverythingGivesEmptyTree) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {1, 2, 3, 4, 5};
  const AllocTree t = old_tree.diffuse(req);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_nests(), 0);
}

TEST(Diffusion, DeleteAllAndInsertFreshActsLikeScratch) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {1, 2, 3, 4, 5};
  req.inserted = {{6, 0.5}, {7, 0.3}, {8, 0.2}};
  const AllocTree t = old_tree.diffuse(req);
  t.validate();
  EXPECT_EQ(t.num_nests(), 3);
}

TEST(Diffusion, EmptyOldTreeFallsBackToHuffman) {
  const AllocTree empty;
  ReconfigRequest req;
  req.inserted = {{1, 0.6}, {2, 0.4}};
  const AllocTree t = empty.diffuse(req);
  EXPECT_EQ(t.num_nests(), 2);
}

TEST(Diffusion, UnknownDeletedNestThrows) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {99};
  req.retained = {{1, 0.2}, {2, 0.2}, {3, 0.2}, {4, 0.2}, {5, 0.2}};
  EXPECT_THROW((void)old_tree.diffuse(req), CheckError);
}

TEST(Diffusion, UnmentionedNestThrows) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.deleted = {1};
  req.retained = {{2, 0.5}, {3, 0.5}};  // 4 and 5 unaccounted for
  EXPECT_THROW((void)old_tree.diffuse(req), CheckError);
}

TEST(Diffusion, InsertExistingIdThrows) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  ReconfigRequest req;
  req.retained = {{1, 0.2}, {2, 0.2}, {3, 0.2}, {4, 0.2}, {5, 0.2}};
  req.inserted = {{3, 0.1}};
  EXPECT_THROW((void)old_tree.diffuse(req), CheckError);
}

TEST(Diffusion, OriginalTreeUntouched) {
  const AllocTree old_tree = AllocTree::huffman(paper_example());
  const std::string before = old_tree.to_dot();
  (void)old_tree.diffuse(paper_reconfig());
  EXPECT_EQ(old_tree.to_dot(), before);
}

// Property sweep: random reconfiguration sequences keep the tree valid and
// the nest set correct.
class DiffusionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffusionSweep, RandomReconfigurationsStayValid) {
  Xoshiro256 rng(GetParam());
  std::vector<NestWeight> initial;
  int next_id = 1;
  const int n0 = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < n0; ++i)
    initial.push_back({next_id++, rng.uniform(0.05, 1.0)});
  AllocTree tree = AllocTree::huffman(initial);

  for (int event = 0; event < 25; ++event) {
    ReconfigRequest req;
    for (const NestWeight& leaf : tree.leaves()) {
      if (rng.bernoulli(0.35))
        req.deleted.push_back(leaf.nest);
      else
        req.retained.push_back({leaf.nest, rng.uniform(0.05, 1.0)});
    }
    const int inserts = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < inserts; ++i)
      req.inserted.push_back({next_id++, rng.uniform(0.05, 1.0)});

    tree = tree.diffuse(req);
    tree.validate();
    EXPECT_FALSE(tree.has_free_slots());
    EXPECT_EQ(tree.num_nests(), static_cast<int>(req.retained.size() +
                                                 req.inserted.size()));

    std::set<NestId> expected;
    for (const auto& r : req.retained) expected.insert(r.nest);
    for (const auto& i : req.inserted) expected.insert(i.nest);
    std::set<NestId> got;
    for (const auto& l : tree.leaves()) {
      got.insert(l.nest);
      // Retained/inserted weights must be exactly what was requested.
      bool found = false;
      for (const auto& r : req.retained)
        if (r.nest == l.nest) {
          EXPECT_DOUBLE_EQ(l.weight, r.weight);
          found = true;
        }
      for (const auto& i : req.inserted)
        if (i.nest == l.nest) {
          EXPECT_DOUBLE_EQ(l.weight, i.weight);
          found = true;
        }
      EXPECT_TRUE(found);
    }
    EXPECT_EQ(expected, got);

    // Non-empty trees must still subdivide a 32×32 grid exactly.
    if (!tree.empty()) {
      const auto rects = tree.subdivide(Rect{0, 0, 32, 32});
      std::int64_t area = 0;
      for (const auto& [nest, r] : rects) area += r.area();
      EXPECT_EQ(area, 1024);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffusionSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace stormtrack
