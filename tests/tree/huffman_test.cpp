#include <gtest/gtest.h>

#include <vector>

#include "tree/alloc_tree.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_example() {
  // Fig. 2(a): 5 nests with execution-time ratios 0.1:0.1:0.2:0.25:0.35.
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

TEST(Huffman, EmptyInputGivesEmptyTree) {
  const AllocTree t = AllocTree::huffman({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_nests(), 0);
}

TEST(Huffman, SingleLeaf) {
  const std::vector<NestWeight> one{{7, 1.0}};
  const AllocTree t = AllocTree::huffman(one);
  EXPECT_EQ(t.num_nests(), 1);
  EXPECT_DOUBLE_EQ(t.total_weight(), 1.0);
  EXPECT_TRUE(t.node(t.root()).is_leaf());
  EXPECT_EQ(t.node(t.root()).nest, 7);
}

TEST(Huffman, PaperExampleStructure) {
  const auto nests = paper_example();
  const AllocTree t = AllocTree::huffman(nests);
  EXPECT_EQ(t.num_nests(), 5);
  EXPECT_NEAR(t.total_weight(), 1.0, 1e-12);

  // Root children carry 0.4 ({1,2,3}) and 0.6 ({4,5}), in that order.
  const auto& root = t.node(t.root());
  ASSERT_FALSE(root.is_leaf());
  EXPECT_NEAR(t.node(root.left).weight, 0.4, 1e-12);
  EXPECT_NEAR(t.node(root.right).weight, 0.6, 1e-12);

  // Left subtree: internal {1,2} (0.2) first, then leaf 3.
  const auto& l = t.node(root.left);
  ASSERT_FALSE(l.is_leaf());
  EXPECT_FALSE(t.node(l.left).is_leaf());
  EXPECT_EQ(t.node(l.right).nest, 3);
  EXPECT_EQ(t.node(t.node(l.left).left).nest, 1);
  EXPECT_EQ(t.node(t.node(l.left).right).nest, 2);

  // Right subtree: leaves 4 then 5.
  const auto& r = t.node(root.right);
  EXPECT_EQ(t.node(r.left).nest, 4);
  EXPECT_EQ(t.node(r.right).nest, 5);
}

TEST(Huffman, LeavesSortedView) {
  const AllocTree t = AllocTree::huffman(paper_example());
  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 5u);
  for (std::size_t i = 0; i < leaves.size(); ++i)
    EXPECT_EQ(leaves[i].nest, static_cast<int>(i) + 1);
  EXPECT_DOUBLE_EQ(leaves[4].weight, 0.35);
}

TEST(Huffman, InternalWeightsAreChildSums) {
  const AllocTree t = AllocTree::huffman(paper_example());
  t.validate();  // validates the sum property internally
}

TEST(Huffman, DuplicateNestIdsThrow) {
  const std::vector<NestWeight> dup{{1, 0.5}, {1, 0.5}};
  EXPECT_THROW((void)AllocTree::huffman(dup), CheckError);
}

TEST(Huffman, NonPositiveWeightThrows) {
  const std::vector<NestWeight> bad{{1, 0.5}, {2, 0.0}};
  EXPECT_THROW((void)AllocTree::huffman(bad), CheckError);
}

TEST(Huffman, DeterministicForEqualWeights) {
  const std::vector<NestWeight> eq{{1, 0.25}, {2, 0.25}, {3, 0.25},
                                   {4, 0.25}};
  const AllocTree a = AllocTree::huffman(eq);
  const AllocTree b = AllocTree::huffman(eq);
  EXPECT_EQ(a.to_dot(), b.to_dot());
}

TEST(Huffman, OptimalWeightedDepth) {
  // Huffman minimizes Σ w_i · depth_i; verify against the known optimum for
  // the classic example {0.1, 0.1, 0.2, 0.25, 0.35}: depths 3,3,2,2,2.
  const AllocTree t = AllocTree::huffman(paper_example());
  // Walk to compute weighted depth.
  double weighted = 0.0;
  std::vector<std::pair<int, int>> stack{{t.root(), 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const auto& n = t.node(idx);
    if (n.is_leaf()) {
      weighted += n.weight * depth;
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
  EXPECT_NEAR(weighted, 0.1 * 3 + 0.1 * 3 + 0.2 * 2 + 0.25 * 2 + 0.35 * 2,
              1e-12);
}

TEST(Huffman, DotExportMentionsAllNests) {
  const AllocTree t = AllocTree::huffman(paper_example());
  const std::string dot = t.to_dot();
  for (int nest = 1; nest <= 5; ++nest)
    EXPECT_NE(dot.find("nest " + std::to_string(nest)), std::string::npos);
}

TEST(Huffman, HasNoFreeSlots) {
  EXPECT_FALSE(AllocTree::huffman(paper_example()).has_free_slots());
}

}  // namespace
}  // namespace stormtrack
