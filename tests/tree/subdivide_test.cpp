#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "tree/alloc_tree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<NestWeight> paper_example() {
  return {{1, 0.10}, {2, 0.10}, {3, 0.20}, {4, 0.25}, {5, 0.35}};
}

/// Property: the rectangles of a subdivision tile the grid exactly.
void expect_exact_tiling(const std::map<NestId, Rect>& rects,
                         const Rect& grid) {
  std::int64_t area = 0;
  for (const auto& [nest, r] : rects) {
    EXPECT_FALSE(r.empty()) << "nest " << nest;
    EXPECT_TRUE(grid.contains(r)) << "nest " << nest << " rect " << r;
    area += r.area();
  }
  EXPECT_EQ(area, grid.area());
  for (auto a = rects.begin(); a != rects.end(); ++a) {
    auto b = a;
    for (++b; b != rects.end(); ++b)
      EXPECT_FALSE(a->second.overlaps(b->second))
          << a->first << " vs " << b->first;
  }
}

TEST(Subdivide, PaperTableIExactly) {
  // Table I: allocation of the 5-nest example on 1024 cores (32×32 grid).
  const AllocTree t = AllocTree::huffman(paper_example());
  const auto rects = t.subdivide(Rect{0, 0, 32, 32});
  ASSERT_EQ(rects.size(), 5u);

  EXPECT_EQ(rects.at(1), (Rect{0, 0, 13, 8}));    // start rank 0,   13×8
  EXPECT_EQ(rects.at(2), (Rect{0, 8, 13, 8}));    // start rank 256, 13×8
  EXPECT_EQ(rects.at(3), (Rect{0, 16, 13, 16}));  // start rank 512, 13×16
  EXPECT_EQ(rects.at(4), (Rect{13, 0, 19, 13}));  // start rank 13,  19×13
  EXPECT_EQ(rects.at(5), (Rect{13, 13, 19, 19})); // start rank 429, 19×19

  expect_exact_tiling(rects, Rect{0, 0, 32, 32});
}

TEST(Subdivide, PaperTableIIScratchRepartition) {
  // §IV-A: nests {3,5,6} with ratios 0.27:0.42:0.31. Nest 5 (largest) gets
  // the left column starting at rank 0; 3 and 6 share the right column.
  const std::vector<NestWeight> nests{{3, 0.27}, {5, 0.42}, {6, 0.31}};
  const AllocTree t = AllocTree::huffman(nests);
  const auto rects = t.subdivide(Rect{0, 0, 32, 32});
  ASSERT_EQ(rects.size(), 3u);
  EXPECT_EQ(start_rank(rects.at(5), 32), 0);
  EXPECT_EQ(rects.at(5).w, 13);  // round(0.42·32)
  EXPECT_EQ(rects.at(5).h, 32);
  // 3 and 6 split the 19-wide right column horizontally.
  EXPECT_EQ(rects.at(3).x, 13);
  EXPECT_EQ(rects.at(6).x, 13);
  EXPECT_EQ(rects.at(3).w, 19);
  EXPECT_EQ(rects.at(6).w, 19);
  expect_exact_tiling(rects, Rect{0, 0, 32, 32});
}

TEST(Subdivide, SingleNestGetsWholeGrid) {
  const std::vector<NestWeight> one{{9, 1.0}};
  const AllocTree t = AllocTree::huffman(one);
  const auto rects = t.subdivide(Rect{0, 0, 16, 16});
  EXPECT_EQ(rects.at(9), (Rect{0, 0, 16, 16}));
}

TEST(Subdivide, EmptyTreeGivesNoRects) {
  const AllocTree t;
  EXPECT_TRUE(t.subdivide(Rect{0, 0, 8, 8}).empty());
}

TEST(Subdivide, AreasProportionalToWeights) {
  const AllocTree t = AllocTree::huffman(paper_example());
  const auto rects = t.subdivide(Rect{0, 0, 32, 32});
  for (const NestWeight& nw : t.leaves()) {
    const double share =
        static_cast<double>(rects.at(nw.nest).area()) / 1024.0;
    // Integral sides introduce rounding; 12% relative slack is ample here.
    EXPECT_NEAR(share, nw.weight, 0.12 * nw.weight) << "nest " << nw.nest;
  }
}

TEST(Subdivide, EveryLeafGetsAtLeastOneProcessor) {
  // 7 nests on a tiny 3×3 grid: clamping must keep all rects non-empty.
  std::vector<NestWeight> nests;
  for (int i = 1; i <= 7; ++i)
    nests.push_back({i, i == 1 ? 10.0 : 0.01});
  const AllocTree t = AllocTree::huffman(nests);
  const auto rects = t.subdivide(Rect{0, 0, 3, 3});
  ASSERT_EQ(rects.size(), 7u);
  expect_exact_tiling(rects, Rect{0, 0, 3, 3});
}

TEST(Subdivide, GridTooSmallThrows) {
  std::vector<NestWeight> nests;
  for (int i = 1; i <= 5; ++i) nests.push_back({i, 1.0});
  const AllocTree t = AllocTree::huffman(nests);
  EXPECT_THROW((void)t.subdivide(Rect{0, 0, 2, 2}), CheckError);
}

TEST(Subdivide, SquareLikePartitionsForBalancedWeights) {
  // Equal weights on a square grid must give aspect ratios close to 1
  // (the paper's rationale for Huffman construction order, §IV-A).
  std::vector<NestWeight> nests;
  for (int i = 1; i <= 4; ++i) nests.push_back({i, 0.25});
  const AllocTree t = AllocTree::huffman(nests);
  const auto rects = t.subdivide(Rect{0, 0, 32, 32});
  for (const auto& [nest, r] : rects) EXPECT_LE(r.aspect_ratio(), 2.0);
}

// Property sweep: random weight sets at several sizes tile exactly.
class SubdivideSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubdivideSweep, RandomWeightsTileExactly) {
  const int num_nests = GetParam();
  Xoshiro256 rng(1000 + num_nests);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<NestWeight> nests;
    for (int i = 1; i <= num_nests; ++i)
      nests.push_back({i, rng.uniform(0.05, 1.0)});
    const AllocTree t = AllocTree::huffman(nests);
    for (const Rect grid : {Rect{0, 0, 32, 32}, Rect{0, 0, 16, 32},
                            Rect{0, 0, 16, 16}, Rect{0, 0, 7, 11}}) {
      const auto rects = t.subdivide(grid);
      ASSERT_EQ(rects.size(), static_cast<std::size_t>(num_nests));
      expect_exact_tiling(rects, grid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NestCounts, SubdivideSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 9, 12));

}  // namespace
}  // namespace stormtrack
