#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(Torus3D, NodeCoordRoundTrip) {
  Torus3D t(4, 3, 2);
  EXPECT_EQ(t.num_nodes(), 24);
  for (int n = 0; n < t.num_nodes(); ++n) EXPECT_EQ(t.node(t.coord(n)), n);
}

TEST(Torus3D, RingDistanceWrapsAround) {
  EXPECT_EQ(Torus3D::ring_distance(0, 7, 8), 1);  // wrap is shorter
  EXPECT_EQ(Torus3D::ring_distance(0, 4, 8), 4);
  EXPECT_EQ(Torus3D::ring_distance(2, 2, 8), 0);
  EXPECT_EQ(Torus3D::ring_distance(1, 6, 8), 3);
}

TEST(Torus3D, HopsAreSumOfRingDistances) {
  Torus3D t(8, 8, 16);
  const int a = t.node(Coord3{0, 0, 0});
  const int b = t.node(Coord3{7, 4, 15});
  EXPECT_EQ(t.hops(a, b), 1 + 4 + 1);  // x and z wrap
  EXPECT_EQ(t.hops(a, a), 0);
  EXPECT_EQ(t.hops(a, b), t.hops(b, a));
}

TEST(Torus3D, TriangleInequalitySpotChecks) {
  Torus3D t(4, 4, 4);
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      for (int c = 0; c < 16; ++c)
        EXPECT_LE(t.hops(a, c), t.hops(a, b) + t.hops(b, c));
}

TEST(Torus3D, IsDirectNetwork) {
  Torus3D t(2, 2, 2);
  EXPECT_TRUE(t.is_direct_network());
  EXPECT_EQ(t.name(), "torus3d-2x2x2");
}

TEST(Torus3D, PairTimeModel) {
  Torus3D t(4, 4, 4, LinkParams{1e-6, 1e-7, 1e8});
  // alpha + 3 hops * per_hop + 1000 bytes / 1e8.
  EXPECT_NEAR(t.pair_time(3, 1000), 1e-6 + 3e-7 + 1e-5, 1e-15);
}

TEST(Torus3D, InvalidDimsThrow) {
  EXPECT_THROW(Torus3D(0, 4, 4), CheckError);
}

TEST(Mesh2D, ManhattanNoWrap) {
  Mesh2D m(4, 4);
  EXPECT_EQ(m.hops(0, 3), 3);       // (0,0)->(3,0): no wrap shortcut
  EXPECT_EQ(m.hops(0, 15), 6);      // (0,0)->(3,3)
  EXPECT_TRUE(m.is_direct_network());
}

TEST(SwitchedNetwork, HopLevels) {
  SwitchedNetwork s(64, 16);
  EXPECT_EQ(s.hops(3, 3), 0);
  EXPECT_EQ(s.hops(0, 15), 2);   // same leaf switch
  EXPECT_EQ(s.hops(0, 16), 4);   // across the core
  EXPECT_FALSE(s.is_direct_network());
}

TEST(Factories, BluegeneShapes) {
  const auto bg1024 = make_bluegene(1024);
  EXPECT_EQ(bg1024->dim_x(), 8);
  EXPECT_EQ(bg1024->dim_y(), 8);
  EXPECT_EQ(bg1024->dim_z(), 16);
  const auto bg256 = make_bluegene(256);
  EXPECT_EQ(bg256->dim_z(), 4);
  EXPECT_THROW((void)make_bluegene(100), CheckError);
}

TEST(Factories, Fist) {
  const auto f = make_fist(256);
  EXPECT_EQ(f->num_nodes(), 256);
  EXPECT_FALSE(f->is_direct_network());
}

TEST(Topology, NodeRangeChecked) {
  Torus3D t(2, 2, 2);
  EXPECT_THROW((void)t.hops(0, 8), CheckError);
  EXPECT_THROW((void)t.coord(-1), CheckError);
}

}  // namespace
}  // namespace stormtrack
