/// Metric properties every ITopology hop function must satisfy — symmetry,
/// identity, non-negativity, and the triangle inequality — checked across
/// all four interconnect models, plus the FoldingMapping/TiledMapping edge
/// cases (non-factorable torus Tz, node-count mismatches, 1xN degenerate
/// process grids).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "topo/mapping.hpp"
#include "topo/topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

void expect_metric_properties(const ITopology& topo, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const int n = topo.num_nodes();
  for (int trial = 0; trial < 200; ++trial) {
    const int a = static_cast<int>(rng.uniform_int(0, n - 1));
    const int b = static_cast<int>(rng.uniform_int(0, n - 1));
    const int c = static_cast<int>(rng.uniform_int(0, n - 1));
    EXPECT_EQ(topo.hops(a, a), 0) << topo.name();
    EXPECT_GE(topo.hops(a, b), 0) << topo.name();
    EXPECT_EQ(topo.hops(a, b), topo.hops(b, a))
        << topo.name() << " asymmetric for (" << a << ", " << b << ")";
    EXPECT_LE(topo.hops(a, c), topo.hops(a, b) + topo.hops(b, c))
        << topo.name() << " triangle violated for (" << a << ", " << b
        << ", " << c << ")";
  }
}

TEST(TopologyProperties, HopMetricAcrossAllFourModels) {
  const std::unique_ptr<Torus3D> torus = make_bluegene(1024);
  const std::unique_ptr<SwitchedNetwork> fist = make_fist(1000);
  const std::unique_ptr<Dragonfly> dragonfly = make_dragonfly(1024);
  const std::unique_ptr<FatTree> fattree = make_fattree(1024);
  expect_metric_properties(*torus, 0x70f01ULL);
  expect_metric_properties(*fist, 0x70f02ULL);
  expect_metric_properties(*dragonfly, 0x70f03ULL);
  expect_metric_properties(*fattree, 0x70f04ULL);
}

TEST(TopologyProperties, RankHopsInheritTheMetricThroughMappings) {
  // Through Machine (topology + default mapping): rank-level hops must
  // keep symmetry and identity on every named machine.
  for (const std::string name : {"bgl", "fist", "dragonfly", "fattree"}) {
    const Machine machine = Machine::by_name(name, 256);
    Xoshiro256 rng(0xabcdULL);
    const int ranks = machine.grid_px() * machine.grid_py();
    for (int trial = 0; trial < 100; ++trial) {
      const int a = static_cast<int>(rng.uniform_int(0, ranks - 1));
      const int b = static_cast<int>(rng.uniform_int(0, ranks - 1));
      EXPECT_EQ(machine.comm().hops(a, a), 0) << name;
      EXPECT_EQ(machine.comm().hops(a, b), machine.comm().hops(b, a))
          << name;
    }
  }
}

// ------------------------------------------------- FoldingMapping edges

TEST(FoldingMappingEdges, NonFactorableTzStillFoldsAsAStrip) {
  // Tz = 7 is prime: the only folding factorizations are 7x1 and 1x7, so
  // a 56x8 (or 8x56) grid folds but the more square 28x16 cannot.
  const Torus3D torus(8, 8, 7);
  EXPECT_TRUE(FoldingMapping::compatible(56, 8, torus));
  EXPECT_TRUE(FoldingMapping::compatible(8, 56, torus));
  EXPECT_FALSE(FoldingMapping::compatible(28, 16, torus));
  EXPECT_FALSE(FoldingMapping::compatible(16, 28, torus));

  const FoldingMapping strip(56, 8, torus);
  std::vector<char> seen(static_cast<std::size_t>(torus.num_nodes()), 0);
  for (int r = 0; r < strip.num_ranks(); ++r) {
    const int node = strip.node_of_rank(r);
    ASSERT_GE(node, 0);
    ASSERT_LT(node, torus.num_nodes());
    EXPECT_FALSE(seen[static_cast<std::size_t>(node)]) << "node " << node;
    seen[static_cast<std::size_t>(node)] = 1;
  }
}

TEST(FoldingMappingEdges, NodeCountMismatchIsRejected) {
  // 16x16 ranks on an 8x8x3 torus: 256 != 192 — Px*Py must equal
  // Tx*Ty*Tz, and compatible() must say no before the ctor throws.
  const Torus3D torus(8, 8, 3);
  EXPECT_FALSE(FoldingMapping::compatible(16, 16, torus));
  EXPECT_THROW(FoldingMapping(16, 16, torus), CheckError);
  // Right node count but a width the torus X ring does not divide.
  const Torus3D cube(8, 8, 8);
  EXPECT_FALSE(FoldingMapping::compatible(4, 128, cube));
  EXPECT_THROW(FoldingMapping(4, 128, cube), CheckError);
}

TEST(FoldingMappingEdges, DegenerateOneByNGridsFallBackToRowMajor) {
  // A 1xN process grid can never fold onto an 8x8xZ torus (1 % 8 != 0);
  // make_default_mapping must fall back rather than throw.
  const std::unique_ptr<Torus3D> torus = make_bluegene(256);
  EXPECT_FALSE(FoldingMapping::compatible(1, 256, *torus));
  const std::unique_ptr<Mapping> mapping =
      make_default_mapping(*torus, 1, 256);
  ASSERT_NE(mapping, nullptr);
  EXPECT_EQ(mapping->num_ranks(), 256);
  for (int r = 0; r < 256; ++r) {
    const int node = mapping->node_of_rank(r);
    EXPECT_GE(node, 0);
    EXPECT_LT(node, torus->num_nodes());
  }
}

// --------------------------------------------------- TiledMapping edges

TEST(TiledMappingEdges, OneByNGridTilesAsStrips) {
  // 1x64 grid with 1x16 tiles: 4 strip tiles, still a permutation.
  ASSERT_TRUE(TiledMapping::compatible(1, 64, 1, 16));
  const TiledMapping strips(1, 64, 1, 16);
  std::vector<char> seen(64, 0);
  for (int r = 0; r < 64; ++r) {
    const int node = strips.node_of_rank(r);
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(node)]);
    seen[static_cast<std::size_t>(node)] = 1;
  }
  // First strip fills nodes 0..15 in order.
  EXPECT_EQ(strips.node_of_rank(0), 0);
  EXPECT_EQ(strips.node_of_rank(15), 15);
  EXPECT_EQ(strips.node_of_rank(16), 16);
}

TEST(TiledMappingEdges, IndivisibleTilesAreRejected) {
  EXPECT_FALSE(TiledMapping::compatible(16, 16, 3, 4));
  EXPECT_FALSE(TiledMapping::compatible(16, 16, 4, 3));
  EXPECT_THROW(TiledMapping(16, 16, 3, 4), CheckError);
}

TEST(TiledMappingEdges, ChooseTilePrefersSquarestCompatibleShape) {
  // 64-node dragonfly groups on a 32x32 grid: 8x8 is the squarest cut.
  const TiledMapping::TileShape t = TiledMapping::choose_tile(32, 32, 64);
  EXPECT_EQ(t.w, 8);
  EXPECT_EQ(t.h, 8);
  // 1xN grid: only strip tiles divide.
  const TiledMapping::TileShape s = TiledMapping::choose_tile(1, 64, 16);
  EXPECT_EQ(s.w, 1);
  EXPECT_EQ(s.h, 16);
}

TEST(TiledMappingEdges, GroupLocalityOnDragonflyAndFatTree) {
  // The default mapping must keep each process tile inside one dragonfly
  // group / fat-tree pod: ranks of the same tile share the coarse unit.
  {
    const std::unique_ptr<Dragonfly> net = make_dragonfly(256);
    const std::unique_ptr<Mapping> m = make_default_mapping(*net, 16, 16);
    const int g0 = m->node_of_rank(0) / net->group_size();
    EXPECT_EQ(m->node_of_rank(7) / net->group_size(), g0);
    EXPECT_EQ(m->node_of_rank(7 * 16 + 7) / net->group_size(), g0);
  }
  {
    const std::unique_ptr<FatTree> net = make_fattree(256);
    const std::unique_ptr<Mapping> m = make_default_mapping(*net, 16, 16);
    const int p0 = m->node_of_rank(0) / net->pod_size();
    EXPECT_EQ(m->node_of_rank(7) / net->pod_size(), p0);
  }
}

}  // namespace
}  // namespace stormtrack
