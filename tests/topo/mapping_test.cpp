#include "topo/mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(RowMajorMapping, Identity) {
  RowMajorMapping m(16);
  for (int r = 0; r < 16; ++r) EXPECT_EQ(m.node_of_rank(r), r);
  EXPECT_THROW((void)m.node_of_rank(16), CheckError);
}

TEST(RandomMapping, IsPermutation) {
  RandomMapping m(64, 99);
  std::set<int> nodes;
  for (int r = 0; r < 64; ++r) nodes.insert(m.node_of_rank(r));
  EXPECT_EQ(nodes.size(), 64u);
  EXPECT_EQ(*nodes.begin(), 0);
  EXPECT_EQ(*nodes.rbegin(), 63);
}

TEST(RandomMapping, DeterministicBySeed) {
  RandomMapping a(32, 5), b(32, 5), c(32, 6);
  bool all_same = true, any_diff_c = false;
  for (int r = 0; r < 32; ++r) {
    all_same &= (a.node_of_rank(r) == b.node_of_rank(r));
    any_diff_c |= (a.node_of_rank(r) != c.node_of_rank(r));
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(FoldingMapping, CompatibilityRules) {
  Torus3D t(8, 8, 16);
  EXPECT_TRUE(FoldingMapping::compatible(32, 32, t));   // 4*4 == 16
  EXPECT_FALSE(FoldingMapping::compatible(32, 16, t));  // 4*2 != 16
  EXPECT_FALSE(FoldingMapping::compatible(30, 32, t));  // not divisible
}

TEST(FoldingMapping, IsPermutation) {
  Torus3D t(8, 8, 16);
  FoldingMapping m(32, 32, t);
  std::set<int> nodes;
  for (int r = 0; r < 1024; ++r) nodes.insert(m.node_of_rank(r));
  EXPECT_EQ(nodes.size(), 1024u);
}

TEST(FoldingMapping, NearUnitDilationOnBgl1024) {
  // The paper's §V-C claim: with the folding mapping, process-grid
  // neighbours are (near-)neighbours on the torus.
  Torus3D t(8, 8, 16);
  FoldingMapping m(32, 32, t);
  const double d = average_neighbor_dilation(t, m, 32, 32);
  EXPECT_LT(d, 1.6);
  EXPECT_GE(d, 1.0);
}

TEST(FoldingMapping, BeatsRowMajorAndRandom) {
  Torus3D t(8, 8, 16);
  FoldingMapping fold(32, 32, t);
  RowMajorMapping row(1024);
  RandomMapping rnd(1024, 1);
  const double df = average_neighbor_dilation(t, fold, 32, 32);
  const double dr = average_neighbor_dilation(t, row, 32, 32);
  const double dx = average_neighbor_dilation(t, rnd, 32, 32);
  EXPECT_LT(df, dr);
  EXPECT_LT(df, dx);
}

TEST(FoldingMapping, WorksFor512And256) {
  {
    Torus3D t(8, 8, 8);
    ASSERT_TRUE(FoldingMapping::compatible(16, 32, t));
    FoldingMapping m(16, 32, t);
    EXPECT_LT(average_neighbor_dilation(t, m, 16, 32), 1.8);
  }
  {
    Torus3D t(8, 8, 4);
    ASSERT_TRUE(FoldingMapping::compatible(16, 16, t));
    FoldingMapping m(16, 16, t);
    EXPECT_LT(average_neighbor_dilation(t, m, 16, 16), 1.8);
  }
}

TEST(FoldingMapping, IncompatibleThrows) {
  Torus3D t(8, 8, 16);
  EXPECT_THROW(FoldingMapping(30, 32, t), CheckError);
}

TEST(ChooseProcessGrid, MostSquare) {
  EXPECT_EQ(choose_process_grid(1024).px, 32);
  EXPECT_EQ(choose_process_grid(1024).py, 32);
  EXPECT_EQ(choose_process_grid(512).px, 16);
  EXPECT_EQ(choose_process_grid(512).py, 32);
  EXPECT_EQ(choose_process_grid(256).px, 16);
  EXPECT_EQ(choose_process_grid(7).px, 1);
  EXPECT_EQ(choose_process_grid(7).py, 7);
}

TEST(MakeDefaultMapping, FoldsOnTorusRowMajorElsewhere) {
  Torus3D t(8, 8, 16);
  EXPECT_EQ(make_default_mapping(t, 32, 32)->name(), "folding");
  EXPECT_EQ(make_default_mapping(t, 31, 33)->name(), "row-major");
  SwitchedNetwork s(1024, 16);
  EXPECT_EQ(make_default_mapping(s, 32, 32)->name(), "row-major");
}

TEST(Mapping, RankHopsUsesMapping) {
  Torus3D t(4, 4, 4);
  RowMajorMapping m(64);
  EXPECT_EQ(m.rank_hops(t, 0, 1), t.hops(0, 1));
}

}  // namespace
}  // namespace stormtrack
