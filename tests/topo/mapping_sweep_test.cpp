/// Parameterized sweep of the folding mapping across the machine shapes
/// used in the experiments (and a few exotic ones): permutation property
/// and near-unit neighbour dilation must hold for every foldable shape.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "topo/mapping.hpp"

namespace stormtrack {
namespace {

// (torus dx, dy, dz, grid px, py)
using Shape = std::tuple<int, int, int, int, int>;

class FoldingSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(FoldingSweep, PermutationAndDilation) {
  const auto [dx, dy, dz, px, py] = GetParam();
  Torus3D torus(dx, dy, dz);
  ASSERT_TRUE(FoldingMapping::compatible(px, py, torus));
  FoldingMapping mapping(px, py, torus);

  std::set<int> nodes;
  for (int r = 0; r < px * py; ++r) nodes.insert(mapping.node_of_rank(r));
  EXPECT_EQ(static_cast<int>(nodes.size()), px * py);

  const double dilation = average_neighbor_dilation(torus, mapping, px, py);
  EXPECT_GE(dilation, 1.0);
  EXPECT_LT(dilation, 2.0) << "fold quality degraded for " << px << "x" << py
                           << " on " << torus.name();

  // The fold must always beat random placement.
  RandomMapping rnd(px * py, 5);
  EXPECT_LT(dilation, average_neighbor_dilation(torus, rnd, px, py));
}

INSTANTIATE_TEST_SUITE_P(
    MachineShapes, FoldingSweep,
    ::testing::Values(Shape{8, 8, 16, 32, 32},   // BG/L 1024
                      Shape{8, 8, 8, 16, 32},    // BG/L 512
                      Shape{8, 8, 4, 16, 16},    // BG/L 256
                      Shape{8, 8, 2, 16, 8},     // BG/L 128
                      Shape{4, 4, 4, 8, 8},      // small cube
                      Shape{4, 8, 8, 8, 32},     // asymmetric
                      Shape{2, 2, 4, 4, 4},      // tiny
                      Shape{8, 8, 1, 8, 8}));    // flat (2D) torus

TEST(FoldingSweepExtra, DilationImprovesOnRowMajorForAllMachines) {
  for (const int cores : {256, 512, 1024}) {
    const auto torus = make_bluegene(cores);
    const ProcessGridShape g = choose_process_grid(cores);
    ASSERT_TRUE(FoldingMapping::compatible(g.px, g.py, *torus));
    FoldingMapping fold(g.px, g.py, *torus);
    RowMajorMapping row(cores);
    EXPECT_LT(average_neighbor_dilation(*torus, fold, g.px, g.py),
              average_neighbor_dilation(*torus, row, g.px, g.py))
        << cores << " cores";
  }
}

}  // namespace
}  // namespace stormtrack
