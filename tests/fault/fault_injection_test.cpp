#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "pda/pda.hpp"
#include "util/check.hpp"
#include "wsim/split_file.hpp"
#include "wsim/weather.hpp"

namespace stormtrack {
namespace {

FaultEvent event(FaultKind kind, int point, int rank = -1) {
  FaultEvent e;
  e.kind = kind;
  e.point = point;
  e.rank = rank;
  return e;
}

FaultEvent task_event(int point, const char* site, int index, int attempts) {
  FaultEvent e;
  e.kind = FaultKind::kTaskFault;
  e.point = point;
  e.site = site;
  e.index = index;
  e.attempts = attempts;
  return e;
}

// ---------------------------------------------------------- injector core

TEST(FaultInjector, TransientReadFiresItsAttemptBudgetThenClears) {
  FaultPlan plan;
  FaultEvent e = event(FaultKind::kSplitReadTransient, 1, 4);
  e.attempts = 2;
  plan.events.push_back(e);
  FaultInjector inj(plan);

  inj.begin_point(0);
  EXPECT_EQ(inj.check_split_read(4), SplitReadFault::kNone);  // wrong point
  inj.begin_point(1);
  EXPECT_EQ(inj.check_split_read(3), SplitReadFault::kNone);  // wrong rank
  EXPECT_EQ(inj.check_split_read(4), SplitReadFault::kTransient);
  EXPECT_EQ(inj.check_split_read(4), SplitReadFault::kTransient);
  EXPECT_EQ(inj.check_split_read(4), SplitReadFault::kNone);  // budget spent
  EXPECT_EQ(inj.stats().split_read_faults, 2);
}

TEST(FaultInjector, PermanentReadAlwaysFiresAndWildcardMatchesAnyRank) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kSplitReadPermanent, 0, -1));
  FaultInjector inj(plan);
  inj.begin_point(0);
  for (int r = 0; r < 3; ++r)
    EXPECT_EQ(inj.check_split_read(r), SplitReadFault::kPermanent);
  EXPECT_THROW(inj.inject_split_read(0), FaultError);
}

TEST(FaultInjector, InjectSplitReadThrowsTransientFlaggedFaultError) {
  FaultPlan plan;
  FaultEvent e = event(FaultKind::kSplitReadTransient, 0, 2);
  e.attempts = 1;
  plan.events.push_back(e);
  FaultInjector inj(plan);
  inj.begin_point(0);
  try {
    inj.inject_split_read(2);
    FAIL() << "expected FaultError";
  } catch (const FaultError& err) {
    EXPECT_TRUE(err.transient());
    EXPECT_EQ(err.kind(), FaultKind::kSplitReadTransient);
  }
  inj.inject_split_read(2);  // budget spent: no throw
}

TEST(FaultInjector, GuardTaskMatchesSiteAndIndex) {
  FaultPlan plan;
  plan.events.push_back(task_event(0, "build_candidates", 1, 1));
  FaultInjector inj(plan);
  inj.begin_point(0);
  inj.guard_task("build_candidates", 0);  // wrong index: no throw
  inj.guard_task("predict_costs", 1);     // wrong site: no throw
  EXPECT_THROW(inj.guard_task("build_candidates", 1), FaultError);
  inj.guard_task("build_candidates", 1);  // attempts=1: cleared
  EXPECT_EQ(inj.stats().task_faults, 1);
}

TEST(FaultInjector, RanksDyingAtIsSortedAndDeduplicated) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kRankDeath, 2, 9));
  plan.events.push_back(event(FaultKind::kRankDeath, 2, 4));
  plan.events.push_back(event(FaultKind::kRankDeath, 2, 9));
  plan.events.push_back(event(FaultKind::kRankDeath, 5, 1));
  const FaultInjector inj(plan);
  EXPECT_EQ(inj.ranks_dying_at(2), (std::vector<int>{4, 9}));
  EXPECT_TRUE(inj.ranks_dying_at(3).empty());
}

TEST(FaultInjector, OnPayloadMatchesEndpointsAndCountsStats) {
  FaultPlan plan;
  FaultEvent drop = event(FaultKind::kPayloadDrop, 0, 2);
  drop.attempts = 0;  // every message from rank 2
  plan.events.push_back(drop);
  FaultEvent corrupt = event(FaultKind::kPayloadCorrupt, 0, -1);
  corrupt.peer = 7;
  corrupt.attempts = 0;
  plan.events.push_back(corrupt);
  FaultInjector inj(plan);
  inj.begin_point(0);
  EXPECT_EQ(inj.on_payload(2, 5, 100), PayloadFaultHook::Action::kDrop);
  EXPECT_EQ(inj.on_payload(3, 7, 100), PayloadFaultHook::Action::kCorrupt);
  EXPECT_EQ(inj.on_payload(3, 5, 100), PayloadFaultHook::Action::kNone);
  EXPECT_EQ(inj.stats().payload_drops, 1);
  EXPECT_EQ(inj.stats().payload_corruptions, 1);
}

TEST(ExchangePayloads, HookDropsAndCorruptsInFlight) {
  const Torus3D topo(4, 4, 4, LinkParams{1e-6, 1e-7, 1e8});
  const RowMajorMapping map(64);
  const SimComm comm(topo, map);

  FaultPlan plan;
  FaultEvent drop = event(FaultKind::kPayloadDrop, 0, 1);
  drop.attempts = 0;
  plan.events.push_back(drop);
  FaultEvent corrupt = event(FaultKind::kPayloadCorrupt, 0, 2);
  corrupt.attempts = 0;
  plan.events.push_back(corrupt);
  FaultInjector inj(plan);
  inj.begin_point(0);

  std::vector<TypedMessage<double>> msgs{
      {0, 5, {1.0, 2.0}},   // untouched
      {1, 5, {3.0, 4.0}},   // dropped
      {2, 5, {5.0, 6.0}},   // last element corrupted
  };
  const auto clean = exchange_payloads(comm, msgs);
  const auto faulty = exchange_payloads(comm, msgs, &inj);

  // Pricing happens before injection: the bytes were sent either way.
  EXPECT_EQ(faulty.traffic.total_bytes, clean.traffic.total_bytes);

  ASSERT_EQ(faulty.received_by(5).size(), 2u);
  EXPECT_EQ(faulty.received_by(5)[0].src, 0);
  EXPECT_EQ(faulty.received_by(5)[0].payload, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(faulty.received_by(5)[1].src, 2);
  EXPECT_EQ(faulty.received_by(5)[1].payload[0], 5.0);
  EXPECT_NE(faulty.received_by(5)[1].payload[1], 6.0) << "corruption missing";
}

// ------------------------------------------------------- PDA degradation

class PdaFaultTest : public ::testing::Test {
 protected:
  PdaFaultTest() {
    WeatherConfig wc;
    wc.domain.resolution_km = 24.0;
    model_.emplace(wc, 42);
    for (int i = 0; i < 12; ++i) model_->step();  // let clouds organize
    files_ = write_split_files(*model_, 8, 8);
  }

  std::optional<WeatherModel> model_;
  std::vector<SplitFile> files_;
};

TEST_F(PdaFaultTest, PermanentLossYieldsLostFilesAndSuspectClusters) {
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult clean = parallel_data_analysis(files_, cfg);
  ASSERT_FALSE(clean.qcloudinfo.empty()) << "scenario must detect clouds";
  EXPECT_FALSE(clean.degraded());
  EXPECT_TRUE(clean.lost_files.empty());

  // Lose the strongest subdomain's file permanently.
  const int lost_rank = clean.qcloudinfo.front().file_rank;
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kSplitReadPermanent, 0, lost_rank));
  FaultInjector inj(plan);
  inj.begin_point(0);
  cfg.injector = &inj;
  const PdaResult degraded = parallel_data_analysis(files_, cfg);

  EXPECT_TRUE(degraded.degraded());
  ASSERT_EQ(degraded.lost_files.size(), 1u);
  EXPECT_EQ(degraded.lost_files[0].file_rank, lost_rank);
  EXPECT_EQ(degraded.lost_files[0].qcloud, 0.0);
  EXPECT_EQ(degraded.qcloudinfo.size(), clean.qcloudinfo.size() - 1);
  for (const QCloudInfo& q : degraded.qcloudinfo)
    EXPECT_NE(q.file_rank, lost_rank);
  // Exactly the clusters with a member within 2 file-grid hops of the hole
  // must be flagged.
  const QCloudInfo& lost = degraded.lost_files[0];
  bool any_near = false;
  for (const QCloudInfo& q : degraded.qcloudinfo)
    if (std::max(std::abs(q.file_x - lost.file_x),
                 std::abs(q.file_y - lost.file_y)) <= 2)
      any_near = true;
  EXPECT_EQ(!degraded.suspect_clusters.empty(), any_near);
  for (const int c : degraded.suspect_clusters) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, static_cast<int>(degraded.clusters.size()));
  }
}

TEST_F(PdaFaultTest, TransientLossWithinRetryBudgetIsInvisible) {
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult clean = parallel_data_analysis(files_, cfg);
  ASSERT_FALSE(clean.qcloudinfo.empty());

  FaultPlan plan;
  FaultEvent e =
      event(FaultKind::kSplitReadTransient, 0, clean.qcloudinfo[0].file_rank);
  e.attempts = 2;  // < max_read_retries
  plan.events.push_back(e);
  FaultInjector inj(plan);
  inj.begin_point(0);
  cfg.injector = &inj;
  const PdaResult retried = parallel_data_analysis(files_, cfg);

  EXPECT_FALSE(retried.degraded());
  EXPECT_EQ(retried.qcloudinfo.size(), clean.qcloudinfo.size());
  EXPECT_EQ(retried.rectangles, clean.rectangles);
  EXPECT_EQ(inj.stats().split_read_faults, 2) << "retries must have fired";
}

TEST_F(PdaFaultTest, TransientBeyondRetryBudgetLosesTheFile) {
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  cfg.max_read_retries = 3;
  const PdaResult clean = parallel_data_analysis(files_, cfg);
  ASSERT_FALSE(clean.qcloudinfo.empty());

  FaultPlan plan;
  FaultEvent e =
      event(FaultKind::kSplitReadTransient, 0, clean.qcloudinfo[0].file_rank);
  e.attempts = 10;  // outlasts the 1 + max_read_retries read attempts
  plan.events.push_back(e);
  FaultInjector inj(plan);
  inj.begin_point(0);
  cfg.injector = &inj;
  const PdaResult degraded = parallel_data_analysis(files_, cfg);
  ASSERT_EQ(degraded.lost_files.size(), 1u);
  EXPECT_EQ(degraded.lost_files[0].file_rank, clean.qcloudinfo[0].file_rank);
}

// ------------------------------------------------- pipeline ladder rungs

class LadderTest : public ::testing::Test {
 protected:
  LadderTest() : machine_(Machine::bluegene(256)) {}

  static NestSpec nest(int id, int nx, int ny) {
    NestSpec n;
    n.id = id;
    n.region = Rect{0, 0, nx / 3, ny / 3};
    n.shape = NestShape{nx, ny};
    return n;
  }

  static std::vector<NestSpec> active() {
    return {nest(1, 200, 200), nest(2, 300, 250)};
  }

  ModelStack models_;
  Machine machine_;
};

TEST_F(LadderTest, CleanPlanMatchesNoInjectorRun) {
  AdaptationPipeline plain(machine_, models_.model, models_.truth,
                           ManagerConfig{});
  FaultInjector inj((FaultPlan()));
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline faulted(machine_, models_.model, models_.truth, cfg);
  for (int i = 0; i < 3; ++i) {
    const StepOutcome a = plain.apply(active());
    const StepOutcome b = faulted.apply(active());
    EXPECT_EQ(a.chosen, b.chosen);
    EXPECT_FALSE(b.degraded);
    EXPECT_DOUBLE_EQ(a.committed.actual_redist, b.committed.actual_redist);
  }
  EXPECT_EQ(plain.state_fingerprint(), faulted.state_fingerprint());
}

TEST_F(LadderTest, TransientTaskFaultRetriesAndCommits) {
  FaultPlan plan;
  plan.events.push_back(task_event(1, "build_candidates", 1, 1));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  EXPECT_FALSE(pipe.apply(active()).degraded);  // point 0: clean
  const StepOutcome out = pipe.apply(active()); // point 1: faulted
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradation, "retried");
  EXPECT_EQ(out.chosen, "diffusion");  // full rung succeeded on retry
  EXPECT_EQ(pipe.metrics().get("recovery.retried_points").count, 1);
  EXPECT_EQ(pipe.metrics().get("recovery.rollbacks").count, 1);
  EXPECT_EQ(pipe.metrics().get("fault.task_faults").count, 1);
}

TEST_F(LadderTest, DiffusionPinnedFaultFallsBackToScratchOnly) {
  // index 1 of build_candidates is the diffusion partitioner; attempts=0
  // keeps it failing across retries, so only the scratch-only rung passes.
  FaultPlan plan;
  plan.events.push_back(task_event(1, "build_candidates", 1, 0));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());
  const StepOutcome out = pipe.apply(active());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradation, "scratch_only");
  EXPECT_EQ(out.chosen, "scratch");
  EXPECT_EQ(pipe.metrics().get("recovery.scratch_fallbacks").count, 1);
  EXPECT_EQ(pipe.metrics().get("recovery.rollbacks").count, 2);
  // The committed allocation still covers the machine for both nests.
  EXPECT_EQ(out.allocation.num_nests(), 2u);
}

TEST_F(LadderTest, UnrecoverableFaultRetainsPreviousAllocation) {
  // The commit site runs on every rung; attempts=0 defeats the whole ladder.
  FaultPlan plan;
  plan.events.push_back(task_event(1, "commit", 0, 0));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  const StepOutcome before = pipe.apply(active());
  const StepOutcome out = pipe.apply(active());
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradation, "retained_previous");
  EXPECT_EQ(out.chosen, "retained");
  EXPECT_EQ(out.allocation.rects(), before.allocation.rects());
  EXPECT_EQ(pipe.metrics().get("recovery.skipped_points").count, 1);
  EXPECT_EQ(pipe.metrics().get("recovery.rollbacks").count, 3);
  // The next point is clean and proceeds normally from the retained state.
  const StepOutcome after = pipe.apply(active());
  EXPECT_FALSE(after.degraded);
}

TEST_F(LadderTest, EveryCommitIsValidatorGated) {
  FaultInjector inj((FaultPlan()));
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());
  pipe.apply(active());
  EXPECT_EQ(pipe.metrics().get("recovery.validations").count, 2);
}

}  // namespace
}  // namespace stormtrack
