#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "alloc/partitioner.hpp"
#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "fault/fault_injector.hpp"
#include "fault/invariants.hpp"
#include "redist/redistributor.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

NestSpec nest(int id, int nx, int ny) {
  NestSpec n;
  n.id = id;
  n.region = Rect{0, 0, nx / 3, ny / 3};
  n.shape = NestShape{nx, ny};
  return n;
}

FaultEvent rank_death(int point, int rank) {
  FaultEvent e;
  e.kind = FaultKind::kRankDeath;
  e.point = point;
  e.rank = rank;
  return e;
}

FaultEvent task_event(int point, const char* site, int index, int attempts) {
  FaultEvent e;
  e.kind = FaultKind::kTaskFault;
  e.point = point;
  e.site = site;
  e.index = index;
  e.attempts = attempts;
  return e;
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : machine_(Machine::bluegene(256)) {}

  static std::vector<NestSpec> active() {
    return {nest(1, 200, 200), nest(2, 300, 250), nest(3, 250, 300)};
  }

  ModelStack models_;
  Machine machine_;
};

// ------------------------------------------------- transactional rollback

TEST_F(RecoveryTest, FailedPointLeavesStateFingerprintUnchanged) {
  FaultPlan plan;
  plan.events.push_back(task_event(1, "redistribute", 0, 0));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());
  const std::uint64_t before = pipe.state_fingerprint();

  // Point 1: every ladder rung dies in Redistribute — AFTER Commit already
  // moved the candidate tree into the pipeline, so the rollback genuinely
  // has state to restore.
  const StepOutcome out = pipe.apply(active());
  EXPECT_EQ(out.degradation, "retained_previous");
  EXPECT_EQ(pipe.state_fingerprint(), before)
      << "rollback must restore tree+allocation+nests byte-identically";
  EXPECT_GE(pipe.metrics().get("recovery.rollbacks").count, 3);
}

TEST_F(RecoveryTest, RollbackRestoresAcrossDifferentActiveSets) {
  FaultPlan plan;
  plan.events.push_back(task_event(1, "commit", 0, 0));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());
  const std::uint64_t before = pipe.state_fingerprint();

  // The failed point would have deleted nest 3 and inserted nest 4; the
  // rollback must also restore the internal nest map (ids 1-3).
  const StepOutcome out = pipe.apply(
      std::vector<NestSpec>{nest(1, 200, 200), nest(2, 300, 250),
                            nest(4, 220, 220)});
  EXPECT_EQ(out.degradation, "retained_previous");
  EXPECT_EQ(pipe.state_fingerprint(), before);

  // A later clean point with the same new set behaves as if the failed one
  // never happened: nest 3 is only deleted now.
  const StepOutcome clean = pipe.apply(
      std::vector<NestSpec>{nest(1, 200, 200), nest(2, 300, 250),
                            nest(4, 220, 220)});
  EXPECT_FALSE(clean.degraded);
  EXPECT_EQ(clean.num_deleted, 1);
  EXPECT_EQ(clean.num_inserted, 1);
}

// --------------------------------------------------- rank-loss recovery

TEST_F(RecoveryTest, RankDeathShrinksViewAndPassesValidation) {
  const int px = machine_.grid_px();
  const int py = machine_.grid_py();
  const int dead = px * py - 1;  // corner rank: cheapest possible shrink
  FaultPlan plan;
  plan.events.push_back(rank_death(1, dead));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());

  const StepOutcome out = pipe.apply(active());
  EXPECT_EQ(out.ranks_lost, 1);
  EXPECT_FALSE(out.degraded) << "rank death alone does not degrade the point";
  EXPECT_LT(pipe.view_px() * pipe.view_py(), px * py);
  EXPECT_EQ(pipe.metrics().get("fault.rank_deaths").count, 1);
  EXPECT_GT(pipe.metrics().get("recovery.procs_retired").count, 0);

  // The committed allocation exactly partitions the shrunken view (the
  // validator would have thrown otherwise; assert it from the outside too).
  const Rect view{0, 0, pipe.view_px(), pipe.view_py()};
  validate_allocation(pipe.tree(), pipe.allocation(), view);
  std::int64_t covered = 0;
  for (const auto& [id, rect] : pipe.allocation().rects()) {
    EXPECT_TRUE(view.contains(rect)) << "nest " << id;
    covered += rect.area();
  }
  EXPECT_EQ(covered, view.area());
}

TEST_F(RecoveryTest, RankLossRedistributionRetainsAtLeastScratchOverlap) {
  const int px = machine_.grid_px();
  const int py = machine_.grid_py();
  FaultPlan plan;
  plan.events.push_back(rank_death(1, px * py - 1));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  const StepOutcome first = pipe.apply(active());
  const Allocation before = first.allocation;
  const AllocTree tree_before = pipe.tree();

  pipe.apply(active());
  const std::int64_t total =
      pipe.metrics().get("recovery.rank_loss_total_points").count;
  const std::int64_t overlap =
      pipe.metrics().get("recovery.rank_loss_overlap_points").count;
  ASSERT_GT(total, 0);
  EXPECT_GT(overlap, 0) << "re-subdivision must retain data in place";

  // Baseline: rebuilding the tree from scratch on the same shrunken view
  // (a fresh Huffman build ignoring current placement) must not beat the
  // structure-preserving re-subdivision on retained overlap.
  ReconfigRequest req;
  req.inserted = tree_before.leaves();
  const AllocTree scratch_tree =
      ScratchPartitioner().propose(AllocTree{}, req);
  const Rect view{0, 0, pipe.view_px(), pipe.view_py()};
  const Allocation scratch_alloc = allocate(scratch_tree, px, py, view);
  std::int64_t scratch_overlap = 0;
  for (const NestSpec& n : active()) {
    const auto old_rect = before.find(n.id);
    const auto new_rect = scratch_alloc.find(n.id);
    ASSERT_TRUE(old_rect && new_rect);
    scratch_overlap +=
        plan_redistribution(n.shape, *old_rect, *new_rect, px).overlap_points;
  }
  EXPECT_GE(overlap, scratch_overlap);
}

TEST_F(RecoveryTest, DeathInAlreadyRetiredRegionLeavesViewUnchanged) {
  const int px = machine_.grid_px();
  const int py = machine_.grid_py();
  FaultPlan plan;
  // Corner rank (px-1, py-1) dies first; the tie-break shrinks the width,
  // so the whole column x = px-1 is retired. The second death, at
  // (px-1, py-2), then falls in the retired column: no further shrink.
  plan.events.push_back(rank_death(1, px * py - 1));
  plan.events.push_back(rank_death(2, (py - 2) * px + (px - 1)));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  pipe.apply(active());
  pipe.apply(active());
  const int vx = pipe.view_px();
  const int vy = pipe.view_py();
  EXPECT_EQ(vx, px - 1);
  pipe.apply(active());
  EXPECT_EQ(pipe.view_px(), vx);
  EXPECT_EQ(pipe.view_py(), vy);
  validate_allocation(pipe.tree(), pipe.allocation(),
                      Rect{0, 0, pipe.view_px(), pipe.view_py()});
  EXPECT_EQ(pipe.metrics().get("fault.rank_deaths").count, 2);
  EXPECT_EQ(pipe.metrics().get("fault.rank_deaths_outside_view").count, 1);
}

TEST_F(RecoveryTest, DeathOfRankZeroIsUnrecoverable) {
  FaultPlan plan;
  plan.events.push_back(rank_death(0, 0));
  FaultInjector inj(plan);
  ManagerConfig cfg;
  cfg.injector = &inj;
  AdaptationPipeline pipe(machine_, models_.model, models_.truth, cfg);
  // No origin-anchored view can exclude rank 0: the run cannot continue.
  EXPECT_THROW((void)pipe.apply(active()), CheckError);
}

// ------------------------------------------------ coupled-system recovery

class CoupledRecoveryTest : public ::testing::Test {
 protected:
  CoupledRecoveryTest() : machine_(Machine::bluegene(256)) {}

  CoupledConfig config() const {
    CoupledConfig c;
    c.scenario.weather.domain.resolution_km = 24.0;  // test-sized grid
    c.scenario.sim_px = 16;
    c.scenario.sim_py = 16;
    c.scenario.pda.analysis_procs = 16;
    c.manager.steps_per_interval = 3;
    return c;
  }

  ModelStack models_;
  Machine machine_;
};

TEST_F(CoupledRecoveryTest, SkippedIntervalRollsBackTrackerToo) {
  FaultPlan plan;
  plan.events.push_back(task_event(3, "commit", 0, 0));
  FaultInjector inj(plan);
  CoupledConfig cfg = config();
  cfg.manager.injector = &inj;
  CoupledSimulation sim(machine_, models_.model, models_.truth, cfg);

  CoupledSimulation reference(machine_, models_.model, models_.truth,
                              config());
  for (int i = 0; i < 3; ++i) {
    sim.advance();
    reference.advance();
  }
  const IntervalReport skipped = sim.advance();  // interval 3: ladder dies
  EXPECT_EQ(skipped.realloc.degradation, "retained_previous");
  reference.advance();

  // The faulted run skipped interval 3 entirely (tracker rolled back, nests
  // untouched); from interval 4 on the weather keeps evolving, so it will
  // not match the reference exactly — but the nest set must still be
  // consistent and alive.
  for (int i = 4; i < 8; ++i) {
    const IntervalReport r = sim.advance();
    EXPECT_FALSE(r.realloc.degraded) << "interval " << i;
    EXPECT_EQ(sim.nests().size(), sim.allocation().num_nests());
    for (const auto& [id, n] : sim.nests())
      EXPECT_TRUE(sim.allocation().find(id).has_value()) << "nest " << id;
  }
}

TEST_F(CoupledRecoveryTest, PayloadFaultsTriggerFieldReinitNotCrash) {
  // Drop and corrupt every redistribution payload over several intervals:
  // any retained nest whose rectangle moves loses its moved data and must
  // be rebuilt from the parent grid.
  FaultPlan plan;
  for (int point = 1; point < 10; ++point) {
    FaultEvent drop;
    drop.kind = FaultKind::kPayloadDrop;
    drop.point = point;
    drop.attempts = 0;
    plan.events.push_back(drop);
  }
  FaultInjector inj(plan);
  CoupledConfig cfg = config();
  cfg.manager.injector = &inj;
  CoupledSimulation sim(machine_, models_.model, models_.truth, cfg);
  for (int i = 0; i < 10; ++i) {
    sim.advance();
    for (const auto& [id, n] : sim.nests()) {
      EXPECT_EQ(n.field.width(), n.spec.shape.nx);
      EXPECT_EQ(n.field.height(), n.spec.shape.ny);
    }
  }
}

TEST_F(CoupledRecoveryTest, TrackerSnapshotRoundTrips) {
  RealScenarioConfig rc;
  rc.weather.domain.resolution_km = 24.0;
  rc.sim_px = 16;
  rc.sim_py = 16;
  rc.pda.analysis_procs = 16;
  RealScenarioDriver driver(rc);
  driver.next();
  driver.next();
  const NestTracker::State snap = driver.tracker_snapshot();
  const std::uint64_t fp = driver.tracker_fingerprint();
  driver.next();  // mutates the tracker
  driver.restore_tracker(snap);
  EXPECT_EQ(driver.tracker_fingerprint(), fp);
}

}  // namespace
}  // namespace stormtrack
