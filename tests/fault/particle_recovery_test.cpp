// Fault recovery through the particle workload: rank deaths shrink the
// processor view and force reallocation moves, payload faults strike the
// particle exchanges themselves — in every case the run continues and no
// particle is lost.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "util/check.hpp"
#include "wsim/particles.hpp"

namespace stormtrack {
namespace {

CoupledConfig particle_config() {
  CoupledConfig cfg;
  cfg.scenario.weather.domain.resolution_km = 24.0;
  cfg.scenario.sim_px = 16;
  cfg.scenario.sim_py = 16;
  cfg.scenario.pda.analysis_procs = 16;
  cfg.manager.steps_per_interval = 3;
  cfg.workload = "particles";
  return cfg;
}

FaultEvent rank_death(int point, int rank) {
  FaultEvent e;
  e.kind = FaultKind::kRankDeath;
  e.point = point;
  e.rank = rank;
  return e;
}

const ParticleWorkload& particles_of(const CoupledSimulation& sim) {
  const auto* w = dynamic_cast<const ParticleWorkload*>(&sim.workload());
  EXPECT_NE(w, nullptr);
  return *w;
}

void expect_no_lost_particles(const CoupledSimulation& sim, int interval) {
  const ParticleWorkload& w = particles_of(sim);
  const std::int64_t per_nest = sim.config().particles.particles_per_nest;
  EXPECT_EQ(w.total_particles(),
            per_nest * static_cast<std::int64_t>(w.num_nests()))
      << "particles lost by interval " << interval;
}

TEST(ParticleRecovery, RankDeathsLoseNoParticles) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);

  // Kill ranks at intervals 2 and 5: each death shrinks the usable view,
  // so surviving nests are squeezed onto new rectangles and their particle
  // ownership genuinely moves.
  FaultPlan plan;
  plan.events.push_back(rank_death(2, 255));
  plan.events.push_back(rank_death(5, 100));
  FaultInjector inj(plan);
  CoupledConfig cfg = particle_config();
  cfg.manager.injector = &inj;
  CoupledSimulation sim(machine, models.model, models.truth, cfg);

  for (int i = 0; i < 9; ++i) {
    (void)sim.advance();
    expect_no_lost_particles(sim, i);
    // Every live nest still has a committed allocation to integrate on.
    for (const int id : sim.workload().nest_ids())
      EXPECT_TRUE(sim.allocation().find(id).has_value()) << "nest " << id;
  }
  EXPECT_EQ(sim.metrics().get("fault.rank_deaths").count, 2);
}

TEST(ParticleRecovery, PayloadFaultsReinitTheNestInsteadOfCrashing) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);

  // Damage every exchange payload for several adaptation points: particle
  // handoffs and realloc moves fail their conservation/checksum checks,
  // surface as CheckError, and the engine answers by reseeding that nest —
  // never by crashing or silently dropping trajectories.
  FaultPlan plan;
  for (int point = 1; point < 8; ++point) {
    FaultEvent drop;
    drop.kind = FaultKind::kPayloadDrop;
    drop.point = point;
    drop.attempts = 0;
    plan.events.push_back(drop);
  }
  FaultInjector inj(plan);
  CoupledConfig cfg = particle_config();
  cfg.manager.injector = &inj;
  CoupledSimulation sim(machine, models.model, models.truth, cfg);

  for (int i = 0; i < 8; ++i) {
    (void)sim.advance();
    expect_no_lost_particles(sim, i);
  }
  EXPECT_GE(sim.metrics().get("recovery.field_reinits").count, 1)
      << "dropped particle payloads must route through the reinit path";
}

TEST(ParticleRecovery, FaultedRunStateStaysImportable) {
  ModelStack models;
  const Machine machine = Machine::bluegene(256);

  FaultPlan plan;
  plan.events.push_back(rank_death(3, 255));
  FaultInjector inj(plan);
  CoupledConfig cfg = particle_config();
  cfg.manager.injector = &inj;
  CoupledSimulation sim(machine, models.model, models.truth, cfg);
  for (int i = 0; i < 6; ++i) (void)sim.advance();

  // The post-recovery state is a valid checkpoint: a fresh simulation
  // (without the injector) imports it and reports the same fingerprint.
  CoupledSimulation restored(machine, models.model, models.truth,
                             particle_config());
  restored.import_state(sim.export_state());
  EXPECT_EQ(restored.state_fingerprint(), sim.state_fingerprint());
  expect_no_lost_particles(restored, 6);
}

}  // namespace
}  // namespace stormtrack
