#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/coupled.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/traces.hpp"
#include "exec/executor.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "sweep/sweep_runner.hpp"

namespace stormtrack {
namespace {

FaultEvent task_event(int point, const char* site, int index, int attempts) {
  FaultEvent e;
  e.kind = FaultKind::kTaskFault;
  e.point = point;
  e.site = site;
  e.index = index;
  e.attempts = attempts;
  return e;
}

/// A campaign that drives every rung of the degradation ladder plus a rank
/// death, so the serial-vs-threaded comparison covers all recovery paths.
FaultPlan ladder_campaign(int dead_rank) {
  FaultPlan plan;
  plan.events.push_back(task_event(1, "build_candidates", 1, 1));  // retried
  FaultEvent death;
  death.kind = FaultKind::kRankDeath;
  death.point = 2;
  death.rank = dead_rank;
  plan.events.push_back(death);
  plan.events.push_back(task_event(3, "build_candidates", 1, 0));  // scratch
  plan.events.push_back(task_event(4, "commit", 0, 0));            // skipped
  plan.validate();
  return plan;
}

TEST(FaultDeterminism, SerialAndThreadedPipelinesAgreePointwise) {
  const Machine machine = Machine::bluegene(256);
  const ModelStack models;
  SyntheticTraceConfig sc;
  sc.num_events = 6;
  sc.seed = 99;
  const Trace trace = generate_synthetic_trace(sc);
  const FaultPlan plan =
      ladder_campaign(machine.grid_px() * machine.grid_py() - 1);

  FaultInjector serial_inj(plan);
  ManagerConfig serial_cfg;
  serial_cfg.injector = &serial_inj;
  AdaptationPipeline serial(machine, models.model, models.truth, serial_cfg);

  ThreadPoolExecutor pool(8);
  FaultInjector threaded_inj(plan);
  ManagerConfig threaded_cfg;
  threaded_cfg.injector = &threaded_inj;
  threaded_cfg.executor = &pool;
  AdaptationPipeline threaded(machine, models.model, models.truth,
                              threaded_cfg);

  for (std::size_t e = 0; e < trace.size(); ++e) {
    const StepOutcome a = serial.apply(trace[e]);
    const StepOutcome b = threaded.apply(trace[e]);
    EXPECT_EQ(a.chosen, b.chosen) << "point " << e;
    EXPECT_EQ(a.degraded, b.degraded) << "point " << e;
    EXPECT_EQ(a.degradation, b.degradation) << "point " << e;
    EXPECT_EQ(a.ranks_lost, b.ranks_lost) << "point " << e;
    EXPECT_EQ(a.committed.actual_total(), b.committed.actual_total())
        << "point " << e;
    EXPECT_EQ(serial.state_fingerprint(), threaded.state_fingerprint())
        << "state diverged at point " << e;
  }

  // The campaign genuinely fired, identically in both runs.
  EXPECT_GT(serial_inj.stats().task_faults, 0);
  EXPECT_EQ(serial_inj.stats().task_faults, threaded_inj.stats().task_faults);
  EXPECT_EQ(serial.metrics().get("recovery.retried_points").count, 1);
  EXPECT_EQ(serial.metrics().get("recovery.scratch_fallbacks").count, 1);
  EXPECT_EQ(serial.metrics().get("recovery.skipped_points").count, 1);
  EXPECT_EQ(serial.metrics().get("fault.rank_deaths").count, 1);
}

TEST(FaultDeterminism, SweepUnderFaultPlanIsThreadCountInvariant) {
  const ModelStack models;
  SyntheticTraceConfig sc;
  sc.num_events = 6;
  sc.seed = 31;
  SweepSpec spec;
  spec.traces.push_back({"t31", generate_synthetic_trace(sc)});
  sc.seed = 32;
  spec.traces.push_back({"t32", generate_synthetic_trace(sc)});
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"scratch", "diffusion"};
  const FaultPlan plan = ladder_campaign(255);
  spec.fault_plan = &plan;

  const SweepRunner runner(models);
  spec.threads = 1;
  const std::vector<SweepCaseResult> one = runner.run(spec);
  spec.threads = 4;
  const std::vector<SweepCaseResult> four = runner.run(spec);

  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), spec.num_cases());
  for (std::size_t c = 0; c < one.size(); ++c) {
    const TraceRunResult& a = one[c].result;
    const TraceRunResult& b = four[c].result;
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << "case " << c;
    for (std::size_t e = 0; e < a.outcomes.size(); ++e) {
      EXPECT_EQ(a.outcomes[e].chosen, b.outcomes[e].chosen)
          << "case " << c << " point " << e;
      EXPECT_EQ(a.outcomes[e].degradation, b.outcomes[e].degradation)
          << "case " << c << " point " << e;
      EXPECT_EQ(a.outcomes[e].allocation.rects(),
                b.outcomes[e].allocation.rects())
          << "case " << c << " point " << e;
    }
    EXPECT_EQ(a.total_redist(), b.total_redist()) << "case " << c;
    EXPECT_EQ(a.total_exec(), b.total_exec()) << "case " << c;
  }

  // Every case saw the campaign (each runs under its own injector).
  const MetricsRegistry merged = merged_metrics(one);
  EXPECT_EQ(merged.get("recovery.skipped_points").count,
            static_cast<std::int64_t>(spec.num_cases()));
  EXPECT_EQ(merged.get("recovery.skipped_points").count,
            merged_metrics(four).get("recovery.skipped_points").count);
}

TEST(FaultDeterminism, CoupledRunsAgreeAcrossExecutors) {
  const Machine machine = Machine::bluegene(256);
  const ModelStack models;
  FaultPlan plan;
  plan.events.push_back(task_event(2, "build_candidates", 1, 1));
  for (int point = 1; point < 6; ++point) {
    FaultEvent drop;
    drop.kind = FaultKind::kPayloadDrop;
    drop.point = point;
    drop.attempts = 0;  // every matching payload, scheduling-independent
    plan.events.push_back(drop);
  }
  plan.validate();

  auto config = [] {
    CoupledConfig c;
    c.scenario.weather.domain.resolution_km = 24.0;
    c.scenario.sim_px = 16;
    c.scenario.sim_py = 16;
    c.scenario.pda.analysis_procs = 16;
    c.manager.steps_per_interval = 3;
    return c;
  };

  FaultInjector serial_inj(plan);
  CoupledConfig serial_cfg = config();
  serial_cfg.manager.injector = &serial_inj;
  CoupledSimulation serial(machine, models.model, models.truth, serial_cfg);

  ThreadPoolExecutor pool(8);
  FaultInjector threaded_inj(plan);
  CoupledConfig threaded_cfg = config();
  threaded_cfg.manager.injector = &threaded_inj;
  threaded_cfg.manager.executor = &pool;
  CoupledSimulation threaded(machine, models.model, models.truth,
                             threaded_cfg);

  for (int i = 0; i < 6; ++i) {
    const IntervalReport a = serial.advance();
    const IntervalReport b = threaded.advance();
    EXPECT_EQ(a.realloc.chosen, b.realloc.chosen) << "interval " << i;
    EXPECT_EQ(a.realloc.degradation, b.realloc.degradation)
        << "interval " << i;
    EXPECT_EQ(serial.allocation().rects(), threaded.allocation().rects())
        << "interval " << i;
    ASSERT_EQ(serial.nests().size(), threaded.nests().size())
        << "interval " << i;
    for (const auto& [id, nest] : serial.nests()) {
      const auto it = threaded.nests().find(id);
      ASSERT_NE(it, threaded.nests().end()) << "nest " << id;
      EXPECT_EQ(nest.field.data(), it->second.field.data())
          << "interval " << i << " nest " << id;
    }
  }
  EXPECT_EQ(serial_inj.stats().payload_drops,
            threaded_inj.stats().payload_drops);
}

}  // namespace
}  // namespace stormtrack
