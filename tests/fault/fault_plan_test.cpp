#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"

namespace stormtrack {
namespace {

FaultEvent event(FaultKind kind, int point, int rank = -1) {
  FaultEvent e;
  e.kind = kind;
  e.point = point;
  e.rank = rank;
  return e;
}

TEST(FaultKindNames, RoundTripEveryKind) {
  for (const FaultKind k :
       {FaultKind::kSplitReadTransient, FaultKind::kSplitReadPermanent,
        FaultKind::kSplitReadCorrupt, FaultKind::kPayloadDrop,
        FaultKind::kPayloadCorrupt, FaultKind::kRankDeath,
        FaultKind::kTaskFault})
    EXPECT_EQ(fault_kind_from(to_string(k)), k);
  EXPECT_THROW((void)fault_kind_from("meteor_strike"), CheckError);
}

TEST(FaultPlan, SaveLoadRoundTrip) {
  FaultPlan plan;
  FaultEvent transient = event(FaultKind::kSplitReadTransient, 3, 5);
  transient.attempts = 2;
  plan.events.push_back(transient);
  plan.events.push_back(event(FaultKind::kSplitReadPermanent, 4, 9));
  plan.events.push_back(event(FaultKind::kPayloadDrop, 7, 2));
  FaultEvent corrupt = event(FaultKind::kPayloadCorrupt, 7);
  corrupt.peer = 3;
  plan.events.push_back(corrupt);
  FaultEvent task = event(FaultKind::kTaskFault, 5);
  task.site = "build_candidates";
  task.index = 1;
  plan.events.push_back(task);
  plan.events.push_back(event(FaultKind::kRankDeath, 6, 17));

  std::stringstream ss;
  plan.save(ss);
  const FaultPlan loaded = FaultPlan::load(ss);
  ASSERT_EQ(loaded.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& a = plan.events[i];
    const FaultEvent& b = loaded.events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.point, b.point) << "event " << i;
    EXPECT_EQ(a.rank, b.rank) << "event " << i;
    EXPECT_EQ(a.peer, b.peer) << "event " << i;
    EXPECT_EQ(a.index, b.index) << "event " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "event " << i;
    EXPECT_EQ(a.site, b.site) << "event " << i;
  }
}

TEST(FaultPlan, LoadParsesCommentsAndBlankLines) {
  std::istringstream is(
      "stormtrack-faults 1\n"
      "# a comment\n"
      "\n"
      "fault split_read_permanent point=2 rank=4  # trailing comment\n");
  const FaultPlan plan = FaultPlan::load(is);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSplitReadPermanent);
  EXPECT_EQ(plan.events[0].point, 2);
  EXPECT_EQ(plan.events[0].rank, 4);
}

TEST(FaultPlan, LoadRejectsBadMagic) {
  std::istringstream is("stormtrack-trace 1\n");
  EXPECT_THROW((void)FaultPlan::load(is), CheckError);
}

TEST(FaultPlan, LoadRejectsUnknownKind) {
  std::istringstream is("stormtrack-faults 1\nfault gamma_ray point=0\n");
  EXPECT_THROW((void)FaultPlan::load(is), CheckError);
}

TEST(FaultPlan, LoadRejectsMalformedKeyValue) {
  std::istringstream is(
      "stormtrack-faults 1\nfault rank_death point=abc rank=1\n");
  EXPECT_THROW((void)FaultPlan::load(is), CheckError);
}

TEST(FaultPlan, LoadRejectsUnknownField) {
  std::istringstream is(
      "stormtrack-faults 1\nfault rank_death point=0 rank=1 mood=bad\n");
  EXPECT_THROW((void)FaultPlan::load(is), CheckError);
}

TEST(FaultPlan, ValidateRejectsWildcardTransientRead) {
  // A transient read with rank=-1 would consume its attempt budget at
  // whichever rank's read happens first — scheduling-dependent. Forbidden.
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kSplitReadTransient, 0, -1));
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(FaultPlan, ValidateRejectsRankDeathWithoutRank) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kRankDeath, 0, -1));
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(FaultPlan, ValidateRejectsTaskFaultWithoutSite) {
  FaultPlan plan;
  FaultEvent task = event(FaultKind::kTaskFault, 0);
  task.index = 0;
  plan.events.push_back(task);  // no site
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(FaultPlan, ValidateRejectsNegativePoint) {
  FaultPlan plan;
  plan.events.push_back(event(FaultKind::kSplitReadPermanent, -1, 2));
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(FaultPlan, RandomIsSeedDeterministicAndValid) {
  FaultPlan::RandomConfig cfg;
  cfg.num_events = 12;
  cfg.num_points = 10;
  cfg.num_ranks = 64;
  cfg.max_rank_deaths = 1;
  cfg.seed = 7;
  const FaultPlan a = FaultPlan::random(cfg);
  const FaultPlan b = FaultPlan::random(cfg);
  ASSERT_EQ(a.events.size(), 12u);
  a.validate();
  int deaths = 0;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].point, b.events[i].point);
    EXPECT_EQ(a.events[i].rank, b.events[i].rank);
    EXPECT_GE(a.events[i].point, 0);
    EXPECT_LT(a.events[i].point, cfg.num_points);
    if (a.events[i].kind == FaultKind::kRankDeath) ++deaths;
  }
  EXPECT_LE(deaths, cfg.max_rank_deaths);

  cfg.seed = 8;
  const FaultPlan c = FaultPlan::random(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.events.size(); ++i)
    if (a.events[i].kind != c.events[i].kind ||
        a.events[i].point != c.events[i].point ||
        a.events[i].rank != c.events[i].rank)
      differs = true;
  EXPECT_TRUE(differs) << "different seeds should give different campaigns";
}

}  // namespace
}  // namespace stormtrack
