#include "sweep/sweep_runner.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

SweepSpec small_grid() {
  SweepSpec spec;
  SyntheticTraceConfig a;
  a.num_events = 6;
  a.seed = 21;
  SyntheticTraceConfig b;
  b.num_events = 9;
  b.seed = 42;
  spec.traces.push_back({"a", generate_synthetic_trace(a)});
  spec.traces.push_back({"b", generate_synthetic_trace(b)});
  spec.machines.push_back(sweep_bluegene(256));
  spec.machines.push_back(sweep_fist_cluster(256));
  spec.strategies = {"scratch", "diffusion", "dynamic"};
  return spec;
}

/// Asserts every observable field of \p x and \p y is identical,
/// including the exact bit pattern of every double and every committed
/// allocation rectangle.
void expect_identical(const std::vector<SweepCaseResult>& x,
                      const std::vector<SweepCaseResult>& y) {
  ASSERT_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    EXPECT_EQ(x[i].trace_name, y[i].trace_name);
    EXPECT_EQ(x[i].machine_name, y[i].machine_name);
    EXPECT_EQ(x[i].machine_label, y[i].machine_label);
    EXPECT_EQ(x[i].strategy, y[i].strategy);
    const TraceRunResult& rx = x[i].result;
    const TraceRunResult& ry = y[i].result;
    ASSERT_EQ(rx.outcomes.size(), ry.outcomes.size());
    EXPECT_EQ(rx.total_exec(), ry.total_exec());
    EXPECT_EQ(rx.total_redist(), ry.total_redist());
    EXPECT_EQ(rx.total_hop_bytes(), ry.total_hop_bytes());
    for (std::size_t e = 0; e < rx.outcomes.size(); ++e) {
      const StepOutcome& ox = rx.outcomes[e];
      const StepOutcome& oy = ry.outcomes[e];
      EXPECT_EQ(ox.chosen, oy.chosen);
      EXPECT_EQ(ox.committed.actual_exec, oy.committed.actual_exec);
      EXPECT_EQ(ox.committed.actual_redist, oy.committed.actual_redist);
      EXPECT_EQ(ox.committed.predicted_exec, oy.committed.predicted_exec);
      EXPECT_EQ(ox.committed.predicted_redist, oy.committed.predicted_redist);
      EXPECT_EQ(ox.traffic.total_bytes, oy.traffic.total_bytes);
      EXPECT_EQ(ox.traffic.hop_bytes, oy.traffic.hop_bytes);
      EXPECT_EQ(ox.overlap_fraction, oy.overlap_fraction);
      EXPECT_EQ(ox.allocation.rects(), oy.allocation.rects());
    }
  }
}

TEST(SweepRunner, ThreadedRunIsByteIdenticalToSerial) {
  const ModelStack models;
  const SweepRunner runner(models);

  SweepSpec serial = small_grid();
  serial.threads = 1;
  SweepSpec threaded = small_grid();
  threaded.threads = 4;

  const std::vector<SweepCaseResult> s = runner.run(serial);
  const std::vector<SweepCaseResult> t = runner.run(threaded);
  ASSERT_EQ(s.size(), 12u);
  expect_identical(s, t);
}

TEST(SweepRunner, ResultsOrderedTraceMajorThenMachineThenStrategy) {
  const ModelStack models;
  SweepSpec spec = small_grid();
  spec.threads = 2;
  const std::vector<SweepCaseResult> r = SweepRunner(models).run(spec);
  ASSERT_EQ(r.size(), spec.num_cases());
  std::size_t i = 0;
  for (std::size_t ti = 0; ti < spec.traces.size(); ++ti)
    for (std::size_t mi = 0; mi < spec.machines.size(); ++mi)
      for (std::size_t si = 0; si < spec.strategies.size(); ++si, ++i) {
        EXPECT_EQ(r[i].trace_index, ti);
        EXPECT_EQ(r[i].machine_index, mi);
        EXPECT_EQ(r[i].strategy_index, si);
        EXPECT_EQ(r[i].trace_name, spec.traces[ti].name);
        EXPECT_EQ(r[i].machine_name, spec.machines[mi].name);
        EXPECT_EQ(r[i].strategy, spec.strategies[si]);
        EXPECT_EQ(r[i].result.outcomes.size(),
                  spec.traces[ti].trace.size());
      }
}

TEST(SweepRunner, FindCaseByNameAndErrors) {
  const ModelStack models;
  SweepSpec spec;
  SyntheticTraceConfig t;
  t.num_events = 3;
  spec.traces.push_back({"only", generate_synthetic_trace(t)});
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"diffusion"};
  spec.threads = 1;
  const std::vector<SweepCaseResult> r = SweepRunner(models).run(spec);
  const SweepCaseResult& c = find_case(r, "only", "bluegene-256", "diffusion");
  EXPECT_EQ(c.machine_label, Machine::bluegene(256).label());
  EXPECT_THROW((void)find_case(r, "only", "bluegene-256", "scratch"),
               CheckError);
  EXPECT_THROW((void)find_case(r, "nope", "bluegene-256", "diffusion"),
               CheckError);
}

TEST(SweepRunner, UnknownStrategyRejectedBeforeAnyWorkRuns) {
  const ModelStack models;
  SweepSpec spec;
  SyntheticTraceConfig t;
  t.num_events = 2;
  spec.traces.push_back({"only", generate_synthetic_trace(t)});
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"diffusion", "not-a-strategy"};
  EXPECT_THROW((void)SweepRunner(models).run(spec), CheckError);
}

TEST(SweepRunner, EmptyGridYieldsNoResults) {
  const ModelStack models;
  const SweepSpec spec;  // no traces, machines or strategies
  EXPECT_TRUE(SweepRunner(models).run(spec).empty());
}

TEST(SweepRunner, MergedMetricsAccumulateAcrossCases) {
  const ModelStack models;
  SweepSpec spec;
  SyntheticTraceConfig t;
  t.num_events = 4;
  spec.traces.push_back({"only", generate_synthetic_trace(t)});
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"scratch", "diffusion"};
  spec.threads = 2;
  const std::vector<SweepCaseResult> r = SweepRunner(models).run(spec);
  const MetricsRegistry merged = merged_metrics(r);
  // 2 cases x 4 adaptation points, every stage timed at each point.
  for (int s = 0; s < kNumPipelineStages; ++s)
    EXPECT_EQ(merged.get(stage_metric_name(static_cast<PipelineStage>(s)))
                  .count,
              8);
  EXPECT_EQ(merged.get("pipeline.adaptation_points").count, 8);
}

}  // namespace
}  // namespace stormtrack
