// The scenario first axis: full coupled runs (weather + PDA + realloc +
// workload payload) swept over {scenario × machine × strategy} through the
// same runner, journal shape, and determinism contract as trace sweeps.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

RealScenarioConfig small_scenario(std::uint64_t seed = 0x2005'07'26) {
  RealScenarioConfig sc;
  sc.weather.domain.resolution_km = 24.0;
  sc.sim_px = 16;
  sc.sim_py = 16;
  sc.pda.analysis_procs = 16;
  sc.num_intervals = 5;
  sc.seed = seed;
  return sc;
}

SweepSpec scenario_grid() {
  SweepSpec spec;
  spec.scenarios.push_back({"mumbai-small", small_scenario()});
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"scratch", "diffusion"};
  spec.workload = "particles";
  spec.config.steps_per_interval = 3;
  return spec;
}

TEST(SweepScenario, RunsCoupledCasesWithWorkloadCounters) {
  const ModelStack models;
  SweepSpec spec = scenario_grid();
  spec.threads = 1;
  const std::vector<SweepCaseResult> r = SweepRunner(models).run(spec);
  ASSERT_EQ(r.size(), 2u);
  for (const SweepCaseResult& c : r) {
    SCOPED_TRACE(c.strategy);
    EXPECT_EQ(c.trace_name, "mumbai-small");  // scenario rides the axis slot
    EXPECT_EQ(c.result.outcomes.size(), 5u);
    EXPECT_NE(c.result.final_state_fingerprint, 0u);
    // The particle payload genuinely ran: its counters are in the case's
    // merged metrics.
    EXPECT_GT(c.result.metrics.get("workload.advected_particle_steps").count,
              0);
    EXPECT_GT(c.result.metrics.get("workload.active_ranks").count, 0);
  }
  // Both strategy cells ran (a short run may legitimately land both
  // strategies on the same committed state, so the fingerprints are not
  // required to differ — only to be reported per case).
  EXPECT_EQ(r[0].strategy, "scratch");
  EXPECT_EQ(r[1].strategy, "diffusion");
}

TEST(SweepScenario, ThreadedRunIsByteIdenticalToSerial) {
  const ModelStack models;
  const SweepRunner runner(models);
  SweepSpec serial = scenario_grid();
  serial.threads = 1;
  SweepSpec threaded = scenario_grid();
  threaded.threads = 4;

  const std::vector<SweepCaseResult> s = runner.run(serial);
  const std::vector<SweepCaseResult> t = runner.run(threaded);
  ASSERT_EQ(s.size(), t.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    EXPECT_EQ(s[i].result.final_state_fingerprint,
              t[i].result.final_state_fingerprint);
    EXPECT_EQ(s[i].result.total_exec(), t[i].result.total_exec());
    EXPECT_EQ(s[i].result.total_redist(), t[i].result.total_redist());
    EXPECT_EQ(s[i].result.total_hop_bytes(), t[i].result.total_hop_bytes());
    ASSERT_EQ(s[i].result.outcomes.size(), t[i].result.outcomes.size());
    for (std::size_t e = 0; e < s[i].result.outcomes.size(); ++e) {
      EXPECT_EQ(s[i].result.outcomes[e].chosen, t[i].result.outcomes[e].chosen);
      EXPECT_EQ(s[i].result.outcomes[e].allocation.rects(),
                t[i].result.outcomes[e].allocation.rects());
    }
  }
}

TEST(SweepScenario, SpecValidationCatchesAxisAndWorkloadProblems) {
  SweepSpec spec = scenario_grid();
  SyntheticTraceConfig tc;
  tc.num_events = 3;
  spec.traces.push_back({"t", generate_synthetic_trace(tc)});
  spec.workload = "voxels";
  spec.scenarios.push_back({"mumbai-small", small_scenario()});  // duplicate

  const std::vector<std::string> problems = sweep_spec_problems(spec);
  auto mentions = [&](const std::string& needle) {
    for (const std::string& p : problems)
      if (p.find(needle) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(mentions("not both"));
  EXPECT_TRUE(mentions("voxels"));
  EXPECT_TRUE(mentions("duplicate scenario"));
  EXPECT_THROW(validate_sweep_spec(spec), CheckError);
}

TEST(SweepScenario, EmptySpecStillReportsMissingFirstAxis) {
  SweepSpec spec;
  spec.machines.push_back(sweep_bluegene(256));
  spec.strategies = {"scratch"};
  const std::vector<std::string> problems = sweep_spec_problems(spec);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("no traces or scenarios"), std::string::npos);
}

TEST(SweepScenario, FingerprintBindsScenarioAxisAndWorkload) {
  const SweepSpec base = scenario_grid();
  const std::uint64_t fp = sweep_spec_fingerprint(base);

  SweepSpec other_workload = scenario_grid();
  other_workload.workload = "field";
  EXPECT_NE(sweep_spec_fingerprint(other_workload), fp);

  SweepSpec other_seed = scenario_grid();
  other_seed.scenarios[0].scenario.seed = 99;
  EXPECT_NE(sweep_spec_fingerprint(other_seed), fp);

  // Execution knobs must never orphan a journal.
  SweepSpec threaded = scenario_grid();
  threaded.threads = 8;
  EXPECT_EQ(sweep_spec_fingerprint(threaded), fp);

  // Pure-trace specs ignore the workload field entirely, so old trace
  // journals stay valid across the workload-layer change.
  SweepSpec trace_spec;
  SyntheticTraceConfig tc;
  tc.num_events = 4;
  trace_spec.traces.push_back({"t", generate_synthetic_trace(tc)});
  trace_spec.machines.push_back(sweep_bluegene(256));
  trace_spec.strategies = {"scratch"};
  const std::uint64_t trace_fp = sweep_spec_fingerprint(trace_spec);
  trace_spec.workload = "particles";
  EXPECT_EQ(sweep_spec_fingerprint(trace_spec), trace_fp);
}

TEST(SweepScenario, SupervisedScenarioSweepJournalsAndReplays) {
  const ModelStack models;
  SweepSpec spec = scenario_grid();
  spec.threads = 1;
  spec.supervision.journal =
      std::filesystem::temp_directory_path() / "st_scenario_sweep.journal";
  std::filesystem::remove(spec.supervision.journal);

  const SweepRunReport first = SweepRunner(models).run_supervised(spec);
  ASSERT_EQ(first.results.size(), 2u);
  for (const SweepCaseResult& c : first.results)
    EXPECT_EQ(c.status, SweepCaseStatus::kOk);

  spec.supervision.resume = true;
  const SweepRunReport replayed = SweepRunner(models).run_supervised(spec);
  for (std::size_t i = 0; i < replayed.results.size(); ++i) {
    EXPECT_TRUE(replayed.results[i].from_journal);
    EXPECT_EQ(replayed.results[i].result.final_state_fingerprint,
              first.results[i].result.final_state_fingerprint);
  }
  std::filesystem::remove(spec.supervision.journal);
}

}  // namespace
}  // namespace stormtrack
