#include "sweep/sweep_journal.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFp = 0x1122334455667788ull;

class SweepJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_journal_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ / "sweep.stjl";
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Two real completed cases to journal, produced by an actual tiny sweep
  /// so every TraceRunResult field carries live data.
  std::vector<SweepCaseResult> real_results() {
    SweepSpec spec;
    SyntheticTraceConfig t;
    t.num_events = 3;
    t.seed = 77;
    spec.traces.push_back({"only", generate_synthetic_trace(t)});
    spec.machines.push_back(sweep_bluegene(256));
    spec.strategies = {"scratch", "diffusion"};
    spec.threads = 1;
    return SweepRunner(models_).run(spec);
  }

  /// Append raw bytes to the journal file, as a dying writer would.
  void append_raw(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  ModelStack models_;
  fs::path dir_;
  fs::path path_;
};

void expect_same_case(const SweepCaseResult& got, const SweepCaseResult& want) {
  EXPECT_EQ(got.trace_index, want.trace_index);
  EXPECT_EQ(got.machine_index, want.machine_index);
  EXPECT_EQ(got.strategy_index, want.strategy_index);
  EXPECT_EQ(got.trace_name, want.trace_name);
  EXPECT_EQ(got.machine_name, want.machine_name);
  EXPECT_EQ(got.machine_label, want.machine_label);
  EXPECT_EQ(got.strategy, want.strategy);
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.attempts, want.attempts);
  EXPECT_EQ(got.error, want.error);
  ASSERT_EQ(got.result.outcomes.size(), want.result.outcomes.size());
  EXPECT_EQ(got.result.total_exec(), want.result.total_exec());
  EXPECT_EQ(got.result.total_redist(), want.result.total_redist());
  EXPECT_EQ(got.result.total_hop_bytes(), want.result.total_hop_bytes());
  EXPECT_EQ(got.result.final_state_fingerprint,
            want.result.final_state_fingerprint);
  for (std::size_t i = 0; i < want.result.outcomes.size(); ++i) {
    EXPECT_EQ(got.result.outcomes[i].chosen, want.result.outcomes[i].chosen);
    EXPECT_EQ(got.result.outcomes[i].allocation.rects(),
              want.result.outcomes[i].allocation.rects());
  }
}

TEST_F(SweepJournalTest, AppendsThenReplaysEveryRecordOnResume) {
  const std::vector<SweepCaseResult> results = real_results();
  ASSERT_EQ(results.size(), 2u);
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(0, results[0]);
    journal.append(1, results[1]);
    EXPECT_EQ(journal.appends(), 2);
    EXPECT_TRUE(journal.replayed().empty());
  }
  SweepJournal reopened(path_, kFp, 2, /*resume=*/true);
  EXPECT_EQ(reopened.torn_records_dropped(), 0);
  ASSERT_EQ(reopened.replayed().size(), 2u);
  expect_same_case(reopened.replayed().at(0), results[0]);
  expect_same_case(reopened.replayed().at(1), results[1]);
}

TEST_F(SweepJournalTest, OpeningWithoutResumeStartsFresh) {
  const std::vector<SweepCaseResult> results = real_results();
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(0, results[0]);
  }
  SweepJournal fresh(path_, kFp, 2, /*resume=*/false);
  EXPECT_TRUE(fresh.replayed().empty());
}

TEST_F(SweepJournalTest, ResumeOnMissingFileStartsFresh) {
  SweepJournal journal(path_, kFp, 4, /*resume=*/true);
  EXPECT_TRUE(journal.replayed().empty());
  EXPECT_EQ(journal.torn_records_dropped(), 0);
}

TEST_F(SweepJournalTest, TornTailIsTruncatedAndJournalStaysUsable) {
  const std::vector<SweepCaseResult> results = real_results();
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(0, results[0]);
  }
  // A writer died mid-append: a frame header promising 80 payload bytes,
  // followed by only a few of them.
  append_raw(std::string("\x50\x00\x00\x00partial", 11));
  const auto torn_size = fs::file_size(path_);

  SweepJournal reopened(path_, kFp, 2, /*resume=*/true);
  EXPECT_EQ(reopened.torn_records_dropped(), 1);
  ASSERT_EQ(reopened.replayed().size(), 1u);
  expect_same_case(reopened.replayed().at(0), results[0]);
  EXPECT_LT(fs::file_size(path_), torn_size);  // tail truncated away

  // The truncated journal keeps accepting appends, and a later resume sees
  // the intact record plus the new one.
  reopened.append(1, results[1]);
  SweepJournal again(path_, kFp, 2, /*resume=*/true);
  EXPECT_EQ(again.torn_records_dropped(), 0);
  EXPECT_EQ(again.replayed().size(), 2u);
}

TEST_F(SweepJournalTest, CorruptedTailRecordFailsItsCrcAndIsDropped) {
  const std::vector<SweepCaseResult> results = real_results();
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(0, results[0]);
    journal.append(1, results[1]);
  }
  std::vector<std::byte> bytes = read_file_bytes(path_);
  bytes[bytes.size() - 6] ^= std::byte{0x01};  // inside the last payload
  write_file_atomic(path_, std::span(bytes.data(), bytes.size()));

  SweepJournal reopened(path_, kFp, 2, /*resume=*/true);
  EXPECT_EQ(reopened.torn_records_dropped(), 1);
  ASSERT_EQ(reopened.replayed().size(), 1u);
  expect_same_case(reopened.replayed().at(0), results[0]);
}

TEST_F(SweepJournalTest, FileShorterThanTheHeaderStartsFresh) {
  write_file_atomic(path_, std::string_view("STJL"));  // died mid-header
  SweepJournal journal(path_, kFp, 2, /*resume=*/true);
  EXPECT_EQ(journal.torn_records_dropped(), 1);
  EXPECT_TRUE(journal.replayed().empty());
}

TEST_F(SweepJournalTest, BadMagicIsRejectedDescriptively) {
  write_file_atomic(path_,
                    std::string_view("this is definitely not a journal"));
  try {
    SweepJournal journal(path_, kFp, 2, /*resume=*/true);
    FAIL() << "bad magic must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(SweepJournalTest, UnsupportedVersionIsRejected) {
  { SweepJournal journal(path_, kFp, 2, /*resume=*/false); }
  std::vector<std::byte> bytes = read_file_bytes(path_);
  bytes[4] = std::byte{0x7F};
  write_file_atomic(path_, std::span(bytes.data(), bytes.size()));
  try {
    SweepJournal journal(path_, kFp, 2, /*resume=*/true);
    FAIL() << "wrong version must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SweepJournalTest, DifferentSpecFingerprintRefusesToResume) {
  const std::vector<SweepCaseResult> results = real_results();
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(0, results[0]);
  }
  try {
    SweepJournal journal(path_, kFp + 1, 2, /*resume=*/true);
    FAIL() << "fingerprint mismatch must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST_F(SweepJournalTest, RecordNamingACaseOutsideTheGridIsRejected) {
  const std::vector<SweepCaseResult> results = real_results();
  {
    SweepJournal journal(path_, kFp, 8, /*resume=*/false);
    journal.append(5, results[0]);
  }
  // Same fingerprint but a smaller grid: the record is intact, so this is
  // the wrong journal, not a torn tail.
  EXPECT_THROW(SweepJournal(path_, kFp, 2, /*resume=*/true), CheckError);
}

TEST_F(SweepJournalTest, QuarantinedStatusRoundTrips) {
  std::vector<SweepCaseResult> results = real_results();
  results[1].status = SweepCaseStatus::kQuarantined;
  results[1].attempts = 3;
  results[1].error = "deadline exceeded";
  results[1].result = TraceRunResult{};
  {
    SweepJournal journal(path_, kFp, 2, /*resume=*/false);
    journal.append(1, results[1]);
  }
  SweepJournal reopened(path_, kFp, 2, /*resume=*/true);
  ASSERT_EQ(reopened.replayed().size(), 1u);
  const SweepCaseResult& got = reopened.replayed().at(1);
  EXPECT_EQ(got.status, SweepCaseStatus::kQuarantined);
  EXPECT_EQ(got.attempts, 3);
  EXPECT_EQ(got.error, "deadline exceeded");
  EXPECT_TRUE(got.result.outcomes.empty());
}

TEST_F(SweepJournalTest, CreatesParentDirectories) {
  const fs::path nested = dir_ / "a" / "b" / "sweep.stjl";
  SweepJournal journal(nested, kFp, 1, /*resume=*/false);
  EXPECT_TRUE(fs::exists(nested));
}

}  // namespace
}  // namespace stormtrack
