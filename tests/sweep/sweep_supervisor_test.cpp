#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "sweep/sweep_journal.hpp"
#include "sweep/sweep_runner.hpp"
#include "exec/cancel.hpp"
#include "util/check.hpp"

namespace stormtrack {
namespace {

namespace fs = std::filesystem;

class SweepSupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_supervisor_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// 2 traces x 1 machine x 2 strategies = 4 cases, serial for determinism.
  SweepSpec grid() const {
    SweepSpec spec;
    SyntheticTraceConfig a;
    a.num_events = 4;
    a.seed = 3;
    SyntheticTraceConfig b;
    b.num_events = 6;
    b.seed = 8;
    spec.traces.push_back({"a", generate_synthetic_trace(a)});
    spec.traces.push_back({"b", generate_synthetic_trace(b)});
    spec.machines.push_back(sweep_bluegene(256));
    spec.strategies = {"scratch", "diffusion"};
    spec.threads = 1;
    return spec;
  }

  ModelStack models_;
  fs::path dir_;
};

void expect_same_result(const SweepCaseResult& got,
                        const SweepCaseResult& want) {
  EXPECT_EQ(got.trace_name, want.trace_name);
  EXPECT_EQ(got.strategy, want.strategy);
  ASSERT_EQ(got.result.outcomes.size(), want.result.outcomes.size());
  EXPECT_EQ(got.result.total_exec(), want.result.total_exec());
  EXPECT_EQ(got.result.total_redist(), want.result.total_redist());
  EXPECT_EQ(got.result.total_hop_bytes(), want.result.total_hop_bytes());
  EXPECT_EQ(got.result.final_state_fingerprint,
            want.result.final_state_fingerprint);
  for (std::size_t e = 0; e < want.result.outcomes.size(); ++e) {
    EXPECT_EQ(got.result.outcomes[e].chosen, want.result.outcomes[e].chosen);
    EXPECT_EQ(got.result.outcomes[e].allocation.rects(),
              want.result.outcomes[e].allocation.rects());
  }
}

TEST_F(SweepSupervisorTest, CleanGridMatchesPlainRunExactly) {
  const SweepRunner runner(models_);
  const SweepSpec spec = grid();
  const std::vector<SweepCaseResult> plain = runner.run(spec);
  const SweepRunReport report = runner.run_supervised(spec);

  ASSERT_EQ(report.results.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    EXPECT_EQ(report.results[i].status, SweepCaseStatus::kOk);
    EXPECT_EQ(report.results[i].attempts, 1);
    EXPECT_FALSE(report.results[i].from_journal);
    EXPECT_TRUE(report.results[i].error.empty());
    expect_same_result(report.results[i], plain[i]);
  }
  EXPECT_EQ(report.supervisor.get("supervisor.cases").count, 4);
  EXPECT_EQ(report.supervisor.get("supervisor.attempts").count, 4);
  EXPECT_EQ(report.supervisor.get("supervisor.retries").count, 0);
  EXPECT_EQ(report.supervisor.get("supervisor.quarantined").count, 0);
}

TEST_F(SweepSupervisorTest, DeadlineQuarantinesAfterBoundedRetries) {
  const SweepRunner runner(models_);
  SweepSpec spec = grid();
  // A deadline no attempt can meet: the token is already expired at the
  // pipeline's first poll, so every attempt dies deterministically.
  spec.supervision.case_deadline_seconds = 1e-9;
  spec.supervision.max_attempts = 3;
  spec.supervision.backoff_seconds = 0.0;

  const SweepRunReport report = runner.run_supervised(spec);
  ASSERT_EQ(report.results.size(), 4u);
  for (const SweepCaseResult& r : report.results) {
    SCOPED_TRACE(r.trace_name + "/" + r.strategy);
    EXPECT_EQ(r.status, SweepCaseStatus::kQuarantined);
    EXPECT_EQ(r.attempts, 3);
    EXPECT_FALSE(r.error.empty());
    EXPECT_TRUE(r.result.outcomes.empty());
    EXPECT_STREQ(to_string(r.status), "quarantined");
  }
  EXPECT_EQ(report.supervisor.get("supervisor.attempts").count, 12);
  EXPECT_EQ(report.supervisor.get("supervisor.retries").count, 8);
  EXPECT_EQ(report.supervisor.get("supervisor.deadline_hits").count, 12);
  EXPECT_EQ(report.supervisor.get("supervisor.quarantined").count, 4);
}

TEST_F(SweepSupervisorTest, DeadlineDuringBackoffWakesPromptly) {
  const SweepRunner runner(models_);
  SweepSpec spec = grid();
  spec.traces.resize(1);
  spec.strategies = {"scratch"};  // one case: timing assertions stay tight
  // Attempt 1 dies at the pipeline's first poll; the retry backoff before
  // attempt 2 is 30 s, far past this test's patience. The backoff sleep is
  // cancellable against the fresh per-attempt deadline, so the case must
  // quarantine in milliseconds — charged exactly one deadline hit for the
  // sleep, with the remaining attempt forfeited.
  spec.supervision.case_deadline_seconds = 1e-9;
  spec.supervision.max_attempts = 3;
  spec.supervision.backoff_seconds = 30.0;

  const auto t0 = std::chrono::steady_clock::now();
  const SweepRunReport report = runner.run_supervised(spec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 10.0) << "backoff sleep ignored the deadline";

  ASSERT_EQ(report.results.size(), 1u);
  const SweepCaseResult& r = report.results[0];
  EXPECT_EQ(r.status, SweepCaseStatus::kQuarantined);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.error.find("backoff"), std::string::npos) << r.error;
  EXPECT_EQ(report.supervisor.get("supervisor.retries").count, 1);
  EXPECT_EQ(report.supervisor.get("supervisor.deadline_hits").count, 2);
  EXPECT_EQ(report.supervisor.get("supervisor.quarantined").count, 1);
}

TEST_F(SweepSupervisorTest, ResumeReExecutesOnlyUnfinishedCases) {
  const SweepRunner runner(models_);
  SweepSpec spec = grid();
  const std::vector<SweepCaseResult> reference = runner.run(spec);

  // Simulate a sweep killed after cases 0 and 2 finished: journal exactly
  // those two, as the dead run's supervisor would have.
  const fs::path journal_path = dir_ / "sweep.stjl";
  {
    SweepJournal journal(journal_path, sweep_spec_fingerprint(spec), 4,
                         /*resume=*/false);
    journal.append(0, reference[0]);
    journal.append(2, reference[2]);
  }

  spec.supervision.journal = journal_path;
  spec.supervision.resume = true;
  const SweepRunReport report = runner.run_supervised(spec);

  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_TRUE(report.results[0].from_journal);
  EXPECT_FALSE(report.results[1].from_journal);
  EXPECT_TRUE(report.results[2].from_journal);
  EXPECT_FALSE(report.results[3].from_journal);
  // Replayed or re-executed, every case matches the uninterrupted sweep.
  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    EXPECT_EQ(report.results[i].status, SweepCaseStatus::kOk);
    expect_same_result(report.results[i], reference[i]);
  }
  EXPECT_EQ(report.supervisor.get("supervisor.replayed").count, 2);
  // Only the two re-executed cases consumed attempts or were appended.
  EXPECT_EQ(report.supervisor.get("supervisor.attempts").count, 2);
  EXPECT_EQ(report.supervisor.get("supervisor.journal_appends").count, 2);

  // The journal now holds all four cases: a second resume replays the full
  // grid without running anything.
  const SweepRunReport again = runner.run_supervised(spec);
  EXPECT_EQ(again.supervisor.get("supervisor.replayed").count, 4);
  EXPECT_EQ(again.supervisor.get("supervisor.attempts").count, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(again.results[i].from_journal);
    expect_same_result(again.results[i], reference[i]);
  }
}

TEST_F(SweepSupervisorTest, QuarantinedCasesAreNotJournaledAndRetryOnResume) {
  const SweepRunner runner(models_);
  SweepSpec broken = grid();
  broken.supervision.journal = dir_ / "sweep.stjl";
  broken.supervision.case_deadline_seconds = 1e-9;  // every case dies
  broken.supervision.backoff_seconds = 0.0;
  const SweepRunReport first = runner.run_supervised(broken);
  EXPECT_EQ(first.supervisor.get("supervisor.quarantined").count, 4);
  EXPECT_EQ(first.supervisor.get("supervisor.journal_appends").count, 0);

  // The deadline is an execution knob, so it does not change the spec
  // fingerprint: the fixed sweep resumes against the same journal and
  // re-attempts every quarantined case successfully.
  SweepSpec fixed = grid();
  fixed.supervision.journal = dir_ / "sweep.stjl";
  fixed.supervision.resume = true;
  const SweepRunReport second = runner.run_supervised(fixed);
  EXPECT_EQ(second.supervisor.get("supervisor.replayed").count, 0);
  EXPECT_EQ(second.supervisor.get("supervisor.quarantined").count, 0);
  EXPECT_EQ(second.supervisor.get("supervisor.journal_appends").count, 4);
  for (const SweepCaseResult& r : second.results)
    EXPECT_EQ(r.status, SweepCaseStatus::kOk);
}

TEST_F(SweepSupervisorTest, SpecProblemsAreReportedPerField) {
  SweepSpec spec = grid();
  spec.traces.push_back({"a", spec.traces[0].trace});  // duplicate name
  spec.strategies.push_back("not-a-strategy");
  spec.machines.push_back({"null-factory", nullptr});
  spec.threads = -2;
  CancelToken token;
  spec.config.cancel = &token;
  spec.supervision.case_deadline_seconds = -1.0;
  spec.supervision.max_attempts = 0;
  spec.supervision.backoff_seconds = -0.5;
  spec.supervision.resume = true;  // without a journal

  const std::vector<std::string> problems = sweep_spec_problems(spec);
  ASSERT_EQ(problems.size(), 9u);
  const std::string all = [&] {
    std::string joined;
    for (const std::string& p : problems) joined += p + "\n";
    return joined;
  }();
  EXPECT_NE(all.find("duplicate trace"), std::string::npos);
  EXPECT_NE(all.find("unknown strategy 'not-a-strategy'"), std::string::npos);
  EXPECT_NE(all.find("'null-factory' has no factory"), std::string::npos);
  EXPECT_NE(all.find("threads must be >= 0"), std::string::npos);
  EXPECT_NE(all.find("config.cancel must be null"), std::string::npos);
  EXPECT_NE(all.find("case_deadline_seconds must be >= 0"), std::string::npos);
  EXPECT_NE(all.find("max_attempts must be >= 1"), std::string::npos);
  EXPECT_NE(all.find("backoff_seconds must be >= 0"), std::string::npos);
  EXPECT_NE(all.find("resume requires supervision.journal"),
            std::string::npos);

  try {
    validate_sweep_spec(spec);
    FAIL() << "invalid spec must be rejected";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("invalid sweep spec (9 problems)"),
              std::string::npos);
  }
  EXPECT_THROW((void)SweepRunner(models_).run_supervised(spec), CheckError);
  EXPECT_TRUE(sweep_spec_problems(grid()).empty());
  EXPECT_NO_THROW(validate_sweep_spec(grid()));
}

TEST_F(SweepSupervisorTest, FingerprintIgnoresExecutionKnobsOnly) {
  const SweepSpec base = grid();
  const std::uint64_t fp = sweep_spec_fingerprint(base);
  EXPECT_EQ(sweep_spec_fingerprint(grid()), fp);  // deterministic

  // Execution knobs must not orphan a journal...
  SweepSpec threads = grid();
  threads.threads = 8;
  threads.supervision.case_deadline_seconds = 5.0;
  threads.supervision.max_attempts = 7;
  EXPECT_EQ(sweep_spec_fingerprint(threads), fp);

  // ...but anything that changes the results must.
  SweepSpec strategies = grid();
  strategies.strategies.push_back("dynamic");
  EXPECT_NE(sweep_spec_fingerprint(strategies), fp);

  SweepSpec renamed = grid();
  renamed.traces[0].name = "renamed";
  EXPECT_NE(sweep_spec_fingerprint(renamed), fp);

  SweepSpec retraced = grid();
  SyntheticTraceConfig other;
  other.num_events = 4;
  other.seed = 999;  // same shape, different contents
  retraced.traces[0].trace = generate_synthetic_trace(other);
  EXPECT_NE(sweep_spec_fingerprint(retraced), fp);

  SweepSpec tuned = grid();
  tuned.config.steps_per_interval += 1;
  EXPECT_NE(sweep_spec_fingerprint(tuned), fp);
}

}  // namespace
}  // namespace stormtrack
