#include "pda/parallel_nnc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pda/pda.hpp"
#include "util/check.hpp"
#include "wsim/split_file.hpp"

namespace stormtrack {
namespace {

QCloudInfo elem(int fx, int fy, double q, double olrfrac = 0.5) {
  QCloudInfo e;
  e.file_rank = fy * 32 + fx;
  e.file_x = fx;
  e.file_y = fy;
  e.subdomain = Rect{fx * 16, fy * 10, 16, 10};
  e.qcloud = q;
  e.olrfraction = olrfrac;
  return e;
}

std::vector<QCloudInfo> sorted_desc(std::vector<QCloudInfo> v) {
  std::sort(v.begin(), v.end(), [](const QCloudInfo& a, const QCloudInfo& b) {
    return a.qcloud > b.qcloud;
  });
  return v;
}

/// Canonical form: set of sorted member sets.
std::set<std::vector<int>> canonical(std::vector<Cluster> cs) {
  std::set<std::vector<int>> out;
  for (Cluster& c : cs) {
    std::sort(c.begin(), c.end());
    out.insert(c);
  }
  return out;
}

TEST(ParallelNnc, EmptyInput) {
  const ParallelNncResult r = parallel_nnc({}, NncConfig{}, 4);
  EXPECT_TRUE(r.clusters.empty());
}

TEST(ParallelNnc, SingleRankMatchesSequential) {
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(6, 5, 0.95),
                                 elem(20, 20, 0.9), elem(21, 20, 0.85)});
  const auto seq = nnc(info);
  const ParallelNncResult par = parallel_nnc(info, NncConfig{}, 1);
  EXPECT_EQ(canonical(seq), canonical(par.clusters));
}

TEST(ParallelNnc, WellSeparatedSystemsMatchSequential) {
  // Two tight systems in different tiles, far apart: parallel must yield
  // exactly the sequential clustering regardless of rank count.
  std::vector<QCloudInfo> v;
  for (int d = 0; d < 3; ++d) {
    v.push_back(elem(2 + d, 2, 1.0 - 0.01 * d));
    v.push_back(elem(25 + d, 25, 0.9 - 0.01 * d));
  }
  const auto info = sorted_desc(v);
  const auto seq = nnc(info);
  for (const int ranks : {1, 2, 4, 9, 16}) {
    const ParallelNncResult par = parallel_nnc(info, NncConfig{}, ranks);
    EXPECT_EQ(canonical(seq), canonical(par.clusters)) << ranks << " ranks";
  }
}

TEST(ParallelNnc, MergesClustersSplitByTileBoundary) {
  // One contiguous ridge spanning the whole x range: tiles split it, the
  // merge pass must reunite it.
  std::vector<QCloudInfo> v;
  for (int x = 0; x < 16; ++x) v.push_back(elem(x, 8, 1.0 - 0.001 * x));
  const auto info = sorted_desc(v);
  const ParallelNncResult par = parallel_nnc(info, NncConfig{}, 4);
  EXPECT_EQ(par.clusters.size(), 1u);
  EXPECT_EQ(par.clusters[0].size(), 16u);
  EXPECT_GT(par.merges, 0);
}

TEST(ParallelNnc, ClustersDisjointAndCoverThresholded) {
  std::vector<QCloudInfo> v;
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 6; ++j)
      v.push_back(elem(i * 3, j * 4, 0.5 + 0.01 * (i + j)));
  const auto info = sorted_desc(v);
  const NncConfig cfg;
  const ParallelNncResult par = parallel_nnc(info, cfg, 8);
  std::set<int> seen;
  for (const Cluster& c : par.clusters)
    for (int e : c) EXPECT_TRUE(seen.insert(e).second);
  int expected = 0;
  for (const QCloudInfo& e : info)
    if (e.qcloud >= cfg.qcloud_threshold &&
        e.olrfraction >= cfg.olrfraction_threshold)
      ++expected;
  EXPECT_EQ(static_cast<int>(seen.size()), expected);
}

TEST(ParallelNnc, MergeRespectsMeanDeviation) {
  // Adjacent across tiles but wildly different magnitudes: must not merge.
  std::vector<QCloudInfo> v{elem(7, 4, 2.0), elem(9, 4, 0.1)};
  const auto info = sorted_desc(v);
  const ParallelNncResult par = parallel_nnc(info, NncConfig{}, 4);
  EXPECT_EQ(par.clusters.size(), 2u);
}

TEST(ParallelNnc, GatherPricedOnComm) {
  Mesh2D topo(4, 4);
  RowMajorMapping map(16);
  SimComm comm(topo, map);
  std::vector<QCloudInfo> v;
  for (int x = 0; x < 8; ++x) v.push_back(elem(x * 2, 4, 1.0 - 0.01 * x));
  const auto info = sorted_desc(v);
  const ParallelNncResult par = parallel_nnc(info, NncConfig{}, 16, &comm);
  EXPECT_GT(par.traffic.total_bytes, 0);
}

TEST(ParallelNnc, AgreesWithSequentialOnRealFields) {
  // End-to-end sanity on simulated weather: cluster counts should be close
  // (boundary greediness may differ by a cluster occasionally).
  WeatherConfig wcfg = WeatherConfig::mumbai_2005();
  wcfg.domain.resolution_km = 24.0;
  WeatherModel model(wcfg, 101);
  for (int step = 0; step < 6; ++step) {
    model.step();
    const auto files = write_split_files(model, 16, 16);
    const PdaResult pda = parallel_data_analysis(files, PdaConfig{});
    const ParallelNncResult par =
        parallel_nnc(pda.qcloudinfo, NncConfig{}, 16);
    // The parallel variant is slightly finer on large organized systems:
    // the sequential algorithm absorbs weak elements one at a time while
    // its cluster mean drifts, whereas the cross-tile merge admits whole
    // fragments against fixed means. Counts stay close, never wildly off.
    const auto diff = std::abs(static_cast<int>(par.clusters.size()) -
                               static_cast<int>(pda.clusters.size()));
    EXPECT_LE(diff, 6) << "step " << step;
    // Same covered element count either way.
    std::size_t seq_members = 0, par_members = 0;
    for (const Cluster& c : pda.clusters) seq_members += c.size();
    for (const Cluster& c : par.clusters) par_members += c.size();
    EXPECT_EQ(seq_members, par_members);
  }
}

}  // namespace
}  // namespace stormtrack
