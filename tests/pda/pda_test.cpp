#include "pda/pda.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace stormtrack {
namespace {

WeatherModel test_model(std::uint64_t seed = 33) {
  WeatherConfig cfg = WeatherConfig::mumbai_2005();
  cfg.domain.resolution_km = 24.0;  // half resolution for test speed
  WeatherModel m(cfg, seed);
  for (int i = 0; i < 5; ++i) m.step();
  return m;
}

TEST(AnalyzeSplitFile, AggregatesOnlyUnderOlrThreshold) {
  SplitFile f;
  f.rank = 0;
  f.grid_px = 1;
  f.subdomain = Rect{0, 0, 4, 2};
  f.qcloud = Grid2D<double>(4, 2, 0.01);
  f.olr = Grid2D<double>(4, 2, 250.0);  // all above threshold
  EXPECT_FALSE(analyze_split_file(f, PdaConfig{}).has_value());

  f.olr(0, 0) = 150.0;
  f.olr(1, 0) = 199.0;
  const auto info = analyze_split_file(f, PdaConfig{});
  ASSERT_TRUE(info.has_value());
  EXPECT_NEAR(info->qcloud, 0.02, 1e-12);
  EXPECT_NEAR(info->olrfraction, 2.0 / 8.0, 1e-12);
}

TEST(AnalyzeSplitFile, BoundaryOlrCountsAsCloudy) {
  SplitFile f;
  f.rank = 3;
  f.grid_px = 4;
  f.subdomain = Rect{0, 0, 2, 2};
  f.qcloud = Grid2D<double>(2, 2, 0.5);
  f.olr = Grid2D<double>(2, 2, 200.0);  // exactly the threshold
  const auto info = analyze_split_file(f, PdaConfig{});
  ASSERT_TRUE(info.has_value());
  EXPECT_DOUBLE_EQ(info->olrfraction, 1.0);
}

TEST(Pda, FindsRegionsOfInterest) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult result = parallel_data_analysis(files, cfg);
  EXPECT_FALSE(result.rectangles.empty());
  EXPECT_LE(result.rectangles.size(), 12u);
  for (const Rect& r : result.rectangles) {
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(m.qcloud().bounds().contains(r));
  }
}

TEST(Pda, QcloudInfoSortedNonIncreasing) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  PdaConfig cfg;
  cfg.analysis_procs = 32;
  const PdaResult result = parallel_data_analysis(files, cfg);
  for (std::size_t i = 1; i < result.qcloudinfo.size(); ++i)
    EXPECT_GE(result.qcloudinfo[i - 1].qcloud, result.qcloudinfo[i].qcloud);
}

TEST(Pda, RoisCoverCloudSystemCentres) {
  // Every strong in-domain cloud system centre should fall inside some ROI.
  const WeatherModel m = test_model(55);
  const auto files = write_split_files(m, 16, 16);
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult result = parallel_data_analysis(files, cfg);
  int covered = 0, strong = 0;
  for (const CloudSystem& s : m.systems()) {
    const int cx = static_cast<int>(s.cx);
    const int cy = static_cast<int>(s.cy);
    if (!m.qcloud().in_bounds(cx, cy)) continue;
    if (s.intensity < m.config().qcloud_opaque) continue;
    ++strong;
    for (const Rect& r : result.rectangles)
      if (r.contains(cx, cy)) {
        ++covered;
        break;
      }
  }
  if (strong > 0) EXPECT_GE(covered, (strong + 1) / 2);
}

TEST(Pda, ResultIndependentOfAnalysisProcCount) {
  // N only changes who aggregates which files, not the result.
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  PdaConfig a;
  a.analysis_procs = 8;
  PdaConfig b;
  b.analysis_procs = 64;
  const PdaResult ra = parallel_data_analysis(files, a);
  const PdaResult rb = parallel_data_analysis(files, b);
  EXPECT_EQ(ra.rectangles, rb.rectangles);
}

TEST(Pda, GatherPricedOnAnalysisComm) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  Mesh2D topo(4, 4);
  RowMajorMapping map(16);
  SimComm comm(topo, map);
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult result = parallel_data_analysis(files, cfg, &comm);
  EXPECT_GT(result.traffic.total_bytes, 0);
  EXPECT_GT(result.traffic.modeled_time, 0.0);
}

TEST(Pda, AnalysisCountMustDivideFileCount) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  PdaConfig cfg;
  cfg.analysis_procs = 7;
  EXPECT_THROW((void)parallel_data_analysis(files, cfg), CheckError);
}

TEST(Pda, FromDiskMatchesInMemory) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  const auto dir =
      std::filesystem::temp_directory_path() / "stormtrack_pda_disk_test";
  std::filesystem::remove_all(dir);
  for (const SplitFile& f : files) save_split_file(f, dir);

  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult mem = parallel_data_analysis(files, cfg);
  const PdaResult disk =
      parallel_data_analysis_from_dir(dir, static_cast<int>(files.size()),
                                      cfg);
  EXPECT_EQ(mem.rectangles, disk.rectangles);
  EXPECT_EQ(mem.qcloudinfo.size(), disk.qcloudinfo.size());
  std::filesystem::remove_all(dir);
}

TEST(Pda, FromDiskMissingFilesThrow) {
  const auto dir =
      std::filesystem::temp_directory_path() / "stormtrack_pda_missing";
  std::filesystem::remove_all(dir);
  EXPECT_THROW((void)parallel_data_analysis_from_dir(dir, 4, PdaConfig{}),
               CheckError);
}

TEST(Pda, RectanglesSortedDeterministically) {
  const WeatherModel m = test_model();
  const auto files = write_split_files(m, 16, 16);
  PdaConfig cfg;
  cfg.analysis_procs = 16;
  const PdaResult r1 = parallel_data_analysis(files, cfg);
  const PdaResult r2 = parallel_data_analysis(files, cfg);
  EXPECT_EQ(r1.rectangles, r2.rectangles);
  for (std::size_t i = 1; i < r1.rectangles.size(); ++i) {
    const Rect& a = r1.rectangles[i - 1];
    const Rect& b = r1.rectangles[i];
    EXPECT_TRUE(std::pair(a.x, a.y) <= std::pair(b.x, b.y));
  }
}

}  // namespace
}  // namespace stormtrack
