#include "pda/nnc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

/// Build an element at file-grid position (fx, fy) with the given aggregate.
QCloudInfo elem(int fx, int fy, double q, double olrfrac = 0.5) {
  QCloudInfo e;
  e.file_rank = fy * 32 + fx;
  e.file_x = fx;
  e.file_y = fy;
  e.subdomain = Rect{fx * 16, fy * 10, 16, 10};
  e.qcloud = q;
  e.olrfraction = olrfrac;
  return e;
}

std::vector<QCloudInfo> sorted_desc(std::vector<QCloudInfo> v) {
  std::sort(v.begin(), v.end(), [](const QCloudInfo& a, const QCloudInfo& b) {
    return a.qcloud > b.qcloud;
  });
  return v;
}

TEST(FileGridDistance, Chebyshev) {
  EXPECT_EQ(file_grid_distance(elem(0, 0, 1), elem(1, 1, 1)), 1);
  EXPECT_EQ(file_grid_distance(elem(0, 0, 1), elem(2, 1, 1)), 2);
  EXPECT_EQ(file_grid_distance(elem(3, 3, 1), elem(3, 3, 1)), 0);
}

TEST(Nnc, AdjacentElementsFormOneCluster) {
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(6, 5, 0.95),
                                 elem(5, 6, 0.9)});
  const auto clusters = nnc(info);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST(Nnc, FarElementsFormSeparateClusters) {
  const auto info = sorted_desc({elem(2, 2, 1.0), elem(20, 20, 0.9)});
  const auto clusters = nnc(info);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Nnc, TwoHopGapStillJoins) {
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(7, 5, 0.95)});
  const auto clusters = nnc(info);
  ASSERT_EQ(clusters.size(), 1u);
}

TEST(Nnc, ThreeHopGapDoesNotJoin) {
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(8, 5, 0.95)});
  EXPECT_EQ(nnc(info).size(), 2u);
}

TEST(Nnc, ThresholdsFilterWeakElements) {
  NncConfig cfg;
  cfg.qcloud_threshold = 0.005;
  const auto info = sorted_desc(
      {elem(5, 5, 1.0), elem(6, 5, 0.001), elem(10, 10, 1.0, 0.001)});
  // 0.001 qcloud fails threshold; olrfraction 0.001 fails threshold.
  const auto clusters = nnc(info, cfg);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 1u);
}

TEST(Nnc, MeanDeviationGuardRejectsOutliers) {
  // A neighbour whose value would shift the cluster mean by >30% stays out.
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(6, 5, 0.1)});
  const auto clusters = nnc(info);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Nnc, MeanDeviationGuardAcceptsSimilarValues) {
  const auto info = sorted_desc({elem(5, 5, 1.0), elem(6, 5, 0.8)});
  EXPECT_EQ(nnc(info).size(), 1u);
}

TEST(Nnc, UnsortedInputThrows) {
  const std::vector<QCloudInfo> bad{elem(0, 0, 0.5), elem(1, 0, 1.0)};
  EXPECT_THROW((void)nnc(bad), CheckError);
}

TEST(Nnc, EmptyInput) { EXPECT_TRUE(nnc({}).empty()); }

TEST(Nnc, ClustersArePairwiseDisjointElementSets) {
  std::vector<QCloudInfo> v;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 4; ++j)
      v.push_back(elem(i * 3, j * 3, 1.0 - 0.01 * (i + j)));
  const auto info = sorted_desc(v);
  const auto clusters = nnc(info);
  std::vector<int> seen;
  for (const Cluster& c : clusters)
    for (int i : c) seen.push_back(i);
  std::sort(seen.begin(), seen.end());
  EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
}

TEST(Nnc, PaperFig9NonOverlapVsBaselineOverlap) {
  // A blobby field where the greedy ≤2-hop baseline produces spatially
  // overlapping clusters but the 1-hop-first + mean-deviation NNC does not.
  std::vector<QCloudInfo> v;
  // Two intense ridges separated by a weak trench 2 hops wide, plus noise
  // elements in the trench whose values differ strongly.
  for (int y = 0; y < 6; ++y) {
    v.push_back(elem(2, y, 2.0 - 0.01 * y));
    v.push_back(elem(6, y, 1.8 - 0.01 * y));
    v.push_back(elem(4, y, 0.2 - 0.01 * y));  // trench: joins both under
                                              // the loose baseline
  }
  const auto info = sorted_desc(v);
  const auto ours = nnc(info);
  const auto baseline = nnc_2hop_only(info);
  EXPECT_LE(count_overlapping_cluster_pairs(info, ours),
            count_overlapping_cluster_pairs(info, baseline));
  EXPECT_EQ(count_overlapping_cluster_pairs(info, ours), 0);
}

TEST(Nnc, AllElementsBelowThresholdYieldEmptyClusterSet) {
  // Every element fails a threshold (qcloud or olrfraction): no cluster is
  // seeded at all — the degenerate "no storms" case must not emit empty
  // clusters or crash downstream nest formation.
  NncConfig cfg;
  cfg.qcloud_threshold = 0.005;
  cfg.olrfraction_threshold = 0.005;
  const auto info = sorted_desc({elem(5, 5, 0.004), elem(6, 5, 0.001),
                                 elem(9, 9, 1.0, 0.001)});
  EXPECT_TRUE(nnc(info, cfg).empty());
  EXPECT_TRUE(nnc_2hop_only(info, cfg).empty());
}

TEST(Nnc, SingleQualifyingElementFormsAClusterOfOne) {
  const auto info =
      sorted_desc({elem(5, 5, 1.0), elem(20, 20, 0.001)});  // 2nd filtered
  const auto clusters = nnc(info);
  ASSERT_EQ(clusters.size(), 1u);
  ASSERT_EQ(clusters[0].size(), 1u);
  EXPECT_EQ(clusters[0][0], 0);
  EXPECT_EQ(cluster_bounds(info, clusters[0]), info[0].subdomain);
}

TEST(Nnc, MeanDeviationGuardDecidesWhenDistancesAreAllEqual) {
  // Candidate at (5,6) is exactly 1 hop from BOTH members of the cluster
  // {1.0 at (5,5), 0.95 at (6,5)} — proximity cannot discriminate, so only
  // the 30% mean-shift guard decides. Old mean 0.975; folding x in gives
  // (1.95 + x)/3, so the guard |new-old| <= 0.3*old admits x >= 0.0975.
  const double boundary = 3 * 0.7 * 0.975 - 1.95;  // = 0.0975
  {
    const auto info = sorted_desc(
        {elem(5, 5, 1.0), elem(6, 5, 0.95), elem(5, 6, boundary - 0.05)});
    const auto clusters = nnc(info);
    ASSERT_EQ(clusters.size(), 2u) << "below the limit: must stay out";
    EXPECT_EQ(clusters[0].size(), 2u);
    EXPECT_EQ(clusters[1].size(), 1u);
  }
  {
    const auto info = sorted_desc(
        {elem(5, 5, 1.0), elem(6, 5, 0.95), elem(5, 6, 0.9)});
    const auto clusters = nnc(info);
    ASSERT_EQ(clusters.size(), 1u) << "within the limit: must join";
    EXPECT_EQ(clusters[0].size(), 3u);
  }
}

TEST(ClusterBounds, UnionOfSubdomains) {
  const auto info = sorted_desc({elem(2, 3, 1.0), elem(3, 3, 0.9)});
  const Cluster c{0, 1};
  const Rect b = cluster_bounds(info, c);
  EXPECT_EQ(b, (Rect{2 * 16, 3 * 10, 32, 10}));
}

TEST(ClusterBounds, EmptyClusterThrows) {
  EXPECT_THROW((void)cluster_bounds({}, Cluster{}), CheckError);
}

/// Reference Algorithm 2 exactly as pre-optimization: the cluster mean is
/// recomputed with an O(|cluster|) scan for every candidate. nnc() now
/// keeps a running sum instead; the clusters must stay identical.
std::vector<Cluster> nnc_reference(std::span<const QCloudInfo> info,
                                   const NncConfig& config) {
  const auto cluster_mean = [&](const Cluster& c) {
    double s = 0.0;
    for (int i : c) s += info[static_cast<std::size_t>(i)].qcloud;
    return s / static_cast<double>(c.size());
  };
  const auto distance_ok = [&](int element, int member, const Cluster& c,
                               int hop) {
    if (file_grid_distance(info[static_cast<std::size_t>(element)],
                           info[static_cast<std::size_t>(member)]) != hop)
      return false;
    const double old_mean = cluster_mean(c);
    const double new_mean =
        (old_mean * static_cast<double>(c.size()) +
         info[static_cast<std::size_t>(element)].qcloud) /
        static_cast<double>(c.size() + 1);
    return std::abs(new_mean - old_mean) <=
           config.mean_deviation_limit * old_mean;
  };
  std::vector<Cluster> clusters;
  for (int e = 0; e < static_cast<int>(info.size()); ++e) {
    const QCloudInfo& element = info[static_cast<std::size_t>(e)];
    if (element.qcloud < config.qcloud_threshold ||
        element.olrfraction < config.olrfraction_threshold)
      continue;
    bool placed = false;
    for (const int hop : {1, 2}) {
      for (Cluster& list : clusters) {
        for (const int member : list) {
          if (distance_ok(e, member, list, hop)) {
            list.push_back(e);
            placed = true;
            break;
          }
        }
        if (placed) break;
      }
      if (placed) break;
    }
    if (!placed) clusters.push_back(Cluster{e});
  }
  return clusters;
}

TEST(Nnc, RunningSumMatchesRecomputedMeanReference) {
  Xoshiro256 rng(0xc10cULL);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<QCloudInfo> v;
    std::set<std::pair<int, int>> used;
    const int count = 10 + trial;
    while (static_cast<int>(v.size()) < count) {
      const int fx = static_cast<int>(rng.uniform_int(0, 15));
      const int fy = static_cast<int>(rng.uniform_int(0, 15));
      if (!used.insert({fx, fy}).second) continue;
      v.push_back(elem(fx, fy, rng.uniform(0.001, 2.0),
                       rng.uniform(0.0, 1.0)));
    }
    const auto info = sorted_desc(std::move(v));
    NncConfig cfg;
    cfg.qcloud_threshold = 0.01;
    cfg.olrfraction_threshold = 0.01;
    const auto got = nnc(info, cfg);
    const auto want = nnc_reference(info, cfg);
    // Identical clusters: same count, same members, same order — the
    // running sum adds the same doubles in the same order the recomputing
    // scan did, so every mean-deviation decision is bit-identical.
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t c = 0; c < got.size(); ++c)
      EXPECT_EQ(got[c], want[c]) << "trial " << trial << " cluster " << c;
  }
}

TEST(Nnc2HopOnly, GreedyMergesAcrossTrench) {
  const auto info =
      sorted_desc({elem(2, 2, 1.0), elem(4, 2, 0.05), elem(6, 2, 0.9)});
  NncConfig cfg;
  cfg.qcloud_threshold = 0.0;
  cfg.olrfraction_threshold = 0.0;
  // Baseline: the weak trench element chains onto the stronger ridge via
  // the loose 2-hop link (2 clusters total).
  EXPECT_EQ(nnc_2hop_only(info, cfg).size(), 2u);
  // Ours: the trench element fails the mean-deviation guard against both
  // ridges and stays alone (3 clusters).
  EXPECT_EQ(nnc(info, cfg).size(), 3u);
}

}  // namespace
}  // namespace stormtrack
