/// Randomized property tests of Algorithm 2 over synthetic element fields.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pda/nnc.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

std::vector<QCloudInfo> random_elements(Xoshiro256& rng, int count) {
  std::vector<QCloudInfo> v;
  std::set<std::pair<int, int>> used;
  while (static_cast<int>(v.size()) < count) {
    const int fx = static_cast<int>(rng.uniform_int(0, 31));
    const int fy = static_cast<int>(rng.uniform_int(0, 31));
    if (!used.insert({fx, fy}).second) continue;
    QCloudInfo e;
    e.file_rank = fy * 32 + fx;
    e.file_x = fx;
    e.file_y = fy;
    e.subdomain = Rect{fx * 16, fy * 10, 16, 10};
    e.qcloud = rng.uniform(0.001, 2.0);
    e.olrfraction = rng.uniform(0.0, 1.0);
    v.push_back(e);
  }
  std::sort(v.begin(), v.end(), [](const QCloudInfo& a, const QCloudInfo& b) {
    return a.qcloud > b.qcloud;
  });
  return v;
}

class NncFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NncFuzz, InvariantsOnRandomFields) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const auto info = random_elements(rng, 60);
    const NncConfig cfg;
    const auto clusters = nnc(info, cfg);

    std::set<int> seen;
    for (const Cluster& c : clusters) {
      ASSERT_FALSE(c.empty());
      for (int e : c) {
        // Disjoint.
        EXPECT_TRUE(seen.insert(e).second);
        // Thresholds respected.
        EXPECT_GE(info[static_cast<std::size_t>(e)].qcloud,
                  cfg.qcloud_threshold);
        EXPECT_GE(info[static_cast<std::size_t>(e)].olrfraction,
                  cfg.olrfraction_threshold);
      }
      // 2-hop connectivity: every non-seed member sits within 2 hops of an
      // *earlier* member (insertion order is preserved in the cluster).
      for (std::size_t k = 1; k < c.size(); ++k) {
        bool linked = false;
        for (std::size_t j = 0; j < k; ++j)
          linked |= file_grid_distance(
                        info[static_cast<std::size_t>(c[k])],
                        info[static_cast<std::size_t>(c[j])]) <= 2;
        EXPECT_TRUE(linked);
      }
    }
    // Coverage: every thresholded element is in exactly one cluster.
    int expected = 0;
    for (const QCloudInfo& e : info)
      if (e.qcloud >= cfg.qcloud_threshold &&
          e.olrfraction >= cfg.olrfraction_threshold)
        ++expected;
    EXPECT_EQ(static_cast<int>(seen.size()), expected);
  }
}

TEST_P(NncFuzz, OursNeverMoreOverlappingThanBaseline) {
  Xoshiro256 rng(GetParam() + 500);
  for (int trial = 0; trial < 10; ++trial) {
    const auto info = random_elements(rng, 40);
    const auto ours = nnc(info);
    const auto baseline = nnc_2hop_only(info);
    // The 1-hop-first + mean-deviation variant yields at least as many,
    // never coarser, clusters than the greedy baseline.
    EXPECT_GE(ours.size(), baseline.size());
  }
}

TEST_P(NncFuzz, DeterministicGivenInput) {
  Xoshiro256 rng(GetParam() + 900);
  const auto info = random_elements(rng, 50);
  const auto a = nnc(info);
  const auto b = nnc(info);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NncFuzz,
                         ::testing::Values(10u, 20u, 30u, 40u));

}  // namespace
}  // namespace stormtrack
