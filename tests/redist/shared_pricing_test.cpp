/// SharedPricingCache contract: cross-scope memoized pricing is
/// bit-identical to direct sparse pricing, scopes (machine fingerprints)
/// never leak summaries into each other, invalidation is per scope (the
/// model-change story), and the instance hit/miss stats account every
/// query.

#include "redist/shared_pricing.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "core/machine.hpp"
#include "redist/redistributor.hpp"

namespace stormtrack {
namespace {

void expect_equal(const RedistCostSummary& a, const RedistCostSummary& b) {
  EXPECT_EQ(a.total_points, b.total_points);
  EXPECT_EQ(a.overlap_points, b.overlap_points);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.hop_bytes, b.hop_bytes);
  EXPECT_EQ(a.local_bytes, b.local_bytes);
  EXPECT_EQ(a.num_messages, b.num_messages);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.worst_pair_time, b.worst_pair_time);
  EXPECT_EQ(a.worst_sender_time, b.worst_sender_time);
}

TEST(SharedPricingCache, HitIsBitIdenticalToDirectPricing) {
  const Machine machine = Machine::bluegene(256);
  const std::uint64_t scope = machine.fingerprint();
  SharedPricingCache cache;
  const NestShape nest{200, 160};
  const Rect a{0, 0, 6, 5};
  const Rect b{2, 1, 7, 4};

  const RedistCostSummary direct =
      redistribution_cost(nest, a, b, machine.grid_px(), 8, &machine.comm());
  const RedistCostSummary miss =
      cache.price(scope, nest, a, b, machine.grid_px(), 8, &machine.comm());
  const RedistCostSummary hit =
      cache.price(scope, nest, a, b, machine.grid_px(), 8, &machine.comm());

  expect_equal(miss, direct);
  expect_equal(hit, direct);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedPricingCache, ScopesNeverShareSummaries) {
  // Same process grid, same pricing key — different interconnects. The
  // torus and the fat-tree disagree on hop structure, so serving one
  // scope's summary for the other would be a real corruption, not a
  // hit-rate detail.
  const Machine torus = Machine::bluegene(256);
  const Machine fattree = Machine::fattree(256);
  ASSERT_EQ(torus.grid_px(), fattree.grid_px());
  ASSERT_NE(torus.fingerprint(), fattree.fingerprint());

  SharedPricingCache cache;
  const NestShape nest{200, 160};
  const Rect a{0, 0, 6, 5};
  const Rect b{4, 2, 8, 6};

  const RedistCostSummary torus_priced =
      cache.price(torus.fingerprint(), nest, a, b, torus.grid_px(), 8,
                  &torus.comm());
  // Both scope queries must be misses: the second machine cannot be
  // served from the first machine's entry.
  EXPECT_EQ(cache.stats().misses, 1);
  const RedistCostSummary fattree_priced =
      cache.price(fattree.fingerprint(), nest, a, b, fattree.grid_px(), 8,
                  &fattree.comm());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.size(), 2u);

  expect_equal(torus_priced, redistribution_cost(nest, a, b, torus.grid_px(),
                                                 8, &torus.comm()));
  expect_equal(fattree_priced,
               redistribution_cost(nest, a, b, fattree.grid_px(), 8,
                                   &fattree.comm()));
}

TEST(SharedPricingCache, InvalidateDropsOnlyTheNamedScope) {
  // The model-change story: when the cost semantics behind one machine
  // fingerprint change, that scope's entries must go and every other
  // scope's must survive.
  const Machine torus = Machine::bluegene(256);
  const Machine fattree = Machine::fattree(256);
  SharedPricingCache cache;
  const NestShape nest{120, 90};
  const Rect a{0, 0, 5, 4};
  const Rect b{1, 1, 6, 5};

  (void)cache.price(torus.fingerprint(), nest, a, b, torus.grid_px(), 8,
                    &torus.comm());
  (void)cache.price(fattree.fingerprint(), nest, a, b, fattree.grid_px(), 8,
                    &fattree.comm());
  ASSERT_EQ(cache.size(), 2u);

  cache.invalidate(torus.fingerprint());
  EXPECT_EQ(cache.size(), 1u);

  // The surviving scope still hits; the invalidated one re-misses (and
  // re-prices to the same bits).
  const SharedPricingCache::Stats before = cache.stats();
  (void)cache.price(fattree.fingerprint(), nest, a, b, fattree.grid_px(), 8,
                    &fattree.comm());
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  const RedistCostSummary repriced = cache.price(
      torus.fingerprint(), nest, a, b, torus.grid_px(), 8, &torus.comm());
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
  expect_equal(repriced, redistribution_cost(nest, a, b, torus.grid_px(), 8,
                                             &torus.comm()));

  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedPricingCache, MachineFingerprintIsStableAndDiscriminating) {
  // Equal construction → equal fingerprint (the property that makes the
  // scope a safe cross-session key); different machine or core count →
  // different fingerprint.
  EXPECT_EQ(Machine::bluegene(256).fingerprint(),
            Machine::bluegene(256).fingerprint());
  EXPECT_EQ(Machine::by_name("bgl", 256).fingerprint(),
            Machine::bluegene(256).fingerprint());
  EXPECT_NE(Machine::bluegene(256).fingerprint(),
            Machine::bluegene(1024).fingerprint());
  EXPECT_NE(Machine::bluegene(256).fingerprint(),
            Machine::fist_cluster(256).fingerprint());
  EXPECT_NE(Machine::fattree(256).fingerprint(),
            Machine::dragonfly(256).fingerprint());
}

}  // namespace
}  // namespace stormtrack
