/// Property tests for the sparse redistribution pricer: on randomized
/// moves — including degenerate one-row / one-column rectangles — across
/// all four interconnect models, redistribution_cost() must reproduce the
/// retired dense sender×receiver walk (redistribution_cost_dense()) on
/// every RedistCostSummary field, EXPECT_EQ / bit-for-bit, floats
/// included. A second group pins the asymptotic: intersection probes per
/// query grow logarithmically in P, and identity moves enumerate nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "redist/block_decomp.hpp"
#include "redist/interval_index.hpp"
#include "redist/redistributor.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

Rect random_rect(Xoshiro256& rng, int grid_px, int grid_py) {
  const int w = static_cast<int>(rng.uniform_int(1, grid_px));
  const int h = static_cast<int>(rng.uniform_int(1, grid_py));
  return Rect{static_cast<int>(rng.uniform_int(0, grid_px - w)),
              static_cast<int>(rng.uniform_int(0, grid_py - h)), w, h};
}

/// Every few trials, degenerate single-row / single-column rectangles (the
/// shapes most likely to hit empty receiver blocks and off-by-one owner
/// lookups).
Rect random_rect_maybe_degenerate(Xoshiro256& rng, int grid_px, int grid_py,
                                  int trial) {
  if (trial % 5 == 3) {
    const int h = static_cast<int>(rng.uniform_int(1, grid_py));
    return Rect{static_cast<int>(rng.uniform_int(0, grid_px - 1)),
                static_cast<int>(rng.uniform_int(0, grid_py - h)), 1, h};
  }
  if (trial % 5 == 4) {
    const int w = static_cast<int>(rng.uniform_int(1, grid_px));
    return Rect{static_cast<int>(rng.uniform_int(0, grid_px - w)),
                static_cast<int>(rng.uniform_int(0, grid_py - 1)), w, 1};
  }
  return random_rect(rng, grid_px, grid_py);
}

void expect_matches_dense(const NestShape& nest, const Rect& a, const Rect& b,
                          int grid_px, int bpp, const SimComm* comm) {
  const RedistCostSummary sparse =
      redistribution_cost(nest, a, b, grid_px, bpp, comm);
  const RedistCostSummary dense =
      redistribution_cost_dense(nest, a, b, grid_px, bpp, comm);
  EXPECT_EQ(sparse.total_points, dense.total_points);
  EXPECT_EQ(sparse.overlap_points, dense.overlap_points);
  EXPECT_EQ(sparse.total_bytes, dense.total_bytes);
  EXPECT_EQ(sparse.hop_bytes, dense.hop_bytes);
  EXPECT_EQ(sparse.local_bytes, dense.local_bytes);
  EXPECT_EQ(sparse.num_messages, dense.num_messages);
  EXPECT_EQ(sparse.max_hops, dense.max_hops);
  // Bit-identical, not approximately equal: the sparse path must visit the
  // moved blocks in the dense order so even the order-dependent
  // worst_sender_time float accumulation agrees exactly.
  EXPECT_EQ(sparse.worst_pair_time, dense.worst_pair_time);
  EXPECT_EQ(sparse.worst_sender_time, dense.worst_sender_time);
  EXPECT_EQ(sparse.overlap_fraction(), dense.overlap_fraction());
}

void sweep_machine(const Machine& machine, std::uint64_t seed, int trials) {
  Xoshiro256 rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 361)),
                         static_cast<int>(rng.uniform_int(20, 361))};
    const Rect a = random_rect_maybe_degenerate(rng, machine.grid_px(),
                                                machine.grid_py(), trial);
    const Rect b = random_rect_maybe_degenerate(rng, machine.grid_px(),
                                                machine.grid_py(), trial + 1);
    expect_matches_dense(nest, a, b, machine.grid_px(), 8, &machine.comm());
    // Also a same-rect "identity" move every few trials — the diffusion
    // steady state, and the path that enumerates nothing in the sparse
    // pricer.
    if (trial % 4 == 0)
      expect_matches_dense(nest, a, a, machine.grid_px(), 8, &machine.comm());
  }
}

class SparseCostSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseCostSweep, MatchesDenseOnTorus) {
  sweep_machine(Machine::bluegene(256), GetParam(), 15);
}

TEST_P(SparseCostSweep, MatchesDenseOnSwitched) {
  sweep_machine(Machine::fist_cluster(128), GetParam() + 17, 15);
}

TEST_P(SparseCostSweep, MatchesDenseOnDragonfly) {
  sweep_machine(Machine::dragonfly(256), GetParam() + 29, 15);
}

TEST_P(SparseCostSweep, MatchesDenseOnFatTree) {
  sweep_machine(Machine::fattree(192), GetParam() + 43, 15);
}

// 4 seeds × 4 topologies × 15 trials (plus identity-move extras) > 240
// randomized equivalence cases.
INSTANTIATE_TEST_SUITE_P(Seeds, SparseCostSweep,
                         ::testing::Values(0x5eedULL, 0xabcdefULL,
                                           0x1234567ULL, 0xfeedbeefULL));

TEST(SparseCost, MatchesDenseWithoutCommunicator) {
  Xoshiro256 rng(0xd15ea5eULL);
  for (int trial = 0; trial < 40; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 361)),
                         static_cast<int>(rng.uniform_int(20, 361))};
    const Rect a = random_rect_maybe_degenerate(rng, 16, 16, trial);
    const Rect b = random_rect_maybe_degenerate(rng, 16, 16, trial + 1);
    expect_matches_dense(nest, a, b, 16, kDefaultBytesPerPoint, nullptr);
  }
}

// ------------------------------------------------------ interval index

TEST(BlockIntervalIndex, AgreesWithOverlappingPartsEverywhere) {
  Xoshiro256 rng(0x10deeULL);
  for (int trial = 0; trial < 400; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 500));
    const int parts = static_cast<int>(rng.uniform_int(1, 64));
    const BlockIntervalIndex index(n, parts);
    const int lo = static_cast<int>(rng.uniform_int(0, n - 1));
    const int hi = static_cast<int>(rng.uniform_int(lo, n));
    std::int64_t probes = 0;
    const PartRange got = index.overlapping(lo, hi, &probes);
    const PartRange want = overlapping_parts(lo, hi, n, parts);
    EXPECT_EQ(got.first, want.first)
        << "n=" << n << " parts=" << parts << " [" << lo << "," << hi << ")";
    EXPECT_EQ(got.last, want.last)
        << "n=" << n << " parts=" << parts << " [" << lo << "," << hi << ")";
  }
}

TEST(BlockIntervalIndex, ProbesAreLogarithmicInParts) {
  // One owner lookup bisects over parts: <= ceil(log2(parts)) probes.
  for (int parts : {1, 2, 3, 64, 1000, 1024, 4096}) {
    const BlockIntervalIndex index(1 << 20, parts);
    int log2ceil = 0;
    while ((1 << log2ceil) < parts) ++log2ceil;
    std::int64_t probes = 0;
    (void)index.owner_of((1 << 20) - 1, &probes);
    EXPECT_LE(probes, log2ceil) << "parts=" << parts;
  }
}

// ------------------------------------------------------ probe asymptotics

/// Intersection probes for one pricing query on a P-rank machine.
std::int64_t probes_for(int cores) {
  const ProcessGridShape g = choose_process_grid(cores);
  const NestShape nest{300, 300};
  // A genuine off-diagonal move spanning a constant fraction of the grid.
  const Rect a{0, 0, g.px / 2, g.py / 2};
  const Rect b{g.px / 4, g.py / 4, g.px / 2, g.py / 2};
  const std::int64_t before = redist_counters().intersection_probes;
  (void)redistribution_cost(nest, a, b, g.px, 8);
  return redist_counters().intersection_probes - before;
}

TEST(SparseCost, ProbeCountGrowsSubLinearlyInRanks) {
  // Quadrupling P must not even double probes-per-query: the per-axis work
  // is O(√P · log P), so the ratio should hover near 2·(log factor), far
  // below the 4× a linear walk would show and the 16× of the dense walk.
  const std::int64_t p1 = probes_for(1024);
  const std::int64_t p2 = probes_for(4096);
  const std::int64_t p3 = probes_for(16384);
  EXPECT_LT(p2, p1 * 3);
  EXPECT_LT(p3, p2 * 3);
  EXPECT_GT(p1, 0);
}

TEST(SparseCost, IdentityMoveEnumeratesNoBlocks) {
  const Machine machine = Machine::bluegene(1024);
  const NestShape nest{400, 400};
  const Rect r{5, 3, 20, 17};
  const RedistCounters before = redist_counters();
  const RedistCostSummary sum =
      redistribution_cost(nest, r, r, machine.grid_px(), 8, &machine.comm());
  const RedistCounters after = redist_counters();
  EXPECT_EQ(sum.num_messages, 0);
  EXPECT_EQ(after.moved_blocks_enumerated, before.moved_blocks_enumerated);
  EXPECT_EQ(after.cost_queries, before.cost_queries + 1);
}

TEST(SparseCost, MovedBlockCounterMatchesPlanSize) {
  const Machine machine = Machine::bluegene(256);
  const NestShape nest{240, 180};
  const Rect a{0, 0, 8, 8};
  const Rect b{4, 2, 10, 6};
  const RedistCounters before = redist_counters();
  (void)redistribution_cost(nest, a, b, machine.grid_px(), 8,
                            &machine.comm());
  const RedistCounters after = redist_counters();
  const RedistPlan plan =
      plan_redistribution(nest, a, b, machine.grid_px(), 8);
  std::int64_t off_rank = 0;
  for (const Message& m : plan.messages)
    if (m.src != m.dst) ++off_rank;
  EXPECT_EQ(after.moved_blocks_enumerated - before.moved_blocks_enumerated,
            off_rank);
}

}  // namespace
}  // namespace stormtrack
