/// RedistCostCache contract: memoized pricing is bit-identical to direct
/// sparse pricing, hits still count as cost queries (the hot-path
/// instrumentation invariant), and capacity flushes / invalidation change
/// hit rates but never results.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/machine.hpp"
#include "redist/cost_cache.hpp"
#include "redist/redistributor.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

void expect_equal(const RedistCostSummary& a, const RedistCostSummary& b) {
  EXPECT_EQ(a.total_points, b.total_points);
  EXPECT_EQ(a.overlap_points, b.overlap_points);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.hop_bytes, b.hop_bytes);
  EXPECT_EQ(a.local_bytes, b.local_bytes);
  EXPECT_EQ(a.num_messages, b.num_messages);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.worst_pair_time, b.worst_pair_time);
  EXPECT_EQ(a.worst_sender_time, b.worst_sender_time);
}

TEST(RedistCostCache, HitServesIdenticalSummaryAndCountsAsQuery) {
  const Machine machine = Machine::bluegene(256);
  RedistCostCache cache;
  const NestShape nest{200, 160};
  const Rect a{0, 0, 6, 5};
  const Rect b{2, 1, 7, 4};

  const RedistCostSummary direct = redistribution_cost(
      nest, a, b, machine.grid_px(), 8, &machine.comm());

  const RedistCounters c0 = redist_counters();
  const RedistCostSummary miss =
      cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm());
  const RedistCounters c1 = redist_counters();
  const RedistCostSummary hit =
      cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm());
  const RedistCounters c2 = redist_counters();

  expect_equal(miss, direct);
  expect_equal(hit, direct);
  // Miss: one computed query; hit: one served query, no probes.
  EXPECT_EQ(c1.cost_queries, c0.cost_queries + 1);
  EXPECT_EQ(c1.cost_cache_misses, c0.cost_cache_misses + 1);
  EXPECT_EQ(c2.cost_queries, c1.cost_queries + 1);
  EXPECT_EQ(c2.cost_cache_hits, c1.cost_cache_hits + 1);
  EXPECT_EQ(c2.cost_cache_misses, c1.cost_cache_misses);
  EXPECT_EQ(c2.intersection_probes, c1.intersection_probes);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RedistCostCache, DistinctKeysDoNotCollide) {
  const Machine machine = Machine::bluegene(256);
  RedistCostCache cache;
  Xoshiro256 rng(0xcac4eULL);
  for (int trial = 0; trial < 60; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 300)),
                         static_cast<int>(rng.uniform_int(20, 300))};
    const int w = static_cast<int>(rng.uniform_int(1, machine.grid_px()));
    const int h = static_cast<int>(rng.uniform_int(1, machine.grid_py()));
    const Rect a{static_cast<int>(rng.uniform_int(0, machine.grid_px() - w)),
                 static_cast<int>(rng.uniform_int(0, machine.grid_py() - h)),
                 w, h};
    const Rect b{static_cast<int>(rng.uniform_int(0, machine.grid_px() - w)),
                 static_cast<int>(rng.uniform_int(0, machine.grid_py() - h)),
                 w, h};
    expect_equal(
        cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm()),
        redistribution_cost(nest, a, b, machine.grid_px(), 8,
                            &machine.comm()));
    // Re-query through the cache: must now be a hit with the same value.
    expect_equal(
        cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm()),
        redistribution_cost(nest, a, b, machine.grid_px(), 8,
                            &machine.comm()));
  }
}

TEST(RedistCostCache, CapacityFlushNeverChangesResults) {
  const Machine machine = Machine::bluegene(256);
  RedistCostCache cache(2);  // flush after every couple of entries
  const NestShape nest{128, 128};
  const Rect rects[] = {Rect{0, 0, 4, 4}, Rect{1, 1, 4, 4}, Rect{2, 2, 4, 4},
                        Rect{3, 3, 4, 4}};
  for (int round = 0; round < 3; ++round)
    for (const Rect& r : rects)
      expect_equal(cache.price(nest, rects[0], r, machine.grid_px(), 8,
                               &machine.comm()),
                   redistribution_cost(nest, rects[0], r, machine.grid_px(),
                                       8, &machine.comm()));
  EXPECT_LE(cache.size(), 2u);
}

TEST(RedistCostCache, InvalidateEmptiesWithoutChangingResults) {
  const Machine machine = Machine::fist_cluster(128);
  RedistCostCache cache;
  const NestShape nest{90, 70};
  const Rect a{0, 0, 4, 8};
  const Rect b{4, 0, 4, 8};
  const RedistCostSummary first =
      cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm());
  cache.invalidate();
  EXPECT_EQ(cache.size(), 0u);
  const RedistCounters before = redist_counters();
  const RedistCostSummary again =
      cache.price(nest, a, b, machine.grid_px(), 8, &machine.comm());
  const RedistCounters after = redist_counters();
  EXPECT_EQ(after.cost_cache_misses, before.cost_cache_misses + 1);
  expect_equal(first, again);
}

}  // namespace
}  // namespace stormtrack
