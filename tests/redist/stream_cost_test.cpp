/// Randomized equivalence: the streaming cost aggregator
/// (redistribution_cost) must match the materialized plan
/// (plan_redistribution + SimComm::alltoallv accounting + the message-list
/// RedistTimeModel overload) bit-for-bit on every aggregate — that is the
/// whole contract that lets the pipeline price candidates without
/// allocating message vectors.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "perfmodel/redist_model.hpp"
#include "redist/redistributor.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

struct PlanTotals {
  std::int64_t total_bytes = 0;
  std::int64_t local_bytes = 0;
  std::int64_t num_messages = 0;
};

PlanTotals totals_of(const RedistPlan& plan) {
  PlanTotals t;
  for (const Message& m : plan.messages) {
    if (m.src == m.dst)
      t.local_bytes += m.bytes;
    else {
      t.total_bytes += m.bytes;
      t.num_messages += 1;
    }
  }
  return t;
}

Rect random_rect(Xoshiro256& rng, int grid_px, int grid_py) {
  const int w = static_cast<int>(rng.uniform_int(1, grid_px));
  const int h = static_cast<int>(rng.uniform_int(1, grid_py));
  return Rect{static_cast<int>(rng.uniform_int(0, grid_px - w)),
              static_cast<int>(rng.uniform_int(0, grid_py - h)), w, h};
}

/// Every few trials, degenerate single-row / single-column rectangles.
Rect random_rect_maybe_degenerate(Xoshiro256& rng, int grid_px, int grid_py,
                                  int trial) {
  if (trial % 5 == 3) {
    const int h = static_cast<int>(rng.uniform_int(1, grid_py));
    return Rect{static_cast<int>(rng.uniform_int(0, grid_px - 1)),
                static_cast<int>(rng.uniform_int(0, grid_py - h)), 1, h};
  }
  if (trial % 5 == 4) {
    const int w = static_cast<int>(rng.uniform_int(1, grid_px));
    return Rect{static_cast<int>(rng.uniform_int(0, grid_px - w)),
                static_cast<int>(rng.uniform_int(0, grid_py - 1)), w, 1};
  }
  return random_rect(rng, grid_px, grid_py);
}

void expect_summary_matches(const NestShape& nest, const Rect& a,
                            const Rect& b, int grid_px, int bpp,
                            const SimComm& comm, const RedistTimeModel& model) {
  const RedistPlan plan = plan_redistribution(nest, a, b, grid_px, bpp);
  const RedistCostSummary sum =
      redistribution_cost(nest, a, b, grid_px, bpp, &comm);
  const PlanTotals t = totals_of(plan);
  const TrafficReport traffic = comm.alltoallv(plan.messages);

  EXPECT_EQ(static_cast<std::int64_t>(plan.messages.size()),
            count_redist_messages(nest, a, b, grid_px));
  EXPECT_EQ(sum.total_points, plan.total_points);
  EXPECT_EQ(sum.overlap_points, plan.overlap_points);
  EXPECT_EQ(sum.overlap_fraction(), plan.overlap_fraction());
  EXPECT_EQ(sum.total_bytes, t.total_bytes);
  EXPECT_EQ(sum.local_bytes, t.local_bytes);
  EXPECT_EQ(sum.num_messages, t.num_messages);
  // SimComm's own accounting of the materialized phase.
  EXPECT_EQ(sum.total_bytes, traffic.total_bytes);
  EXPECT_EQ(sum.hop_bytes, traffic.hop_bytes);
  EXPECT_EQ(sum.local_bytes, traffic.local_bytes);
  EXPECT_EQ(sum.num_messages, traffic.num_messages);
  EXPECT_EQ(sum.max_hops, traffic.max_hops);
  // The two predict overloads must agree bit-for-bit (EXPECT_EQ, not
  // NEAR): the streaming path accumulates in the message-list order.
  EXPECT_EQ(model.predict(sum), model.predict(plan.messages));
}

class StreamCostSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamCostSweep, MatchesMaterializedPlanOnDirectNetwork) {
  const Machine machine = Machine::bluegene(256);
  ASSERT_TRUE(machine.comm().topology().is_direct_network());
  const RedistTimeModel model(machine.comm());
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 361)),
                         static_cast<int>(rng.uniform_int(20, 361))};
    const Rect a = random_rect_maybe_degenerate(
        rng, machine.grid_px(), machine.grid_py(), trial);
    const Rect b = random_rect_maybe_degenerate(
        rng, machine.grid_px(), machine.grid_py(), trial + 1);
    expect_summary_matches(nest, a, b, machine.grid_px(), 8, machine.comm(),
                           model);
  }
}

TEST_P(StreamCostSweep, MatchesMaterializedPlanOnSwitchedNetwork) {
  const Machine machine = Machine::fist_cluster(128);
  ASSERT_FALSE(machine.comm().topology().is_direct_network());
  const RedistTimeModel model(machine.comm());
  Xoshiro256 rng(GetParam() + 7);
  for (int trial = 0; trial < 25; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 361)),
                         static_cast<int>(rng.uniform_int(20, 361))};
    const Rect a = random_rect_maybe_degenerate(
        rng, machine.grid_px(), machine.grid_py(), trial);
    const Rect b = random_rect_maybe_degenerate(
        rng, machine.grid_px(), machine.grid_py(), trial + 1);
    expect_summary_matches(nest, a, b, machine.grid_px(),
                           kDefaultBytesPerPoint, machine.comm(), model);
  }
}

// 4 seeds × 2 networks × 25 trials = 200 randomized cases.
INSTANTIATE_TEST_SUITE_P(Seeds, StreamCostSweep,
                         ::testing::Values(0x5eedULL, 0xabcdefULL,
                                           0x1234567ULL, 0xfeedbeefULL));

TEST(StreamCost, WithoutCommOnlyTrafficAggregates) {
  const NestShape nest{100, 80};
  const Rect a{0, 0, 4, 4};
  const Rect b{2, 2, 6, 3};
  const RedistCostSummary sum = redistribution_cost(nest, a, b, 16, 8);
  const RedistPlan plan = plan_redistribution(nest, a, b, 16, 8);
  const PlanTotals t = totals_of(plan);
  EXPECT_EQ(sum.total_bytes, t.total_bytes);
  EXPECT_EQ(sum.num_messages, t.num_messages);
  EXPECT_EQ(sum.overlap_points, plan.overlap_points);
  // No communicator → no topology-dependent fields.
  EXPECT_EQ(sum.hop_bytes, 0);
  EXPECT_EQ(sum.max_hops, 0);
  EXPECT_EQ(sum.worst_pair_time, 0.0);
  EXPECT_EQ(sum.worst_sender_time, 0.0);
}

TEST(StreamCost, IdentityMoveIsAllLocal) {
  const Machine machine = Machine::bluegene(256);
  const Rect r{3, 2, 5, 4};
  const NestShape nest{200, 200};
  const RedistCostSummary sum = redistribution_cost(
      nest, r, r, machine.grid_px(), 8, &machine.comm());
  EXPECT_EQ(sum.overlap_points, sum.total_points);
  EXPECT_EQ(sum.total_bytes, 0);
  EXPECT_EQ(sum.num_messages, 0);
  EXPECT_EQ(sum.local_bytes, static_cast<std::int64_t>(200) * 200 * 8);
  EXPECT_EQ(sum.overlap_fraction(), 1.0);
}

TEST(StreamCost, CountsCostQueriesNotPlans) {
  const RedistCounters before = redist_counters();
  (void)redistribution_cost(NestShape{50, 50}, Rect{0, 0, 4, 4},
                            Rect{1, 1, 4, 4}, 8, 8);
  const RedistCounters mid = redist_counters();
  EXPECT_EQ(mid.cost_queries, before.cost_queries + 1);
  EXPECT_EQ(mid.plans_built, before.plans_built);
  EXPECT_EQ(mid.messages_materialized, before.messages_materialized);

  const RedistPlan plan =
      plan_redistribution(NestShape{50, 50}, Rect{0, 0, 4, 4},
                          Rect{1, 1, 4, 4}, 8, 8);
  const RedistCounters after = redist_counters();
  EXPECT_EQ(after.plans_built, mid.plans_built + 1);
  EXPECT_EQ(after.messages_materialized,
            mid.messages_materialized +
                static_cast<std::int64_t>(plan.messages.size()));
  EXPECT_EQ(after.cost_queries, mid.cost_queries);
}

}  // namespace
}  // namespace stormtrack
