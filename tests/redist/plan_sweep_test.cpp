/// Property sweep over random redistribution plans: the invariants that
/// make the §V metrics meaningful must hold for arbitrary rectangle pairs.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "redist/redistributor.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

constexpr int kGridPx = 32;

Rect random_rect(Xoshiro256& rng) {
  const int w = static_cast<int>(rng.uniform_int(1, 16));
  const int h = static_cast<int>(rng.uniform_int(1, 16));
  return Rect{static_cast<int>(rng.uniform_int(0, kGridPx - w)),
              static_cast<int>(rng.uniform_int(0, kGridPx - h)), w, h};
}

class PlanSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanSweep, ConservationAndBounds) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 361)),
                         static_cast<int>(rng.uniform_int(20, 361))};
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    const RedistPlan plan = plan_redistribution(nest, a, b, kGridPx, 8);

    // Conservation: every nest point is shipped exactly once.
    std::int64_t bytes = 0;
    for (const Message& m : plan.messages) bytes += m.bytes;
    EXPECT_EQ(bytes, static_cast<std::int64_t>(nest.nx) * nest.ny * 8);

    // Overlap is a fraction.
    EXPECT_GE(plan.overlap_fraction(), 0.0);
    EXPECT_LE(plan.overlap_fraction(), 1.0);

    // Each (sender, receiver) pair appears at most once.
    std::map<std::pair<int, int>, int> seen;
    for (const Message& m : plan.messages) seen[{m.src, m.dst}]++;
    for (const auto& [pair, count] : seen) EXPECT_EQ(count, 1);

    // Every receiver's incoming bytes equal its new block size.
    const BlockDecomposition new_d(nest, b, kGridPx);
    std::map<int, std::int64_t> incoming;
    for (const Message& m : plan.messages) incoming[m.dst] += m.bytes;
    for (int j = 0; j < b.h; ++j) {
      for (int i = 0; i < b.w; ++i) {
        const Rect region = new_d.owned_region(i, j);
        EXPECT_EQ(incoming[new_d.rank_at(i, j)], region.area() * 8);
      }
    }
  }
}

TEST_P(PlanSweep, ReverseMoveConservesBytesAndOverlap) {
  Xoshiro256 rng(GetParam() + 42);
  for (int trial = 0; trial < 25; ++trial) {
    const NestShape nest{static_cast<int>(rng.uniform_int(20, 300)),
                         static_cast<int>(rng.uniform_int(20, 300))};
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    const RedistPlan forward = plan_redistribution(nest, a, b, kGridPx, 8);
    const RedistPlan back = plan_redistribution(nest, b, a, kGridPx, 8);
    std::int64_t fb = 0, bb = 0;
    for (const Message& m : forward.messages) fb += m.bytes;
    for (const Message& m : back.messages) bb += m.bytes;
    EXPECT_EQ(fb, bb);
    // Staying points are symmetric: owner(a)==owner(b) either direction.
    EXPECT_EQ(forward.overlap_points, back.overlap_points);
  }
}

TEST_P(PlanSweep, FieldRoundTripOnRandomRects) {
  Xoshiro256 rng(GetParam() + 77);
  Torus3D topo(8, 8, 16);
  RowMajorMapping map(1024);
  SimComm comm(topo, map);
  const Redistributor redist(comm, 8);
  for (int trial = 0; trial < 5; ++trial) {
    const int nx = static_cast<int>(rng.uniform_int(10, 80));
    const int ny = static_cast<int>(rng.uniform_int(10, 80));
    Grid2D<double> field(nx, ny);
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) field(x, y) = rng.uniform();
    const Rect a = random_rect(rng);
    const Rect b = random_rect(rng);
    EXPECT_EQ(redist.redistribute_field(field, a, b, kGridPx), field);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanSweep,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace stormtrack
