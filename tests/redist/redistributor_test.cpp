#include "redist/redistributor.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stormtrack {
namespace {

class RedistributorTest : public ::testing::Test {
 protected:
  Torus3D topo_{8, 8, 16};
  RowMajorMapping map_{1024};
  SimComm comm_{topo_, map_};
  Redistributor redist_{comm_, 8};  // 8 bytes/point for easy accounting
};

TEST_F(RedistributorTest, PlanConservesBytes) {
  const NestShape nest{100, 80};
  const RedistPlan plan = plan_redistribution(nest, Rect{0, 0, 4, 4},
                                              Rect{10, 10, 5, 3}, 32, 8);
  std::int64_t bytes = 0;
  for (const Message& m : plan.messages) bytes += m.bytes;
  EXPECT_EQ(bytes, static_cast<std::int64_t>(100) * 80 * 8);
  EXPECT_EQ(plan.total_points, 8000);
}

TEST_F(RedistributorTest, IdenticalRectsFullOverlap) {
  const NestShape nest{64, 64};
  const RedistPlan plan = plan_redistribution(nest, Rect{2, 2, 8, 8},
                                              Rect{2, 2, 8, 8}, 32, 8);
  EXPECT_DOUBLE_EQ(plan.overlap_fraction(), 1.0);
  // Every message is a self message.
  for (const Message& m : plan.messages) EXPECT_EQ(m.src, m.dst);
}

TEST_F(RedistributorTest, DisjointRectsZeroOverlap) {
  const NestShape nest{64, 64};
  const RedistPlan plan = plan_redistribution(nest, Rect{0, 0, 8, 8},
                                              Rect{16, 16, 8, 8}, 32, 8);
  EXPECT_DOUBLE_EQ(plan.overlap_fraction(), 0.0);
}

TEST_F(RedistributorTest, InPlaceResizePartialOverlap) {
  // Growing the rectangle in place (the diffusion strategy's boundary
  // shift, §IV-B) keeps many points on their old owner: ranks at the same
  // grid position own overlapping — though not identical — blocks.
  const NestShape nest{64, 64};
  const RedistPlan plan = plan_redistribution(nest, Rect{0, 0, 8, 8},
                                              Rect{0, 0, 10, 8}, 32, 8);
  EXPECT_GT(plan.overlap_fraction(), 0.0);
  EXPECT_LT(plan.overlap_fraction(), 1.0);
}

TEST_F(RedistributorTest, PureTranslationHasZeroOverlap) {
  // Translating the same-size rectangle moves every rank's block wholesale:
  // no nest point keeps its owner. This is exactly why the scratch method,
  // which relocates retained nests freely, loses on redistribution.
  const NestShape nest{64, 64};
  const RedistPlan plan = plan_redistribution(nest, Rect{0, 0, 8, 8},
                                              Rect{1, 0, 8, 8}, 32, 8);
  EXPECT_DOUBLE_EQ(plan.overlap_fraction(), 0.0);
}

TEST_F(RedistributorTest, MetricsFromComm) {
  const NestShape nest{64, 64};
  const RedistMetrics m =
      redist_.redistribute(nest, Rect{0, 0, 8, 8}, Rect{16, 16, 8, 8}, 32);
  EXPECT_GT(m.traffic.modeled_time, 0.0);
  EXPECT_GT(m.traffic.hop_bytes, 0);
  EXPECT_EQ(m.total_points, 64 * 64);
  EXPECT_DOUBLE_EQ(m.overlap_fraction, 0.0);
}

TEST_F(RedistributorTest, FieldRoundTripPreservesValues) {
  // End-to-end conservation: scatter by the old decomposition, exchange,
  // reassemble — the field must survive bit-exactly.
  Xoshiro256 rng(5);
  Grid2D<double> field(37, 53);
  for (int y = 0; y < 53; ++y)
    for (int x = 0; x < 37; ++x) field(x, y) = rng.uniform();

  RedistMetrics metrics;
  const Grid2D<double> out = redist_.redistribute_field(
      field, Rect{0, 0, 5, 7}, Rect{9, 3, 4, 4}, 32, &metrics);
  EXPECT_EQ(out, field);
  EXPECT_EQ(metrics.total_points, 37 * 53);
  EXPECT_GT(metrics.traffic.total_bytes, 0);
}

TEST_F(RedistributorTest, FieldRoundTripWithOverlappingRects) {
  Grid2D<double> field(40, 40);
  for (int y = 0; y < 40; ++y)
    for (int x = 0; x < 40; ++x) field(x, y) = x * 100.0 + y;
  RedistMetrics metrics;
  const Grid2D<double> out = redist_.redistribute_field(
      field, Rect{0, 0, 6, 6}, Rect{0, 0, 8, 8}, 32, &metrics);
  EXPECT_EQ(out, field);
  EXPECT_GT(metrics.overlap_fraction, 0.0);
}

TEST_F(RedistributorTest, OverlapGrowsWithRectOverlap) {
  const NestShape nest{200, 200};
  const auto no_move =
      plan_redistribution(nest, Rect{0, 0, 10, 10}, Rect{0, 0, 10, 10}, 32);
  const auto small_grow =
      plan_redistribution(nest, Rect{0, 0, 10, 10}, Rect{0, 0, 12, 10}, 32);
  const auto relocation =
      plan_redistribution(nest, Rect{0, 0, 10, 10}, Rect{8, 8, 10, 10}, 32);
  EXPECT_DOUBLE_EQ(no_move.overlap_fraction(), 1.0);
  EXPECT_GT(no_move.overlap_fraction(), small_grow.overlap_fraction());
  EXPECT_GT(small_grow.overlap_fraction(), relocation.overlap_fraction());
  EXPECT_DOUBLE_EQ(relocation.overlap_fraction(), 0.0);
}

TEST_F(RedistributorTest, ShrinkAndGrowProcessorCounts) {
  // Paper Fig. 3: 16 senders -> 4 receivers; also test the reverse.
  const NestShape nest{80, 80};
  const RedistPlan shrink = plan_redistribution(nest, Rect{0, 0, 4, 4},
                                                Rect{20, 20, 2, 2}, 32, 8);
  const RedistPlan grow = plan_redistribution(nest, Rect{20, 20, 2, 2},
                                              Rect{0, 0, 4, 4}, 32, 8);
  std::int64_t b1 = 0, b2 = 0;
  for (const Message& m : shrink.messages) b1 += m.bytes;
  for (const Message& m : grow.messages) b2 += m.bytes;
  EXPECT_EQ(b1, b2);
  // Each receiver in the shrink case hears from exactly 4 senders.
  std::map<int, int> senders_per_receiver;
  for (const Message& m : shrink.messages) senders_per_receiver[m.dst]++;
  for (const auto& [dst, n] : senders_per_receiver) EXPECT_EQ(n, 4);
}

TEST_F(RedistributorTest, MoreProcsThanPointsStillConserves) {
  const NestShape nest{3, 3};
  const RedistPlan plan = plan_redistribution(nest, Rect{0, 0, 5, 5},
                                              Rect{10, 0, 6, 6}, 32, 8);
  std::int64_t bytes = 0;
  for (const Message& m : plan.messages) bytes += m.bytes;
  EXPECT_EQ(bytes, 9 * 8);
}

TEST_F(RedistributorTest, BadBytesPerPointThrows) {
  EXPECT_THROW(Redistributor(comm_, 0), CheckError);
  EXPECT_THROW((void)plan_redistribution(NestShape{4, 4}, Rect{0, 0, 2, 2},
                                         Rect{0, 0, 2, 2}, 32, -1),
               CheckError);
}

TEST(RedistributorTopoEffect, FoldedMappingLowersHopBytes) {
  // The §V-C rationale for topology-aware mapping: the same redistribution
  // plan costs fewer hop-bytes under the folding mapping than under a
  // random placement.
  Torus3D topo(8, 8, 16);
  FoldingMapping fold(32, 32, topo);
  RandomMapping rnd(1024, 7);
  SimComm folded(topo, fold);
  SimComm random(topo, rnd);
  Redistributor r_fold(folded, 8);
  Redistributor r_rand(random, 8);
  const NestShape nest{300, 300};
  const auto m_fold =
      r_fold.redistribute(nest, Rect{0, 0, 13, 16}, Rect{2, 2, 13, 16}, 32);
  const auto m_rand =
      r_rand.redistribute(nest, Rect{0, 0, 13, 16}, Rect{2, 2, 13, 16}, 32);
  EXPECT_LT(m_fold.traffic.hop_bytes, m_rand.traffic.hop_bytes);
}

}  // namespace
}  // namespace stormtrack
