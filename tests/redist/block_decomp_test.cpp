#include "redist/block_decomp.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(BlockRange, EvenSplit) {
  EXPECT_EQ(block_range(0, 12, 4).begin, 0);
  EXPECT_EQ(block_range(0, 12, 4).count, 3);
  EXPECT_EQ(block_range(3, 12, 4).begin, 9);
}

TEST(BlockRange, UnevenSplitCoversAll) {
  int covered = 0;
  int prev_end = 0;
  for (int k = 0; k < 5; ++k) {
    const Span1D s = block_range(k, 13, 5);
    EXPECT_EQ(s.begin, prev_end);
    covered += s.count;
    prev_end = s.end();
  }
  EXPECT_EQ(covered, 13);
}

TEST(BlockRange, MorePartsThanItems) {
  int nonempty = 0;
  for (int k = 0; k < 8; ++k)
    if (block_range(k, 3, 8).count > 0) ++nonempty;
  EXPECT_EQ(nonempty, 3);
}

TEST(OverlappingParts, ExactRange) {
  // 12 items in 4 parts of 3: [0,3) [3,6) [6,9) [9,12).
  const PartRange r = overlapping_parts(2, 7, 12, 4);
  EXPECT_EQ(r.first, 0);
  EXPECT_EQ(r.last, 2);
  const PartRange single = overlapping_parts(3, 6, 12, 4);
  EXPECT_EQ(single.first, 1);
  EXPECT_EQ(single.last, 1);
}

TEST(OverlappingParts, EmptyRange) {
  const PartRange r = overlapping_parts(5, 5, 12, 4);
  EXPECT_GT(r.first, r.last);
}

TEST(OverlappingParts, AgreesWithBlockRangeExhaustively) {
  for (const int n : {7, 12, 100}) {
    for (const int parts : {1, 3, 5, 8}) {
      for (int lo = 0; lo < n; ++lo) {
        for (int hi = lo + 1; hi <= n; ++hi) {
          const PartRange r = overlapping_parts(lo, hi, n, parts);
          for (int k = 0; k < parts; ++k) {
            const Span1D s = block_range(k, n, parts);
            const bool intersects = s.count > 0 && s.begin < hi &&
                                    s.end() > lo;
            const bool in_range = k >= r.first && k <= r.last;
            // Empty blocks inside the range are harmless (they contribute
            // empty intersections); non-empty intersecting blocks must be
            // covered and non-intersecting non-empty blocks excluded.
            if (intersects) EXPECT_TRUE(in_range);
            if (!intersects && s.count > 0 && in_range) {
              // allowed only if block is empty — contradiction
              ADD_FAILURE() << "non-intersecting block " << k
                            << " inside range for n=" << n
                            << " parts=" << parts << " [" << lo << "," << hi
                            << ")";
            }
          }
        }
      }
    }
  }
}

TEST(BlockDecomposition, PaperFig3Example) {
  // Nest over a 4×4 processor rectangle at grid origin, then over a 2×2
  // one: receiver block (0,0) of the 2×2 overlaps senders 0,1,4,5.
  const NestShape nest{8, 8};
  const BlockDecomposition old_d(nest, Rect{0, 0, 4, 4}, 4);
  const BlockDecomposition new_d(nest, Rect{0, 0, 2, 2}, 4);
  const Rect recv = new_d.owned_region(0, 0);
  EXPECT_EQ(recv, (Rect{0, 0, 4, 4}));
  std::set<int> senders;
  for (int y = 0; y < recv.h; ++y)
    for (int x = 0; x < recv.w; ++x)
      senders.insert(old_d.owner_rank(recv.x + x, recv.y + y));
  EXPECT_EQ(senders, (std::set<int>{0, 1, 4, 5}));
}

TEST(BlockDecomposition, RegionsTileNest) {
  const NestShape nest{202, 349};
  const BlockDecomposition d(nest, Rect{3, 5, 13, 16}, 32);
  std::int64_t area = 0;
  for (int j = 0; j < 16; ++j)
    for (int i = 0; i < 13; ++i) area += d.owned_region(i, j).area();
  EXPECT_EQ(area, static_cast<std::int64_t>(202) * 349);
}

TEST(BlockDecomposition, OwnerRankConsistentWithRegions) {
  const NestShape nest{37, 29};
  const BlockDecomposition d(nest, Rect{2, 1, 5, 7}, 16);
  for (int j = 0; j < 7; ++j) {
    for (int i = 0; i < 5; ++i) {
      const Rect r = d.owned_region(i, j);
      for (int y = r.y; y < r.y_end(); ++y)
        for (int x = r.x; x < r.x_end(); ++x)
          EXPECT_EQ(d.owner_rank(x, y), d.rank_at(i, j));
    }
  }
}

TEST(BlockDecomposition, GlobalRankRowMajor) {
  const BlockDecomposition d(NestShape{10, 10}, Rect{13, 13, 19, 19}, 32);
  EXPECT_EQ(d.rank_at(0, 0), 429);  // paper nest 5's start rank
  EXPECT_EQ(d.rank_at(1, 0), 430);
  EXPECT_EQ(d.rank_at(0, 1), 461);
}

TEST(BlockDecomposition, InvalidArgsThrow) {
  EXPECT_THROW(BlockDecomposition(NestShape{0, 5}, Rect{0, 0, 2, 2}, 4),
               CheckError);
  EXPECT_THROW(BlockDecomposition(NestShape{5, 5}, Rect{0, 0, 0, 2}, 4),
               CheckError);
  EXPECT_THROW(BlockDecomposition(NestShape{5, 5}, Rect{3, 0, 2, 2}, 4),
               CheckError);
}

}  // namespace
}  // namespace stormtrack
