/// End-to-end integration: weather simulation → split files → PDA → nest
/// tracking → reallocation (both strategies) → redistribution on the
/// simulated Blue Gene/L, asserting the paper's qualitative claims hold for
/// the whole pipeline, not just for isolated modules.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/traces.hpp"
#include "util/stats.hpp"
#include "wsim/nest.hpp"

namespace stormtrack {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static RealScenarioConfig scenario() {
    RealScenarioConfig cfg;
    cfg.weather.domain.resolution_km = 24.0;  // test-sized parent grid
    cfg.num_intervals = 12;
    cfg.sim_px = 16;
    cfg.sim_py = 16;
    cfg.pda.analysis_procs = 16;
    return cfg;
  }
};

TEST_F(PipelineTest, RealTraceThroughBothStrategies) {
  const Trace trace = generate_real_trace(scenario());
  ModelStack models;
  const Machine bgl = Machine::bluegene(256);

  const TraceRunResult diff = run_trace(bgl, models.model, models.truth,
                                        "diffusion", trace);
  const TraceRunResult scratch = run_trace(bgl, models.model, models.truth,
                                           "scratch", trace);
  ASSERT_EQ(diff.outcomes.size(), trace.size());

  // §V-D/E: diffusion must not lose on redistribution, hop-bytes or
  // overlap over a whole trace.
  EXPECT_LE(diff.total_redist(), scratch.total_redist() * 1.001);
  EXPECT_LE(diff.total_hop_bytes(), scratch.total_hop_bytes());
  EXPECT_GE(diff.mean_overlap_fraction(),
            scratch.mean_overlap_fraction() - 1e-12);
}

TEST_F(PipelineTest, DynamicNeverWorseThanBothOnPredictions) {
  const Trace trace = generate_real_trace(scenario());
  ModelStack models;
  const Machine bgl = Machine::bluegene(256);
  const TraceRunResult dyn = run_trace(bgl, models.model, models.truth,
                                       "dynamic", trace);
  for (const StepOutcome& o : dyn.outcomes) {
    EXPECT_LE(o.committed.predicted_total(),
              std::min(o.scratch.predicted_total(),
                       o.diffusion.predicted_total()) +
                  1e-12);
  }
}

TEST_F(PipelineTest, NestFieldsSurviveRedistribution) {
  // Spawn a nest over a detected ROI, interpolate its field, move it
  // between the allocations of two consecutive adaptation points, and
  // verify bit-exact conservation.
  RealScenarioConfig cfg = scenario();
  RealScenarioDriver driver(cfg);
  RealScenarioStep step;
  for (int i = 0; i < 5; ++i) step = driver.next();
  ASSERT_FALSE(step.active.empty());

  const NestSpec nest = step.active.front();
  const NestField field(driver.weather().qcloud(), nest.region);

  const Machine bgl = Machine::bluegene(256);
  Redistributor redist(bgl.comm());
  RedistMetrics metrics;
  const Grid2D<double> moved = redist.redistribute_field(
      field.data(), Rect{0, 0, 8, 8}, Rect{4, 9, 6, 5}, bgl.grid_px(),
      &metrics);
  EXPECT_EQ(moved, field.data());
  EXPECT_EQ(metrics.total_points,
            static_cast<std::int64_t>(field.shape().nx) * field.shape().ny);
}

TEST_F(PipelineTest, SyntheticTraceAggregateImprovement) {
  // Table IV direction on a small synthetic batch: diffusion improves
  // redistribution time vs scratch.
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 20;
  tcfg.seed = 4242;
  const Trace trace = generate_synthetic_trace(tcfg);
  ModelStack models;
  const Machine bgl = Machine::bluegene(256);
  const TraceRunResult diff = run_trace(bgl, models.model, models.truth,
                                        "diffusion", trace);
  const TraceRunResult scratch = run_trace(bgl, models.model, models.truth,
                                           "scratch", trace);
  EXPECT_LT(diff.total_redist(), scratch.total_redist());
  // §V-D: diffusion pays a small execution-time penalty, but bounded.
  EXPECT_LT(diff.total_exec(), scratch.total_exec() * 1.15);
}

TEST_F(PipelineTest, AllocationsAlwaysDisjointAndComplete) {
  SyntheticTraceConfig tcfg;
  tcfg.num_events = 15;
  tcfg.seed = 77;
  const Trace trace = generate_synthetic_trace(tcfg);
  ModelStack models;
  const Machine bgl = Machine::bluegene(256);
  const TraceRunResult r = run_trace(bgl, models.model, models.truth,
                                     "diffusion", trace);
  for (std::size_t e = 0; e < trace.size(); ++e) {
    // Allocation construction validates disjointness; assert coverage of
    // every active nest here.
    for (const NestSpec& n : trace[e])
      EXPECT_TRUE(r.outcomes[e].allocation.find(n.id).has_value())
          << "event " << e << " nest " << n.id;
  }
}

}  // namespace
}  // namespace stormtrack
