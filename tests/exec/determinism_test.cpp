/// Determinism suite for the execution layer: every parallelized path —
/// PDA rank analysis, parallel NNC tiles, the pipeline's candidate
/// evaluation, and full SweepRunner grids — must produce byte-identical
/// results (FNV-1a fingerprints over exact double bit patterns) on a
/// SerialExecutor and on ThreadPoolExecutors of 1, 2 and 8 threads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "pda/parallel_nnc.hpp"
#include "pda/pda.hpp"
#include "simmpi/spmd.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/check.hpp"
#include "util/fnv.hpp"
#include "wsim/split_file.hpp"

namespace stormtrack {
namespace {

const std::vector<int> kThreadCounts{1, 2, 8};

// ------------------------------------------------------------ fingerprints

std::uint64_t fingerprint(const PdaResult& r) {
  Fingerprint fp;
  fp.add(r.qcloudinfo.size());
  for (const QCloudInfo& q : r.qcloudinfo) {
    fp.add(q.file_rank);
    fp.add(q.file_x);
    fp.add(q.file_y);
    fp.add(q.qcloud);
    fp.add(q.olrfraction);
  }
  fp.add(r.clusters.size());
  for (const Cluster& c : r.clusters) {
    fp.add(c.size());
    for (const int e : c) fp.add(e);
  }
  for (const Rect& rect : r.rectangles) {
    fp.add(rect.x);
    fp.add(rect.y);
    fp.add(rect.w);
    fp.add(rect.h);
  }
  return fp.value();
}

std::uint64_t fingerprint(const ParallelNncResult& r) {
  Fingerprint fp;
  fp.add(r.tiles_x);
  fp.add(r.tiles_y);
  fp.add(r.merges);
  fp.add(r.clusters.size());
  for (const Cluster& c : r.clusters) {
    fp.add(c.size());
    for (const int e : c) fp.add(e);
  }
  return fp.value();
}

std::uint64_t fingerprint(const StepOutcome& o) {
  Fingerprint fp;
  fp.add(o.chosen);
  for (const CandidateMetrics* m : {&o.scratch, &o.diffusion, &o.committed}) {
    fp.add(m->predicted_redist);
    fp.add(m->predicted_exec);
    fp.add(m->actual_redist);
    fp.add(m->actual_exec);
  }
  fp.add(o.traffic.modeled_time);
  fp.add(o.traffic.total_bytes);
  fp.add(o.traffic.hop_bytes);
  fp.add(o.overlap_fraction);
  fp.add(o.num_deleted);
  fp.add(o.num_retained);
  fp.add(o.num_inserted);
  for (const auto& [id, rect] : o.allocation.rects()) {
    fp.add(id);
    fp.add(rect.x);
    fp.add(rect.y);
    fp.add(rect.w);
    fp.add(rect.h);
  }
  return fp.value();
}

std::uint64_t fingerprint(const TraceRunResult& r) {
  Fingerprint fp;
  fp.add(r.outcomes.size());
  for (const StepOutcome& o : r.outcomes) fp.add(fingerprint(o));
  return fp.value();
}

std::uint64_t fingerprint(const std::vector<SweepCaseResult>& results) {
  Fingerprint fp;
  fp.add(results.size());
  for (const SweepCaseResult& r : results) {
    fp.add(r.trace_name);
    fp.add(r.machine_name);
    fp.add(r.strategy);
    fp.add(fingerprint(r.result));
  }
  return fp.value();
}

// --------------------------------------------------------------- fixtures

std::vector<SplitFile> split_files(std::uint64_t seed) {
  WeatherConfig cfg = WeatherConfig::mumbai_2005();
  cfg.domain.resolution_km = 24.0;  // half resolution for test speed
  WeatherModel m(cfg, seed);
  for (int i = 0; i < 5; ++i) m.step();
  return write_split_files(m, 16, 16);
}

// Two traces: different seeds and lengths, as the acceptance criteria ask.
Trace synthetic(int events, std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.num_events = events;
  cfg.seed = seed;
  return generate_synthetic_trace(cfg);
}

// ------------------------------------------------------------------ tests

TEST(Determinism, PdaIdenticalAcrossExecutors) {
  for (const std::uint64_t seed : {33u, 77u}) {
    SCOPED_TRACE("weather seed " + std::to_string(seed));
    const auto files = split_files(seed);
    PdaConfig cfg;
    cfg.analysis_procs = 16;
    const std::uint64_t serial =
        fingerprint(parallel_data_analysis(files, cfg));
    for (const int threads : kThreadCounts) {
      ThreadPoolExecutor pool(threads);
      cfg.executor = &pool;
      EXPECT_EQ(fingerprint(parallel_data_analysis(files, cfg)), serial)
          << "threads=" << threads;
    }
  }
}

TEST(Determinism, ParallelNncIdenticalAcrossExecutors) {
  for (const std::uint64_t seed : {33u, 77u}) {
    SCOPED_TRACE("weather seed " + std::to_string(seed));
    const auto files = split_files(seed);
    PdaConfig cfg;
    cfg.analysis_procs = 16;
    const PdaResult pda = parallel_data_analysis(files, cfg);
    const std::uint64_t serial =
        fingerprint(parallel_nnc(pda.qcloudinfo, cfg.nnc, 16));
    for (const int threads : kThreadCounts) {
      ThreadPoolExecutor pool(threads);
      EXPECT_EQ(fingerprint(parallel_nnc(pda.qcloudinfo, cfg.nnc, 16,
                                         nullptr, &pool)),
                serial)
          << "threads=" << threads;
    }
  }
}

TEST(Determinism, CandidateEvaluationIdenticalAcrossExecutors) {
  const ModelStack models;
  const Machine machine = Machine::bluegene(256);
  for (const std::uint64_t seed : {21u, 42u}) {
    SCOPED_TRACE("trace seed " + std::to_string(seed));
    const Trace trace = synthetic(8, seed);
    for (const std::string& strategy : {"scratch", "diffusion", "dynamic"}) {
      SCOPED_TRACE("strategy " + strategy);
      const std::uint64_t serial = fingerprint(
          run_trace(machine, models.model, models.truth, strategy, trace));
      for (const int threads : kThreadCounts) {
        ThreadPoolExecutor pool(threads);
        ManagerConfig cfg;
        cfg.executor = &pool;
        EXPECT_EQ(fingerprint(run_trace(machine, models.model, models.truth,
                                        strategy, trace, cfg)),
                  serial)
            << "threads=" << threads;
      }
    }
  }
}

TEST(Determinism, FullSweepGridIdenticalAcrossExecutors) {
  const ModelStack models;
  const SweepRunner runner(models);
  const auto make_spec = [] {
    SweepSpec spec;
    spec.traces.push_back({"a", synthetic(6, 21)});
    spec.traces.push_back({"b", synthetic(9, 42)});
    spec.machines.push_back(sweep_bluegene(256));
    spec.machines.push_back(sweep_fist_cluster(256));
    spec.strategies = {"scratch", "diffusion", "dynamic"};
    return spec;
  };

  SweepSpec serial_spec = make_spec();
  serial_spec.threads = 1;
  const std::uint64_t serial = fingerprint(runner.run(serial_spec));

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    // Runner-owned pool of the given size (cases + nested candidate
    // batches share it).
    SweepSpec spec = make_spec();
    spec.threads = threads;
    EXPECT_EQ(fingerprint(runner.run(spec)), serial);
    // Caller-shared executor path.
    ThreadPoolExecutor pool(threads);
    SweepSpec shared = make_spec();
    shared.executor = &pool;
    EXPECT_EQ(fingerprint(runner.run(shared)), serial);
  }
}

TEST(Determinism, ThrowingRankBodySurfacesOriginalMessageAndPoolSurvives) {
  ThreadPoolExecutor pool(4);
  try {
    (void)run_spmd<int>(pool, 16, [](int rank) -> int {
      if (rank >= 2) throw CheckError("rank " + std::to_string(rank) +
                                      " exploded");
      return rank;
    });
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    // Lowest failing rank wins, deterministically.
    EXPECT_STREQ(e.what(), "rank 2 exploded");
  }
  // The pool survives and the next SPMD batch runs to completion.
  const std::vector<int> ok =
      run_spmd<int>(pool, 8, [](int rank) { return rank * 3; });
  ASSERT_EQ(ok.size(), 8u);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)],
                                        r * 3);
}

}  // namespace
}  // namespace stormtrack
