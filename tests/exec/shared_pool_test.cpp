/// SharedPoolExecutor contract: a drop-in Executor whose results are
/// byte-identical to serial, safe for many concurrent submitters and for
/// nested submission (submitter participation — the property that lets a
/// session's pipeline run *inside* a pool worker without deadlock), with
/// occupancy gauges that settle back to zero.

#include "exec/shared_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace stormtrack {
namespace {

TEST(SharedPoolExecutor, MatchesSerialByteForByte) {
  SharedPoolExecutor pool(4);
  SerialExecutor serial;
  const std::size_t n = 257;
  const auto f = [](std::size_t i) {
    // Nontrivial floating point: any reordering of these operations would
    // change bits.
    double x = static_cast<double>(i) + 0.1;
    for (int k = 0; k < 20; ++k) x = x * 1.0000001 + 1e-9;
    return x;
  };
  const std::vector<double> pooled = pool.map_indexed<double>(n, f);
  const std::vector<double> reference = serial.map_indexed<double>(n, f);
  ASSERT_EQ(pooled.size(), reference.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(pooled[i], reference[i]);
}

TEST(SharedPoolExecutor, OccupancySettlesAndLifetimeCountersAccumulate) {
  SharedPoolExecutor pool(2);
  std::atomic<int> seen{0};
  pool.parallel_for(10, [&](std::size_t) { ++seen; });
  pool.parallel_for(5, [&](std::size_t) { ++seen; });
  EXPECT_EQ(seen.load(), 15);

  const PoolOccupancy occ = pool.occupancy();
  EXPECT_EQ(occ.threads, 2);
  EXPECT_EQ(occ.inflight_batches, 0);
  EXPECT_EQ(occ.running_tasks, 0);
  EXPECT_EQ(occ.submitted_batches, 2);
  EXPECT_EQ(occ.completed_batches, 2);
  EXPECT_EQ(pool.stats().tasks, 15);
  EXPECT_EQ(pool.concurrency(), 2);
}

TEST(SharedPoolExecutor, NestedSubmissionDoesNotDeadlock) {
  // A task body submits into the same pool it runs on — the pipeline's
  // candidate evaluation nested inside a pool-worker slice. Submitter
  // participation guarantees progress even when every worker is busy.
  SharedPoolExecutor pool(2);
  std::atomic<int> inner_runs{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++inner_runs; });
  });
  EXPECT_EQ(inner_runs.load(), 32);
  const PoolOccupancy occ = pool.occupancy();
  EXPECT_EQ(occ.inflight_batches, 0);
  EXPECT_EQ(occ.completed_batches, 4 + 1);
}

TEST(SharedPoolExecutor, ManyConcurrentSubmittersGetIndependentResults) {
  // The shared-pool daemon shape: several session-driving threads submit
  // batches into one pool concurrently; every submitter must observe
  // exactly its own serial-identical results.
  SharedPoolExecutor pool(3);
  SerialExecutor serial;
  constexpr int kSubmitters = 6;
  const std::size_t n = 64;
  std::vector<std::vector<double>> results(kSubmitters);
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      results[s] = pool.map_indexed<double>(n, [s](std::size_t i) {
        return static_cast<double>(s * 1000) +
               static_cast<double>(i) * 1.25;
      });
    });
  }
  for (std::thread& t : threads) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    const std::vector<double> reference =
        serial.map_indexed<double>(n, [s](std::size_t i) {
          return static_cast<double>(s * 1000) +
                 static_cast<double>(i) * 1.25;
        });
    EXPECT_EQ(results[s], reference) << "submitter " << s;
  }
  EXPECT_EQ(pool.occupancy().completed_batches, kSubmitters);
  EXPECT_EQ(pool.stats().tasks,
            static_cast<std::int64_t>(kSubmitters) *
                static_cast<std::int64_t>(n));
}

TEST(SharedPoolExecutor, ExceptionsRethrowAndGaugesRecover) {
  SharedPoolExecutor pool(2);
  EXPECT_THROW(pool.parallel_for(16,
                                 [&](std::size_t i) {
                                   if (i % 5 == 3) {
                                     throw std::runtime_error("task failed");
                                   }
                                 }),
               std::runtime_error);
  const PoolOccupancy occ = pool.occupancy();
  EXPECT_EQ(occ.inflight_batches, 0);
  EXPECT_EQ(occ.running_tasks, 0);
  EXPECT_EQ(occ.completed_batches, 1);
  // The pool survives for the next batch.
  std::atomic<int> runs{0};
  pool.parallel_for(4, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs.load(), 4);
}

}  // namespace
}  // namespace stormtrack
