#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace stormtrack {
namespace {

TEST(SerialExecutor, RunsEveryIndexInAscendingOrder) {
  SerialExecutor exec;
  std::vector<std::size_t> order;
  exec.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(exec.concurrency(), 1);
}

TEST(SerialExecutor, StatsAccumulate) {
  SerialExecutor exec;
  exec.parallel_for(3, [](std::size_t) {});
  exec.parallel_for(2, [](std::size_t) {});
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.tasks, 5);
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.threads, 1);
}

TEST(SerialExecutor, ExceptionPropagates) {
  SerialExecutor exec;
  EXPECT_THROW(
      exec.parallel_for(3,
                        [](std::size_t i) {
                          if (i == 1) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolExecutor, RunsEveryIndexExactlyOnce) {
  ThreadPoolExecutor exec(4);
  EXPECT_EQ(exec.concurrency(), 4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  exec.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolExecutor, MapIndexedFillsSlotsInIndexOrder) {
  ThreadPoolExecutor exec(3);
  const std::vector<int> out =
      exec.map_indexed<int>(64, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)],
                                         i * i);
}

TEST(ThreadPoolExecutor, EmptyBatchIsANoop) {
  ThreadPoolExecutor exec(2);
  bool ran = false;
  exec.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(exec.stats().batches, 0);
}

TEST(ThreadPoolExecutor, LowestFailingIndexExceptionSurfacesAndPoolSurvives) {
  ThreadPoolExecutor exec(4);
  // Several indices throw; the contract picks the lowest deterministically.
  const auto run = [&] {
    exec.parallel_for(100, [](std::size_t i) {
      if (i % 7 == 3) throw std::runtime_error("failed at " +
                                               std::to_string(i));
    });
  };
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      run();
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 3");
    }
  }
  // The pool survives failures and keeps executing new batches.
  std::atomic<int> count{0};
  exec.parallel_for(50, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolExecutor, NestedParallelForDoesNotDeadlock) {
  ThreadPoolExecutor exec(2);  // fewer threads than nested batches in flight
  std::atomic<int> total{0};
  exec.parallel_for(8, [&](std::size_t) {
    exec.parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolExecutor, StatsCountTasksAndBatches) {
  ThreadPoolExecutor exec(2);
  exec.parallel_for(10, [](std::size_t) {});
  exec.parallel_for(5, [](std::size_t) {});
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.tasks, 15);
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.threads, 2);
  EXPECT_GE(s.busy_seconds, 0.0);
}

TEST(ThreadPoolExecutor, NegativeThreadCountRejected) {
  EXPECT_THROW(ThreadPoolExecutor(-1), CheckError);
}

TEST(ThreadPoolExecutor, ConcurrentThrowStressKeepsContract) {
  // 100 iterations of a batch where many indices throw concurrently: the
  // lowest failing index's exception must surface every time, and the pool
  // must stay usable for the next batch.
  ThreadPoolExecutor exec(8);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t lowest = static_cast<std::size_t>(iter % 5);
    try {
      exec.parallel_for(64, [&](std::size_t i) {
        if (i >= lowest && i % 2 == lowest % 2)
          throw std::runtime_error("idx " + std::to_string(i));
      });
      FAIL() << "iteration " << iter << ": expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), ("idx " + std::to_string(lowest)).c_str())
          << "iteration " << iter;
    }
    std::atomic<int> count{0};
    exec.parallel_for(16, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 16) << "pool unusable after iteration " << iter;
  }
}

TEST(Executor, HookOverloadRunsHookBeforeBodyPerIndex) {
  SerialExecutor exec;
  std::vector<std::string> log;
  exec.parallel_for(
      3, [&](std::size_t i) { log.push_back("body" + std::to_string(i)); },
      [&](std::size_t i) { log.push_back("hook" + std::to_string(i)); });
  EXPECT_EQ(log, (std::vector<std::string>{"hook0", "body0", "hook1", "body1",
                                           "hook2", "body2"}));
}

TEST(Executor, NullHookDegradesToPlainParallelFor) {
  SerialExecutor exec;
  int ran = 0;
  exec.parallel_for(4, [&](std::size_t) { ++ran; },
                    std::function<void(std::size_t)>{});
  EXPECT_EQ(ran, 4);
}

TEST(Executor, HookExceptionRidesTheLowestIndexContract) {
  ThreadPoolExecutor exec(4);
  try {
    exec.parallel_for(
        32, [](std::size_t) {},
        [](std::size_t i) {
          if (i % 3 == 1) throw std::runtime_error("hook " +
                                                   std::to_string(i));
        });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "hook 1");
  }
}

TEST(ParseThreadCount, AcceptsNonNegativeDecimals) {
  EXPECT_EQ(parse_thread_count("0", "test"), 0);
  EXPECT_EQ(parse_thread_count("1", "test"), 1);
  EXPECT_EQ(parse_thread_count("12", "test"), 12);
  EXPECT_EQ(parse_thread_count("128", "test"), 128);
}

TEST(ParseThreadCount, RejectsEmpty) {
  EXPECT_THROW((void)parse_thread_count("", "STORMTRACK_THREADS"),
               CheckError);
}

TEST(ParseThreadCount, RejectsNonNumeric) {
  EXPECT_THROW((void)parse_thread_count("auto", "test"), CheckError);
  EXPECT_THROW((void)parse_thread_count(" 4", "test"), CheckError);
}

TEST(ParseThreadCount, RejectsTrailingGarbage) {
  EXPECT_THROW((void)parse_thread_count("12abc", "test"), CheckError);
  EXPECT_THROW((void)parse_thread_count("4 ", "test"), CheckError);
}

TEST(ParseThreadCount, RejectsNegative) {
  EXPECT_THROW((void)parse_thread_count("-1", "test"), CheckError);
}

TEST(ParseThreadCount, RejectsOutOfRange) {
  EXPECT_THROW((void)parse_thread_count("99999999999999999999", "test"),
               CheckError);
}

TEST(ParseThreadCount, ErrorNamesTheSource) {
  try {
    (void)parse_thread_count("bogus", "STORMTRACK_THREADS");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("STORMTRACK_THREADS"),
              std::string::npos)
        << e.what();
  }
}

TEST(Executor, ResolveExecutorFallsBackToSerialSingleton) {
  EXPECT_EQ(&resolve_executor(nullptr), &serial_executor());
  SerialExecutor mine;
  EXPECT_EQ(&resolve_executor(&mine), &mine);
}

TEST(Executor, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1);
}

TEST(Executor, OccupancyFormula) {
  ExecutorStats s;
  s.threads = 4;
  s.busy_seconds = 2.0;
  EXPECT_DOUBLE_EQ(s.occupancy(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.occupancy(0.0), 0.0);
}

}  // namespace
}  // namespace stormtrack
