#include "exec/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace stormtrack {
namespace {

TEST(CancelToken, StartsUncancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelMakesCheckThrowWithReason) {
  CancelToken token;
  token.cancel("operator abort");
  EXPECT_TRUE(token.cancelled());
  try {
    token.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const CancelledError& e) {
    EXPECT_EQ(std::string(e.what()), "operator abort");
  }
}

TEST(CancelToken, ExpiredDeadlineCancels) {
  CancelToken token;
  token.set_deadline_after(0.0);  // already expired
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(CancelToken, FarDeadlineDoesNotCancel) {
  CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, ResetClearsCancellationAndDeadline) {
  CancelToken token;
  token.cancel("first attempt");
  token.set_deadline_after(0.0);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, WaitForCompletesWhenUntripped) {
  CancelToken token;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(token.wait_for(0.02));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.02);
}

TEST(CancelToken, WaitForWakesEarlyOnCancel) {
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel("wake up");
  });
  const auto t0 = std::chrono::steady_clock::now();
  // A full hour of backoff, interrupted after ~20 ms: false means
  // "cancelled", and the sleeper must not have served the hour.
  EXPECT_FALSE(token.wait_for(3600.0));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 60.0);
  canceller.join();
}

TEST(CancelToken, WaitForReturnsImmediatelyWhenAlreadyTripped) {
  CancelToken token;
  token.set_deadline_after(0.0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(token.wait_for(3600.0));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 60.0);
  EXPECT_TRUE(token.deadline_exceeded());
}

TEST(CancelToken, WaitForWakesAtTheDeadlineMidSleep) {
  CancelToken token;
  token.set_deadline_after(0.02);
  // The deadline lands inside the sleep: wait_for must wake there, not at
  // the requested duration.
  EXPECT_FALSE(token.wait_for(3600.0));
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelToken, SignalSafeCancelIsSeenByPollers) {
  CancelToken token;
  token.cancel_from_signal();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(CancelToken, CancelledErrorIsNotACheckError) {
  // Supervision relies on telling a deadline apart from an invariant
  // failure; CancelledError must not sit under CheckError.
  const CancelledError e("x");
  EXPECT_EQ(dynamic_cast<const std::logic_error*>(
                static_cast<const std::exception*>(&e)),
            nullptr);
}

}  // namespace
}  // namespace stormtrack
