#include "exec/cancel.hpp"

#include <gtest/gtest.h>

#include <string>

namespace stormtrack {
namespace {

TEST(CancelToken, StartsUncancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelMakesCheckThrowWithReason) {
  CancelToken token;
  token.cancel("operator abort");
  EXPECT_TRUE(token.cancelled());
  try {
    token.check();
    FAIL() << "check() must throw after cancel()";
  } catch (const CancelledError& e) {
    EXPECT_EQ(std::string(e.what()), "operator abort");
  }
}

TEST(CancelToken, ExpiredDeadlineCancels) {
  CancelToken token;
  token.set_deadline_after(0.0);  // already expired
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check(), CancelledError);
}

TEST(CancelToken, FarDeadlineDoesNotCancel) {
  CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, ResetClearsCancellationAndDeadline) {
  CancelToken token;
  token.cancel("first attempt");
  token.set_deadline_after(0.0);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());
}

TEST(CancelToken, CancelledErrorIsNotACheckError) {
  // Supervision relies on telling a deadline apart from an invariant
  // failure; CancelledError must not sit under CheckError.
  const CancelledError e("x");
  EXPECT_EQ(dynamic_cast<const std::logic_error*>(
                static_cast<const std::exception*>(&e)),
            nullptr);
}

}  // namespace
}  // namespace stormtrack
