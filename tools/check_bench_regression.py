#!/usr/bin/env python3
"""Gate bench runs against committed baselines (CI perf-smoke job).

Compares the ``counter_*`` fields of a fresh ``--json`` bench summary
against the committed baseline (bench/baselines/BENCH_*.json) and fails on
relative drift beyond --tolerance. Only counters gate: they are
deterministic (predict calls, plans built, bytes that would have been
materialized), so any drift is a behavior change in the hot path, not
scheduler noise. Wall times differ across runners and build types, so they
are reported as advisory deltas only.

Usage:
  tools/check_bench_regression.py --baseline bench/baselines/BENCH_adaptation.json \
      --current build/BENCH_adaptation.json [--tolerance 0.25]
  tools/check_bench_regression.py --list bench/baselines/BENCH_adaptation.json
  tools/check_bench_regression.py --update-baselines [--build-dir build] \
      [--baseline-dir bench/baselines]

Stdlib only; exit code 0 = within tolerance, 1 = regression (or shape
mismatch: missing rows / missing counters are failures, silently dropping
a counter must not pass the gate). Shape mismatches are diagnosed with the
nearest matching label/key so a renamed row is distinguishable from a
deleted one.
"""

import argparse
import difflib
import json
import pathlib
import shutil
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["label"]] = row
    return doc, rows


def nearest(name, candidates):
    """'did you mean ...' suffix for a missing row label or counter key."""
    close = difflib.get_close_matches(name, list(candidates), n=1)
    return f" (did you mean '{close[0]}'?)" if close else ""


def counter_keys(row):
    return sorted(k for k in row if k.startswith("counter_"))


def list_file(path):
    """Print the gateable shape of one summary: rows and counter keys."""
    doc, rows = load(path)
    print(f"{path}: bench '{doc.get('bench', '?')}' "
          f"(sha {doc.get('git_sha', '?')}, "
          f"{doc.get('build_type', '?')}), {len(rows)} row(s)")
    for label, row in sorted(rows.items()):
        keys = counter_keys(row)
        print(f"  {label}")
        for key in keys:
            print(f"    {key} = {row[key]}")
        if not keys:
            print("    (no counter_* fields — nothing gates on this row)")


def update_baselines(build_dir, baseline_dir):
    """Copy fresh build/BENCH_*.json summaries over the committed baselines.

    For each summary the counter drift against the old baseline is printed
    first, so the commit message can cite what actually moved; a summary
    with no existing baseline is adopted as new. Returns 0 when at least
    one file was updated, 1 when the build directory holds no summaries
    (probably the benches were never run).
    """
    build = pathlib.Path(build_dir)
    baselines = pathlib.Path(baseline_dir)
    fresh = sorted(build.glob("BENCH_*.json"))
    if not fresh:
        print(f"no BENCH_*.json summaries in {build} — run the benches "
              f"with --json first (see .github/workflows/ci.yml, "
              f"perf-smoke)", file=sys.stderr)
        return 1
    baselines.mkdir(parents=True, exist_ok=True)
    for src in fresh:
        dst = baselines / src.name
        if dst.exists():
            _, old_rows = load(dst)
            _, new_rows = load(src)
            moved = []
            for label, old_row in sorted(old_rows.items()):
                new_row = new_rows.get(label, {})
                for key in counter_keys(old_row):
                    old_val, new_val = old_row[key], new_row.get(key)
                    if new_val is not None and new_val != old_val:
                        moved.append(f"    {label} {key}: "
                                     f"{old_val} -> {new_val}")
            print(f"updating {dst} from {src}"
                  + (":" if moved else " (no counter drift)"))
            for line in moved:
                print(line)
        else:
            print(f"adopting new baseline {dst} from {src}")
        shutil.copyfile(src, dst)
    print(f"\n{len(fresh)} baseline(s) updated — review the diff and "
          f"commit bench/baselines/ with a note on why the counters moved")
    return 0


def rel_drift(baseline, current):
    if baseline == current:
        return 0.0
    denom = max(abs(baseline), 1.0)
    return abs(current - baseline) / denom


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    help="committed BENCH_*.json baseline")
    ap.add_argument("--current",
                    help="freshly produced --json output")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max relative drift of any counter_* field "
                         "(default 0.25)")
    ap.add_argument("--list", metavar="FILE",
                    help="print FILE's rows and gateable counter_* keys, "
                         "then exit (no comparison)")
    ap.add_argument("--update-baselines", action="store_true",
                    help="copy the build dir's BENCH_*.json over the "
                         "committed baselines (printing counter drift "
                         "per file), then exit")
    ap.add_argument("--build-dir", default="build",
                    help="where fresh BENCH_*.json summaries live "
                         "(default: build)")
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="committed baseline directory "
                         "(default: bench/baselines)")
    args = ap.parse_args()

    if args.list:
        list_file(args.list)
        return 0
    if args.update_baselines:
        return update_baselines(args.build_dir, args.baseline_dir)
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required unless --list "
                 "or --update-baselines is given")

    base_doc, base_rows = load(args.baseline)
    cur_doc, cur_rows = load(args.current)

    print(f"baseline: {args.baseline} "
          f"(sha {base_doc.get('git_sha', '?')}, "
          f"{base_doc.get('build_type', '?')})")
    print(f"current:  {args.current} "
          f"(sha {cur_doc.get('git_sha', '?')}, "
          f"{cur_doc.get('build_type', '?')})")

    failures = []
    for label, base_row in sorted(base_rows.items()):
        cur_row = cur_rows.get(label)
        if cur_row is None:
            failures.append(f"row '{label}' missing from current run"
                            f"{nearest(label, cur_rows)}")
            continue
        for key, base_val in base_row.items():
            if not key.startswith("counter_"):
                continue
            if key not in cur_row:
                have = counter_keys(cur_row)
                failures.append(
                    f"{label}: counter '{key}' missing from current run"
                    f"{nearest(key, have)}; row has "
                    f"{', '.join(have) if have else 'no counter_* fields'}")
                continue
            drift = rel_drift(float(base_val), float(cur_row[key]))
            status = "FAIL" if drift > args.tolerance else "ok"
            if drift > 0 or status == "FAIL":
                print(f"  [{status}] {label} {key}: "
                      f"{base_val} -> {cur_row[key]} "
                      f"(drift {drift:.1%}, tolerance "
                      f"{args.tolerance:.0%})")
            if status == "FAIL":
                failures.append(f"{label}: {key} drifted {drift:.1%} "
                                f"({base_val} -> {cur_row[key]})")
        # Advisory only: 1-CPU CI runners make wall-clock figures (and
        # anything derived from them — latency percentiles, throughput)
        # too noisy to gate. Printed so a reviewer can eyeball trends.
        for key in ("wall_seconds", "latency_p50_seconds",
                    "latency_p99_seconds", "sessions_per_second",
                    "admitted_per_second"):
            bw, cw = base_row.get(key), cur_row.get(key)
            if bw and cw:
                print(f"  [advisory] {label} {key}: "
                      f"{bw:.6f} -> {cw:.6f} ({(cw - bw) / bw:+.1%})")

    extra = set(cur_rows) - set(base_rows)
    if extra:
        print(f"  [note] rows not in baseline (new configs?): "
              f"{', '.join(sorted(extra))}")

    if failures:
        print(f"\nperf-smoke: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("If the counter change is intentional (e.g. the pricing "
              "workload changed), regenerate the baselines from a fresh "
              "bench run:\n"
              "  tools/check_bench_regression.py --update-baselines",
              file=sys.stderr)
        return 1
    print(f"\nperf-smoke: all counter_* fields within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
